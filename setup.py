"""Setup shim for environments without the `wheel` package (offline legacy
editable installs); all project metadata — including the ``[dev]`` extra
that pins the identical test/lint toolchain for CI and contributors
(``pip install -e .[dev]``) — lives in pyproject.toml."""
from setuptools import setup

setup()

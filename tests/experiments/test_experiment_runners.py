"""Tests for the experiment runners (tables, figures, ablations).

Training-based runners are exercised at a micro scale (a handful of
iterations) — the goal here is to validate wiring, result structure and
invariants, not score quality (that is what the benchmark harness measures).
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    SMOKE,
    format_table,
    get_scale,
    paper_architecture_params,
    run_ablation_extensions,
    run_ablation_k,
    run_ablation_swap,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_staleness_sweep,
    run_table2,
    run_table3,
    run_table4,
    run_traffic_check,
)

#: Micro scale: just enough iterations to exercise every code path.
MICRO = ExperimentScale(
    name="micro",
    n_train=120,
    n_test=60,
    image_size=16,
    iterations=6,
    eval_every=3,
    num_workers=3,
    batch_size_small=4,
    batch_size_large=8,
    width_factor=0.1,
    classifier_epochs=1,
    eval_sample_size=32,
)


class TestScalesAndFormatting:
    def test_get_scale_by_name_and_object(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale(MICRO) is MICRO
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_format_table_alignment(self):
        text = format_table(
            ["a", "b"], [{"a": 1, "b": 2.5}, {"a": "xyz", "b": 1e-9}]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_paper_parameter_counts_available(self):
        counts = paper_architecture_params()
        assert counts["mnist-mlp"]["generator"] == 716_560
        own = paper_architecture_params(use_paper_counts=False)
        # Our ACGAN conditioning concatenates a 10-dim one-hot to the noise,
        # adding 10 x 512 first-layer weights on top of the paper's count.
        assert own["mnist-mlp"]["generator"] == 716_560 + 10 * 512
        assert own["mnist-mlp"]["discriminator"] == counts["mnist-mlp"]["discriminator"]


class TestAnalyticRunners:
    def test_table2_structure_and_claim(self):
        result = run_table2()
        assert len(result.rows) == 3 * 4  # 3 architectures x 4 quantities
        worker_rows = [r for r in result.rows if r["quantity"] == "computation_worker"]
        assert all(r["mdgan"] < r["flgan"] for r in worker_rows)

    def test_table3_structure(self):
        result = run_table3()
        assert len(result.rows) == 3 * 7
        assert {"architecture", "communication", "flgan", "mdgan"} <= set(result.rows[0])

    def test_table4_mdgan_cheaper_at_small_batch(self):
        result = run_table4()
        rows_b10 = {
            r["communication"]: r for r in result.rows if r["batch_size"] == 10
        }
        assert (
            rows_b10["server_to_worker_at_worker"]["mdgan"]
            < rows_b10["server_to_worker_at_worker"]["flgan"]
        )

    def test_fig2_series_shapes_and_crossover_note(self):
        result = run_fig2(batch_sizes=[1, 10, 100, 1000])
        assert len(result.rows) == 2 * 4  # two architectures x four batch sizes
        assert any("crossover" in note for note in result.notes)
        mnist_rows = [r for r in result.rows if r["architecture"] == "mnist-mlp"]
        # MD-GAN worker ingress grows with b; FL-GAN stays constant.
        assert mnist_rows[-1]["mdgan_worker"] > mnist_rows[0]["mdgan_worker"]
        assert mnist_rows[-1]["flgan_worker"] == mnist_rows[0]["flgan_worker"]


class TestTrainingRunners:
    def test_fig3_runs_selected_competitors(self):
        result = run_fig3(
            dataset="mnist",
            architecture="mnist-mlp",
            scale=MICRO,
            competitors=["standalone-b4", "md-gan-k1"],
        )
        competitors = {row["competitor"] for row in result.rows}
        assert competitors == {"standalone-b4", "md-gan-k1"}
        assert all(np.isfinite(row["fid"]) for row in result.rows)
        assert "histories" in result.extras

    def test_fig3_rejects_unknown_competitor(self):
        with pytest.raises(ValueError, match="Unknown competitors"):
            run_fig3(scale=MICRO, competitors=["resnet"])

    def test_fig3_threads_backend_into_configs(self):
        # Regression: fig3 used to silently ignore --backend.  The runner
        # must accept the runtime kwargs and produce the same numbers (all
        # backends are bitwise-identical for sync runs).
        serial = run_fig3(scale=MICRO, competitors=["md-gan-k1"])
        threaded = run_fig3(
            scale=MICRO,
            competitors=["md-gan-k1"],
            backend="thread",
            max_workers=2,
        )
        a = serial.extras["histories"]["md-gan-k1"]["generator_loss"]
        b = threaded.extras["histories"]["md-gan-k1"]["generator_loss"]
        assert a == b

    def test_staleness_sweep_rows_and_bound(self):
        result = run_staleness_sweep(
            scale=MICRO,
            depths=(1,),
            staleness_bounds=(1, 2),
            backend="thread",
            max_workers=3,
        )
        modes = [(row["mode"], row["parameter"]) for row in result.rows]
        assert modes == [
            ("sync", 0),
            ("pipelined", 1),
            ("async", 1),
            ("async", 2),
            ("async+pipelined", 1),
            ("async+pipelined", 2),
        ]
        for row in result.rows:
            assert np.isfinite(row["fid"])
            assert row["wall_seconds"] > 0
            if row["mode"] in ("async", "async+pipelined"):
                assert row["max_worker_staleness"] <= row["parameter"]
            if row["mode"] == "pipelined":
                assert row["max_staleness"] <= row["parameter"]
            if row["mode"] == "async+pipelined":
                assert row["depth"] > 0
        assert "histories" in result.extras

    def test_fig4_rows_cover_grid(self):
        result = run_fig4(
            scale=MICRO,
            worker_counts=(1, 2),
            modes=("constant_worker",),
            swap_settings=(True,),
        )
        assert len(result.rows) == 2
        assert {row["num_workers"] for row in result.rows} == {1, 2}
        # Larger N means smaller local shards.
        sizes = {row["num_workers"]: row["local_shard_size"] for row in result.rows}
        assert sizes[2] < sizes[1]

    def test_fig5_includes_crash_run(self):
        result = run_fig5(scale=MICRO)
        competitors = {row["competitor"] for row in result.rows}
        assert "md-gan-crashes" in competitors
        assert "md-gan-no-crash" in competitors
        assert any("crashed" in note for note in result.notes)

    def test_fig6_compares_three_competitors(self):
        result = run_fig6(scale=MICRO, num_workers=2)
        competitors = {row["competitor"] for row in result.rows}
        assert "standalone" in competitors
        assert any(name.startswith("fl-gan") for name in competitors)
        assert any(name.startswith("md-gan") for name in competitors)


class TestAblations:
    def test_ablation_k_traffic_grows_with_k(self):
        result = run_ablation_k(scale=MICRO, k_values=[1, 3])
        by_k = {row["k"]: row for row in result.rows}
        assert by_k[3]["server_flops"] > by_k[1]["server_flops"]

    def test_ablation_swap_counts_swaps(self):
        result = run_ablation_swap(scale=MICRO, epochs_values=[1.0, float("inf")])
        by_e = {str(row["epochs_per_swap"]): row for row in result.rows}
        assert by_e["inf"]["swaps"] == 0
        assert by_e["inf"]["swap_bytes"] == 0.0

    def test_ablation_extensions_rows(self):
        result = run_ablation_extensions(scale=MICRO)
        variants = {row["variant"] for row in result.rows}
        assert "md-gan" in variants and "md-gan-async" in variants


class TestTrafficCheck:
    def test_measured_matches_analytic(self):
        result = run_traffic_check(scale=MICRO)
        byte_rows = [
            r
            for r in result.rows
            if "bytes" in r["quantity"]
            and not r["quantity"].startswith(("swap", "resident"))
        ]
        assert byte_rows
        for row in byte_rows:
            assert row["ratio"] == pytest.approx(1.0, rel=1e-6)

    def test_resident_transport_rows_are_measured(self):
        # The resident rows meter real transport payloads: pickle overhead
        # pushes received above 1, object-graph dedup (k < N at this scale)
        # pushes sent below 1.  The tight pin with exact geometry lives in
        # benchmarks/test_socket_transport.py; here we check presence and
        # loose sanity bounds.
        result = run_traffic_check(scale=MICRO)
        resident_rows = [
            r for r in result.rows if r["quantity"].startswith("resident")
        ]
        byte_rows = [r for r in resident_rows if "bytes" in r["quantity"]]
        time_rows = [r for r in resident_rows if "transfer" in r["quantity"]]
        assert len(byte_rows) == 2 and len(time_rows) == 1
        for row in byte_rows:
            assert 0.2 < row["ratio"] < 1.5, row
        # Local transfer beats the modeled datacenter link by a wide margin
        # in the slow direction only when payloads are large; at this scale
        # just require the measurement to be present and positive.
        assert time_rows[0]["measured"] > 0.0

"""Tests for result reporting, the non-i.i.d. ablation and the CLI."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentScale,
    ascii_chart,
    run_ablation_noniid,
    save_csv,
    save_json,
    series_from_rows,
    to_markdown,
)
from repro.experiments.cli import ARTIFACTS, build_parser, main

MICRO = ExperimentScale(
    name="micro",
    n_train=120,
    n_test=60,
    image_size=16,
    iterations=5,
    eval_every=5,
    num_workers=3,
    batch_size_small=4,
    batch_size_large=8,
    width_factor=0.1,
    classifier_epochs=1,
    eval_sample_size=32,
)


@pytest.fixture()
def sample_result():
    result = ExperimentResult(name="Demo", description="demo result")
    result.add_row(competitor="a", iteration=1, fid=10.0, score=1.0)
    result.add_row(competitor="a", iteration=2, fid=8.0, score=1.2)
    result.add_row(competitor="b", iteration=1, fid=12.0, score=0.9)
    result.add_note("a note")
    return result


class TestReporting:
    def test_save_json_roundtrip(self, sample_result, tmp_path):
        path = save_json(sample_result, tmp_path / "out" / "demo.json")
        payload = json.loads(Path(path).read_text())
        assert payload["name"] == "Demo"
        assert len(payload["rows"]) == 3
        assert payload["notes"] == ["a note"]

    def test_save_csv_contains_all_columns(self, sample_result, tmp_path):
        path = save_csv(sample_result, tmp_path / "demo.csv")
        text = Path(path).read_text()
        header = text.splitlines()[0]
        assert header.split(",") == ["competitor", "iteration", "fid", "score"]
        assert len(text.splitlines()) == 4

    def test_save_csv_empty_result(self, tmp_path):
        empty = ExperimentResult(name="Empty", description="")
        path = save_csv(empty, tmp_path / "empty.csv")
        assert Path(path).read_text() == ""

    def test_to_markdown_table(self, sample_result):
        md = to_markdown(sample_result)
        assert md.startswith("### Demo")
        assert "| competitor | iteration | fid | score |" in md
        assert "> a note" in md

    def test_to_markdown_row_limit(self, sample_result):
        md = to_markdown(sample_result, max_rows=1)
        assert "more rows omitted" in md

    def test_series_from_rows_groups_and_sorts(self, sample_result):
        series = series_from_rows(sample_result.rows, "competitor", "iteration", "fid")
        assert set(series) == {"a", "b"}
        assert series["a"] == [(1.0, 10.0), (2.0, 8.0)]

    def test_ascii_chart_renders_markers_and_legend(self, sample_result):
        series = series_from_rows(sample_result.rows, "competitor", "iteration", "fid")
        chart = ascii_chart(series, width=30, height=8, title="demo chart")
        assert "demo chart" in chart
        assert "o = a" in chart and "x = b" in chart
        assert "o" in chart.splitlines()[4]

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"


class TestNonIIDAblation:
    def test_runs_all_schemes(self):
        result = run_ablation_noniid(scale=MICRO, schemes=("iid", "label-skew"))
        schemes = {row["scheme"] for row in result.rows}
        assert schemes == {"iid", "label-skew"}
        algorithms = {row["algorithm"] for row in result.rows}
        assert algorithms == {"md-gan", "fl-gan"}
        assert all(np.isfinite(row["fid"]) for row in result.rows)
        # The per-label scheme really does concentrate classes on workers.
        skew_rows = [r for r in result.rows if r["scheme"] == "label-skew"]
        iid_rows = [r for r in result.rows if r["scheme"] == "iid"]
        assert skew_rows[0]["min_classes_per_shard"] < iid_rows[0]["min_classes_per_shard"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="Unknown partitioning scheme"):
            run_ablation_noniid(scale=MICRO, schemes=("striped",))


class TestCLI:
    def test_parser_knows_all_artifacts(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.artefact == "table2"
        assert set(ARTIFACTS) >= {"table2", "fig3", "fig6", "ablation-noniid"}

    def test_main_runs_analytic_artifact_and_writes_outputs(self, tmp_path, capsys):
        code = main(
            [
                "table4",
                "--json",
                str(tmp_path / "t4.json"),
                "--csv",
                str(tmp_path / "t4.csv"),
                "--markdown",
                str(tmp_path / "t4.md"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table IV" in captured
        assert (tmp_path / "t4.json").exists()
        assert (tmp_path / "t4.csv").exists()
        assert (tmp_path / "t4.md").read_text().startswith("### Table IV")

    def test_main_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_parser_accepts_backend_selection(self):
        args = build_parser().parse_args(
            ["fig4", "--backend", "thread", "--max-workers", "2"]
        )
        assert args.backend == "thread"
        assert args.max_workers == 2

    def test_parser_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--backend", "gpu"])

    def test_backend_kwargs_dispatch(self):
        from repro.experiments.cli import _backend_kwargs
        from repro.experiments.scalability import run_fig4
        from repro.experiments.tables import run_table2

        args = build_parser().parse_args(["fig4", "--backend", "process"])
        assert _backend_kwargs(run_fig4, args) == {
            "backend": "process",
            "max_workers": None,
            "shm_install": True,
            "transport": "pipe",
            "transport_address": None,
            "pipeline_depth": 0,
        }
        # Runners without a backend sweep fall back to serial with a note.
        assert _backend_kwargs(run_table2, args) == {}

    def test_pipeline_depth_kwargs_dispatch(self):
        from repro.experiments.cli import _backend_kwargs
        from repro.experiments.fault_tolerance import run_fig5
        from repro.experiments.tables import run_table2

        args = build_parser().parse_args(
            ["fig5", "--backend", "resident", "--pipeline-depth", "2"]
        )
        assert _backend_kwargs(run_fig5, args) == {
            "backend": "resident",
            "max_workers": None,
            "shm_install": True,
            "transport": "pipe",
            "transport_address": None,
            "pipeline_depth": 2,
        }
        # Runners without a pipeline knob fall back to synchronous with a note.
        assert _backend_kwargs(run_table2, args) == {}

    def test_parser_accepts_pipeline_depth(self):
        args = build_parser().parse_args(["fig4", "--pipeline-depth", "3"])
        assert args.pipeline_depth == 3
        assert build_parser().parse_args(["fig4"]).pipeline_depth == 0

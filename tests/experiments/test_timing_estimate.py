"""Tests for the deployment timing-estimate experiment."""

import pytest

from repro.experiments import run_timing_estimate


def test_rows_cover_grid():
    result = run_timing_estimate()
    assert len(result.rows) == 2 * 3 * 2  # architectures x scenarios x algorithms
    assert all(row["total_s"] > 0 for row in result.rows)
    assert all(
        row["total_s"] == pytest.approx(row["compute_s"] + row["communication_s"])
        for row in result.rows
    )


def test_edge_links_make_mdgan_communication_bound():
    result = run_timing_estimate(architectures=("cifar10-cnn",), scenarios=("edge",))
    mdgan = next(r for r in result.rows if r["algorithm"] == "md-gan")
    assert mdgan["bottleneck"] == "communication"


def test_datacenter_iterations_are_fastest():
    result = run_timing_estimate(architectures=("mnist-mlp",))
    totals = {r["scenario"]: r["total_s"] for r in result.rows if r["algorithm"] == "md-gan"}
    assert totals["datacenter"] < totals["wan"] < totals["edge"]


def test_unknown_inputs_rejected():
    with pytest.raises(ValueError, match="Unknown scenarios"):
        run_timing_estimate(scenarios=("moonbase",))
    with pytest.raises(ValueError, match="Unknown architecture"):
        run_timing_estimate(architectures=("resnet",))


def test_cli_exposes_timing(capsys):
    from repro.experiments.cli import main

    assert main(["timing"]) == 0
    out = capsys.readouterr().out
    assert "Timing estimate" in out

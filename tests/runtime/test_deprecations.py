"""Deprecation shims for the lifecycle/config API redesign.

The redesign replaced process-global mutation and magic strings with
explicit config threading and typed handles; the old surface survives as
shims that warn but keep working.  These tests pin both halves: the
``DeprecationWarning`` fires, and the legacy behaviour is unchanged.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.lifecycle import close_quietly as lifecycle_close_quietly
from repro.models import build_toy_gan
from repro.models.base import generator_input
from repro.runtime import GeneratorHandle, create_backend
from repro.runtime import backend as backend_module
from repro.runtime import pipeline, resident, transport


class _Recorder:
    """Stand-in backend whose close() can be told to blow up."""

    def __init__(self, fail: bool = False) -> None:
        self.fail = fail
        self.closed = 0

    def close(self) -> None:
        self.closed += 1
        if self.fail:
            raise RuntimeError("boom")


def test_runtime_close_quietly_warns_and_still_swallows():
    target = _Recorder(fail=True)
    with pytest.warns(DeprecationWarning, match="repro.core.lifecycle"):
        backend_module.close_quietly(target)
    assert target.closed == 1


def test_lifecycle_close_quietly_is_the_silent_canonical_form():
    target = _Recorder(fail=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        lifecycle_close_quietly(target)
    assert target.closed == 1


def test_set_shm_install_default_warns_and_still_works():
    before = resident.shm_install_default()
    try:
        with pytest.warns(DeprecationWarning, match="TrainingConfig"):
            resident.set_shm_install_default(not before)
        assert resident.shm_install_default() is (not before)
    finally:
        resident._SHM_INSTALL_DEFAULT = before


def test_set_transport_default_warns_and_still_works():
    before = transport.transport_default()
    try:
        with pytest.warns(DeprecationWarning, match="TrainingConfig"):
            transport.set_transport_default("tcp", "127.0.0.1:0")
        assert transport.transport_default() == ("tcp", "127.0.0.1:0")
        with pytest.raises(ValueError, match="Unknown transport"):
            with pytest.warns(DeprecationWarning):
                transport.set_transport_default("carrier-pigeon")
    finally:
        transport._TRANSPORT_DEFAULT = before


def test_generator_key_module_attribute_warns():
    with pytest.warns(DeprecationWarning, match="GeneratorHandle"):
        key = pipeline.GENERATOR_KEY
    assert key == GeneratorHandle().key


def test_string_key_to_start_generation_warns_but_generates():
    factory = build_toy_gan(
        image_shape=(1, 8, 8), num_classes=4, latent_dim=8, hidden=16
    )
    generator = factory.make_generator(np.random.default_rng(0))
    rng = np.random.default_rng(1)
    noise = rng.normal(0.0, 1.0, size=(4, factory.latent_dim)).astype(generator.dtype)
    labels = (
        rng.integers(0, factory.num_classes, size=4) if factory.conditional else None
    )
    g_input = generator_input(noise, labels, factory.num_classes)
    backend = create_backend("resident", max_workers=1)
    try:
        with pytest.warns(DeprecationWarning, match="GeneratorHandle"):
            pending = backend.start_generation(
                "__server_generator__",
                lambda: generator,
                generator.get_parameters(),
                [g_input],
            )
        images, _ = pending.result()[0]
        assert images.shape[0] == 4
    finally:
        backend.close()

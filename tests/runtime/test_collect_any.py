"""Completion-order collection API tests (``open_collector`` / ``collect_any``).

The FIFO ``PendingSteps``/``submit_ordered`` contract collects whole batches
in dispatch order; the collectors are its as-completed sibling powering
``aggregation="async"``.  These tests pin the order semantics of all three
collector families (eager, futures, resident), the mid-flight parameter
traffic of the resident one, and — mirroring ``test_transport.py`` — the
failure contract under fault injection: a killed slot, a dropped frame and a
truncated frame mid-``collect_any`` must each surface as a
:class:`TransportError` naming the slot and the in-flight op, poison the
pool fail-stop, and never hang.
"""

from __future__ import annotations

import time

import pytest

from repro.runtime import (
    ChaosTransport,
    EagerCollector,
    FuturesCollector,
    ResidentBackend,
    ResidentCollector,
    SerialBackend,
    ThreadBackend,
    TransportError,
)
from repro.runtime.resident import ResidentProgram, register_program, serve_slot
from repro.runtime.transport import LocalPipeTransport, TcpTransport


# A trivial resident program driven directly through the collector.
# Registered at import time, before any pool forks, so slot processes
# (pipe children and loopback tcp workers alike) inherit it.
def _echo_step(state, payload):
    if isinstance(payload, dict) and payload.get("sleep"):
        time.sleep(payload["sleep"])
    state["count"] = state.get("count", 0) + 1
    return (state["count"], payload)


register_program(
    ResidentProgram(
        name="collect-echo",
        step=_echo_step,
        pull_params=lambda state: dict(state),
        push_params=lambda state, params: state.update(params),
    )
)


def _fresh_state():
    return {"count": 0}


def _sleepy(seconds, value):
    def fn(task):
        time.sleep(seconds)
        return (value, task)

    return fn


# -- stateless collectors ----------------------------------------------------------


class TestEagerCollector:
    def test_serial_backend_collects_fifo(self):
        backend = SerialBackend()
        try:
            collector = backend.open_collector()
            assert isinstance(collector, EagerCollector)
            for key in (3, 1, 2):
                collector.dispatch(key, lambda task: task * 10, key)
            assert collector.outstanding == 3
            assert len(collector) == 3
            # Eager execution: completion order IS dispatch order — the
            # deterministic round-robin degenerate case of async mode.
            assert collector.collect_any() == (3, 30)
            assert collector.collect_any() == (1, 10)
            assert collector.collect_any() == (2, 20)
            assert collector.outstanding == 0
        finally:
            backend.close()

    def test_collect_on_empty_collector_raises(self):
        backend = SerialBackend()
        try:
            collector = backend.open_collector()
            with pytest.raises(RuntimeError, match="no outstanding"):
                collector.collect_any()
        finally:
            backend.close()

    def test_drain_discards_everything(self):
        backend = SerialBackend()
        try:
            collector = backend.open_collector()
            collector.dispatch(0, lambda task: task, "x")
            collector.drain()
            assert collector.outstanding == 0
            collector.close()
        finally:
            backend.close()


class TestFuturesCollector:
    def test_thread_backend_collects_in_completion_order(self):
        backend = ThreadBackend(max_workers=2)
        try:
            collector = backend.open_collector()
            assert isinstance(collector, FuturesCollector)
            collector.dispatch("slow", _sleepy(0.5, "s"), None)
            collector.dispatch("fast", _sleepy(0.0, "f"), None)
            assert collector.outstanding == 2
            first_key, first = collector.collect_any()
            second_key, second = collector.collect_any()
            assert first_key == "fast" and first == ("f", None)
            assert second_key == "slow" and second == ("s", None)
        finally:
            backend.close()

    def test_timeout_raises_without_losing_work(self):
        backend = ThreadBackend(max_workers=1)
        try:
            collector = backend.open_collector()
            collector.dispatch(0, _sleepy(0.5, "late"), None)
            with pytest.raises(TimeoutError):
                collector.collect_any(timeout=0.05)
            # The unit is still outstanding and collectable afterwards.
            assert collector.outstanding == 1
            assert collector.collect_any() == (0, ("late", None))
        finally:
            backend.close()

    def test_worker_exception_propagates_on_collect(self):
        backend = ThreadBackend(max_workers=1)

        def boom(task):
            raise ValueError("unit failed")

        try:
            collector = backend.open_collector()
            collector.dispatch(7, boom, None)
            with pytest.raises(ValueError, match="unit failed"):
                collector.collect_any()
        finally:
            backend.close()


# -- resident collector ------------------------------------------------------------


def _two_keys_on_distinct_slots(backend):
    """Two keys hashing to different slots of a 2-slot pool."""
    first = 0
    for candidate in range(1, 64):
        if backend._slot_for(candidate) != backend._slot_for(first):
            return first, candidate
    raise AssertionError("no distinct-slot key pair found")  # pragma: no cover


class TestResidentCollector:
    def test_completion_order_and_mid_flight_params(self):
        backend = ResidentBackend(max_workers=2)
        try:
            collector = backend.open_collector("collect-echo")
            assert isinstance(collector, ResidentCollector)
            slow, fast = _two_keys_on_distinct_slots(backend)
            collector.dispatch(slow, _fresh_state, {"sleep": 0.6})
            collector.dispatch(fast, _fresh_state, {"sleep": 0.0})
            # Mid-flight parameter traffic: the pull answers while both
            # steps are still outstanding (step replies get buffered).
            pulled = collector.pull_params([fast])
            assert pulled[fast]["count"] in (0, 1)
            first_key, _ = collector.collect_any()
            second_key, _ = collector.collect_any()
            assert first_key == fast
            assert second_key == slow
            collector.push_params({fast: {"count": 100}})
            collector.dispatch(fast, _fresh_state, {"sleep": 0.0})
            key, (count, _) = collector.collect_any()
            assert key == fast
            assert count == 101  # pushed params reached the resident state
            collector.close()
        finally:
            backend.close()

    def test_open_collector_requires_program_name(self):
        backend = ResidentBackend(max_workers=1)
        try:
            with pytest.raises(ValueError, match="program"):
                backend.open_collector()
        finally:
            backend.close()

    def test_fifo_and_collector_modes_are_mutually_exclusive(self):
        backend = ResidentBackend(max_workers=1)
        try:
            collector = backend.open_collector("collect-echo")
            collector.dispatch(0, _fresh_state, {"sleep": 0.0})
            # The strict-FIFO surface refuses while steps are uncollected ...
            with pytest.raises(RuntimeError, match="collector"):
                backend.pull_params([0])
            collector.collect_any()
            collector.close()
            # ... and closing the drained collector re-enables it.
            assert backend.pull_params([0])[0]["count"] == 1
        finally:
            backend.close()

    def test_duplicate_key_dispatch_is_rejected(self):
        backend = ResidentBackend(max_workers=1)
        try:
            collector = backend.open_collector("collect-echo")
            collector.dispatch(0, _fresh_state, {"sleep": 0.2})
            with pytest.raises(RuntimeError, match="in flight"):
                collector.dispatch(0, _fresh_state, {"sleep": 0.0})
            collector.collect_any()
            collector.close()
        finally:
            backend.close()

    def test_explicit_timeout_does_not_poison(self):
        backend = ResidentBackend(max_workers=1)
        try:
            collector = backend.open_collector("collect-echo")
            collector.dispatch(0, _fresh_state, {"sleep": 0.5})
            with pytest.raises(TimeoutError):
                collector.collect_any(timeout=0.05)
            # A caller-chosen deadline is back-pressure, not a fault: the
            # pool stays healthy and the step is still collectable.
            key, (count, _) = collector.collect_any()
            assert (key, count) == (0, 1)
            collector.close()
        finally:
            backend.close()


# -- fault injection (on the chaos harness) ----------------------------------------


class TestCollectAnyFaultInjection:
    @pytest.mark.parametrize("transport", ("pipe", "tcp"))
    def test_killed_slot_fails_stop_mid_collect(self, transport):
        # A slot process dying while its step is being awaited must surface
        # as a TransportError naming the slot and op, tear the pool down and
        # refuse later calls — never hang the event loop.
        backend = ResidentBackend(max_workers=1, transport=transport)
        try:
            collector = backend.open_collector("collect-echo")
            collector.dispatch(0, _fresh_state, {"sleep": 0.0})
            assert collector.collect_any()[0] == 0
            collector.dispatch(0, _fresh_state, {"sleep": 30.0})
            victim = backend._transport._processes[0]
            victim.kill()
            victim.join()
            started = time.monotonic()
            with pytest.raises(TransportError) as excinfo:
                collector.collect_any()
            assert time.monotonic() - started < 10.0
            assert excinfo.value.slot_index == 0
            assert excinfo.value.op == "run"
            assert backend._transport is None  # fail-stop: pool torn down
            with pytest.raises(RuntimeError, match="closed"):
                collector.collect_any()
            with pytest.raises(RuntimeError, match="closed"):
                collector.dispatch(0, _fresh_state, None)
            with pytest.raises(RuntimeError, match="previously failed"):
                backend.open_collector("collect-echo")
        finally:
            backend.close()

    def test_dropped_pipe_frame_surfaces_as_timeout_not_hang(self):
        # A dispatch frame lost on the wire means the slot never replies;
        # the transport's read_timeout must turn the silent wait into a
        # clean TransportError instead of an infinite collect_any.
        transport = ChaosTransport(LocalPipeTransport(serve_slot, read_timeout=1.0))
        backend = ResidentBackend(max_workers=1, transport=transport)
        try:
            collector = backend.open_collector("collect-echo")
            collector.dispatch(0, _fresh_state, "a")
            assert collector.collect_any() == (0, (1, "a"))
            transport.channel(0).force_next("drop")
            collector.dispatch(0, _fresh_state, "b")
            started = time.monotonic()
            with pytest.raises(TransportError, match="timed out") as excinfo:
                collector.collect_any()
            assert time.monotonic() - started < 10.0
            assert excinfo.value.slot_index == 0
            assert excinfo.value.op == "run"
            assert backend._transport is None
            with pytest.raises(RuntimeError, match="closed"):
                collector.collect_any()
            with pytest.raises(RuntimeError, match="previously failed"):
                backend.open_collector("collect-echo")
        finally:
            backend.close()

    def test_truncated_tcp_frame_poisons_fail_stop(self):
        # Half a frame followed by shutdown kills the worker mid-read; the
        # collector must observe the slot's death as a TransportError and
        # fail stop — no timeout needed, the broken stream is detectable.
        transport = ChaosTransport(TcpTransport(connect_timeout=30.0))
        backend = ResidentBackend(max_workers=1, transport=transport)
        try:
            collector = backend.open_collector("collect-echo")
            collector.dispatch(0, _fresh_state, "a")
            assert collector.collect_any() == (0, (1, "a"))
            transport.channel(0).force_next("truncate")
            collector.dispatch(0, _fresh_state, "b")
            started = time.monotonic()
            with pytest.raises(TransportError) as excinfo:
                collector.collect_any()
            assert time.monotonic() - started < 30.0
            assert excinfo.value.slot_index == 0
            assert excinfo.value.op == "run"
            assert backend._transport is None
            with pytest.raises(RuntimeError, match="closed"):
                collector.dispatch(0, _fresh_state, "c")
            with pytest.raises(RuntimeError, match="previously failed"):
                backend.open_collector("collect-echo")
        finally:
            backend.close()

"""Resident-backend protocol tests: installation, deltas, invalidation.

Bitwise parity with the serial reference is covered by ``test_parity.py``;
these tests pin the resident-specific machinery — state installs once and
then only deltas cross the IPC boundary, the state-epoch counter invalidates
stale residents, sync returns authority to the trainer, and child-side
failures surface with their traceback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FLGANTrainer, MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.runtime import ResidentBackend


@pytest.fixture(scope="module")
def small_shards_and_factory():
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(backend: str, **overrides) -> TrainingConfig:
    base = dict(iterations=4, batch_size=8, seed=11, backend=backend, max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


class TestInstallOnceThenDeltas:
    def test_state_ships_once_then_only_deltas(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            assert isinstance(backend, ResidentBackend)
            assert all(backend.installed(w.index) for w in trainer.workers)
            install_bytes = backend.ipc_bytes_sent
            trainer.train_iteration(2)
            delta_bytes = backend.ipc_bytes_sent - install_bytes
            # Iteration 1 shipped full state (model + optimizer + shard);
            # iteration 2 shipped only the generated batches.
            assert delta_bytes < install_bytes / 2
        finally:
            trainer.sync_worker_state()
            trainer.close_backend()

    def test_flgan_steps_ship_no_state_at_all(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = FLGANTrainer(factory, shards, _config("resident", iterations=6))
        trainer.train()
        # After train() the pool is closed and the trainer holds final state.
        assert trainer._backend is None
        assert all(np.isfinite(trainer.history.generator_loss))


class TestSyncAndInvalidation:
    def test_sync_returns_authoritative_state_and_invalidates(
        self, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory
        serial = MDGANTrainer(factory, shards, _config("serial"))
        resident = MDGANTrainer(factory, shards, _config("resident"))
        for iteration in (1, 2):
            serial.train_iteration(iteration)
            resident.train_iteration(iteration)
        backend = resident._backend
        resident.sync_worker_state()
        try:
            for s_worker, r_worker in zip(serial.workers, resident.workers):
                assert np.array_equal(
                    s_worker.discriminator.get_parameters(),
                    r_worker.discriminator.get_parameters(),
                )
                assert (
                    s_worker.rng.bit_generator.state
                    == r_worker.rng.bit_generator.state
                )
                assert r_worker.sampler._rng is r_worker.rng
                # Authority returned to the trainer: resident copy dropped.
                assert not backend.installed(r_worker.index)
        finally:
            resident.close_backend()
            serial.close_backend()

    def test_replace_dataset_after_sync_matches_serial(
        self, small_shards_and_factory
    ):
        # The invalidation protocol end-to-end: train, reclaim one worker's
        # state, mutate it outside the pool (replace_dataset), train on.
        # The trajectory must stay bitwise identical to a serial run that
        # performs the same mutation at the same point.
        shards, factory = small_shards_and_factory
        replacement, _ = make_gaussian_ring(n_train=48, n_test=8, image_size=8, seed=23)

        def run(backend_name):
            trainer = MDGANTrainer(factory, shards, _config(backend_name))
            for iteration in (1, 2):
                trainer.train_iteration(iteration)
            trainer.sync_worker_state([trainer.workers[0]])
            trainer.workers[0].sampler.replace_dataset(replacement)
            for iteration in (3, 4):
                trainer.train_iteration(iteration)
            trainer.sync_worker_state()
            trainer.close_backend()
            return trainer

        serial = run("serial")
        resident = run("resident")
        for s_worker, r_worker in zip(serial.workers, resident.workers):
            assert np.array_equal(
                s_worker.discriminator.get_parameters(),
                r_worker.discriminator.get_parameters(),
            )
            assert s_worker.rng.bit_generator.state == r_worker.rng.bit_generator.state
        assert np.array_equal(
            serial.generator.get_parameters(), resident.generator.get_parameters()
        )

    def test_stale_epoch_is_rejected_by_the_pool(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            # Forge the bookkeeping: pretend epoch 1 is installed while the
            # pool still holds epoch 0.  The pool must refuse to step it.
            key = trainer.workers[0].index
            backend._epochs[key] += 1
            backend._installed[key] = backend._epochs[key]
            with pytest.raises(RuntimeError, match="stale resident state"):
                trainer.train_iteration(2)
        finally:
            trainer.close_backend()

    def test_pool_failure_poisons_the_backend(self, small_shards_and_factory):
        # After any failed request some residents may hold steps the trainer
        # never merged and other slots may have unread replies: the backend
        # must fail stop (pool torn down, later calls refused) instead of
        # desyncing pipes or silently resuming from stale state.
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            key = trainer.workers[0].index
            backend._epochs[key] += 1
            backend._installed[key] = backend._epochs[key]
            with pytest.raises(RuntimeError, match="stale resident state"):
                trainer.train_iteration(2)
            # The pool is gone and nothing counts as installed any more...
            assert backend._slots is None
            assert not any(backend.installed(w.index) for w in trainer.workers)
            # ...sync_worker_state degrades to a no-op (never pulls junk)...
            trainer.sync_worker_state()
            # ...and further protocol use is refused with the original cause.
            with pytest.raises(RuntimeError, match="previously failed"):
                trainer.train_iteration(3)
        finally:
            trainer.close_backend()


class TestProtocolErrors:
    def test_pull_params_requires_installed_state(self):
        backend = ResidentBackend(max_workers=1)
        with pytest.raises(ValueError, match="pull_params requires"):
            backend.pull_params([0])
        backend.close()

    def test_unknown_program_propagates_child_traceback(self):
        backend = ResidentBackend(max_workers=1)
        try:
            with pytest.raises(RuntimeError, match="Unknown resident program"):
                backend.run_steps("no-such-program", [(0, lambda: object(), None)])
        finally:
            backend.close()

    def test_missing_install_is_an_error(self):
        # A supplier returning None means "no install payload": stepping a
        # never-installed worker must fail loudly, not train on nothing.
        backend = ResidentBackend(max_workers=1)
        try:
            with pytest.raises(RuntimeError, match="no resident state"):
                backend.run_steps("mdgan", [(0, lambda: None, None)])
        finally:
            backend.close()


class TestLifecycle:
    def test_pool_restart_reinstalls_state(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            trainer.sync_worker_state()
            backend.close()
            # The pool is gone; nothing is installed, training must resume
            # by re-installing from the (authoritative) trainer state.
            assert not any(backend.installed(w.index) for w in trainer.workers)
            trainer.train_iteration(2)
            assert all(backend.installed(w.index) for w in trainer.workers)
        finally:
            trainer.sync_worker_state()
            trainer.close_backend()

"""Resident-backend protocol tests: installation, deltas, invalidation.

Bitwise parity with the serial reference is covered by ``test_parity.py``;
these tests pin the resident-specific machinery — state installs once and
then only deltas cross the IPC boundary, the state-epoch counter invalidates
stale residents, sync returns authority to the trainer, child-side failures
surface with their traceback, the pool survives (and is exactly reused
across) consecutive ``train()`` calls, installs can ride shared memory, and
slot affinity is reproducible across interpreter runs.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core import FLGANTrainer, MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.runtime import ResidentBackend, stable_key_hash


@pytest.fixture(scope="module")
def small_shards_and_factory():
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(backend: str, **overrides) -> TrainingConfig:
    base = dict(iterations=4, batch_size=8, seed=11, backend=backend, max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


class TestInstallOnceThenDeltas:
    def test_state_ships_once_then_only_deltas(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            assert isinstance(backend, ResidentBackend)
            assert all(backend.installed(w.index) for w in trainer.workers)
            install_bytes = backend.ipc_bytes_sent
            trainer.train_iteration(2)
            delta_bytes = backend.ipc_bytes_sent - install_bytes
            # Iteration 1 shipped full state (model + optimizer + shard);
            # iteration 2 shipped only the generated batches.
            assert delta_bytes < install_bytes / 2
        finally:
            trainer.sync_worker_state()
            trainer.close_backend()

    def test_flgan_steps_ship_no_state_at_all(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = FLGANTrainer(factory, shards, _config("resident", iterations=6))
        try:
            trainer.train()
            # The pool outlives train() (persistent serving layer): the
            # residents stay installed and warm for a later call, while the
            # trainer's objects mirror the final state.
            backend = trainer._backend
            assert isinstance(backend, ResidentBackend)
            assert all(backend.installed(w.index) for w in trainer.workers)
            assert all(np.isfinite(trainer.history.generator_loss))
        finally:
            trainer.close()
        assert trainer._backend is None


class TestSyncAndInvalidation:
    def test_sync_returns_authoritative_state_and_invalidates(
        self, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory
        serial = MDGANTrainer(factory, shards, _config("serial"))
        resident = MDGANTrainer(factory, shards, _config("resident"))
        for iteration in (1, 2):
            serial.train_iteration(iteration)
            resident.train_iteration(iteration)
        backend = resident._backend
        resident.sync_worker_state()
        try:
            for s_worker, r_worker in zip(serial.workers, resident.workers):
                assert np.array_equal(
                    s_worker.discriminator.get_parameters(),
                    r_worker.discriminator.get_parameters(),
                )
                assert (
                    s_worker.rng.bit_generator.state
                    == r_worker.rng.bit_generator.state
                )
                assert r_worker.sampler._rng is r_worker.rng
                # Authority returned to the trainer: resident copy dropped.
                assert not backend.installed(r_worker.index)
        finally:
            resident.close_backend()
            serial.close_backend()

    @pytest.mark.parametrize("transport", ("pipe", "tcp"))
    def test_replace_dataset_after_sync_matches_serial(
        self, transport, small_shards_and_factory
    ):
        # The invalidation protocol end-to-end: train, reclaim one worker's
        # state, mutate it outside the pool (replace_dataset), train on.
        # The trajectory must stay bitwise identical to a serial run that
        # performs the same mutation at the same point — over either
        # transport (the state-epoch counter rides the wire protocol, so tcp
        # must honour it exactly like the pipes do).
        shards, factory = small_shards_and_factory
        replacement, _ = make_gaussian_ring(n_train=48, n_test=8, image_size=8, seed=23)

        def run(backend_name, **overrides):
            trainer = MDGANTrainer(factory, shards, _config(backend_name, **overrides))
            for iteration in (1, 2):
                trainer.train_iteration(iteration)
            trainer.sync_worker_state([trainer.workers[0]])
            trainer.workers[0].sampler.replace_dataset(replacement)
            for iteration in (3, 4):
                trainer.train_iteration(iteration)
            trainer.sync_worker_state()
            trainer.close_backend()
            return trainer

        serial = run("serial")
        resident = run("resident", transport=transport)
        for s_worker, r_worker in zip(serial.workers, resident.workers):
            assert np.array_equal(
                s_worker.discriminator.get_parameters(),
                r_worker.discriminator.get_parameters(),
            )
            assert s_worker.rng.bit_generator.state == r_worker.rng.bit_generator.state
        assert np.array_equal(
            serial.generator.get_parameters(), resident.generator.get_parameters()
        )

    @pytest.mark.parametrize("transport", ("pipe", "tcp"))
    def test_stale_epoch_is_rejected_by_the_pool(
        self, transport, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident", transport=transport))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            # Forge the bookkeeping: pretend epoch 1 is installed while the
            # pool still holds epoch 0.  The pool must refuse to step it.
            key = trainer.workers[0].index
            backend._epochs[key] += 1
            backend._installed[key] = backend._epochs[key]
            with pytest.raises(RuntimeError, match="stale resident state"):
                trainer.train_iteration(2)
        finally:
            trainer.close_backend()

    def test_pool_failure_poisons_the_backend(self, small_shards_and_factory):
        # After any failed request some residents may hold steps the trainer
        # never merged and other slots may have unread replies: the backend
        # must fail stop (pool torn down, later calls refused) instead of
        # desyncing pipes or silently resuming from stale state.
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            key = trainer.workers[0].index
            backend._epochs[key] += 1
            backend._installed[key] = backend._epochs[key]
            with pytest.raises(RuntimeError, match="stale resident state"):
                trainer.train_iteration(2)
            # The pool is gone and nothing counts as installed any more...
            assert backend._transport is None
            assert not any(backend.installed(w.index) for w in trainer.workers)
            # ...sync_worker_state degrades to a no-op (never pulls junk)...
            trainer.sync_worker_state()
            # ...and further protocol use is refused with the original cause.
            with pytest.raises(RuntimeError, match="previously failed"):
                trainer.train_iteration(3)
        finally:
            trainer.close_backend()


class TestProtocolErrors:
    def test_pull_params_requires_installed_state(self):
        backend = ResidentBackend(max_workers=1)
        with pytest.raises(ValueError, match="pull_params requires"):
            backend.pull_params([0])
        backend.close()

    def test_unknown_program_propagates_child_traceback(self):
        backend = ResidentBackend(max_workers=1)
        try:
            with pytest.raises(RuntimeError, match="Unknown resident program"):
                backend.run_steps("no-such-program", [(0, lambda: object(), None)])
        finally:
            backend.close()

    def test_missing_install_is_an_error(self):
        # A supplier returning None means "no install payload": stepping a
        # never-installed worker must fail loudly, not train on nothing.
        backend = ResidentBackend(max_workers=1)
        try:
            with pytest.raises(RuntimeError, match="no resident state"):
                backend.run_steps("mdgan", [(0, lambda: None, None)])
        finally:
            backend.close()


class TestLifecycle:
    def test_pool_restart_reinstalls_state(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            trainer.sync_worker_state()
            backend.close()
            # The pool is gone; nothing is installed, training must resume
            # by re-installing from the (authoritative) trainer state.
            assert not any(backend.installed(w.index) for w in trainer.workers)
            trainer.train_iteration(2)
            assert all(backend.installed(w.index) for w in trainer.workers)
        finally:
            trainer.sync_worker_state()
            trainer.close_backend()


class TestPersistentServing:
    """The pool is a serving layer owned by the trainer, warm across train()s."""

    def test_second_train_reuses_warm_slots(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        with MDGANTrainer(factory, shards, _config("resident")) as trainer:
            trainer.train()
            backend = trainer._backend
            assert isinstance(backend, ResidentBackend)
            installs_cold = backend.install_count
            assert installs_cold >= len(trainer.workers)
            bytes_after_cold = backend.ipc_bytes_sent
            trainer.train()
            # Same pool, same residents: re-entry ships zero install
            # payloads, only the per-iteration deltas.
            assert trainer._backend is backend
            assert backend.install_count == installs_cold
            assert backend.ipc_bytes_sent - bytes_after_cold < bytes_after_cold
        assert trainer._backend is None

    def test_sequential_trains_match_serial(self, small_shards_and_factory):
        # Warm reuse is not just cheap, it is exact: two back-to-back
        # train() calls on one trainer stay bitwise identical to the serial
        # reference doing the same thing.
        shards, factory = small_shards_and_factory

        def run(backend_name):
            with MDGANTrainer(factory, shards, _config(backend_name)) as trainer:
                trainer.train()
                trainer.train()
                return trainer

        serial = run("serial")
        resident = run("resident")
        assert np.array_equal(
            serial.generator.get_parameters(), resident.generator.get_parameters()
        )
        for s_worker, r_worker in zip(serial.workers, resident.workers):
            assert np.array_equal(
                s_worker.discriminator.get_parameters(),
                r_worker.discriminator.get_parameters(),
            )
            assert s_worker.rng.bit_generator.state == r_worker.rng.bit_generator.state

    def test_train_mirrors_state_without_reclaiming(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        serial = MDGANTrainer(factory, shards, _config("serial"))
        serial.train()
        with MDGANTrainer(factory, shards, _config("resident")) as resident:
            resident.train()
            backend = resident._backend
            # The trainer's objects hold the final models (mirror) while the
            # pool remains authoritative and installed (no epoch bump).
            for s_worker, r_worker in zip(serial.workers, resident.workers):
                assert np.array_equal(
                    s_worker.discriminator.get_parameters(),
                    r_worker.discriminator.get_parameters(),
                )
                assert r_worker.sampler._rng is r_worker.rng
            assert all(backend.installed(w.index) for w in resident.workers)

    def test_mutation_between_trains_goes_through_reclaim(
        self, small_shards_and_factory
    ):
        # The documented mutation contract survives the persistent pool:
        # reclaim authority (sync), mutate, train again — bitwise equal to a
        # serial trainer doing the same.
        shards, factory = small_shards_and_factory
        replacement, _ = make_gaussian_ring(n_train=48, n_test=8, image_size=8, seed=29)

        def run(backend_name):
            with MDGANTrainer(factory, shards, _config(backend_name)) as trainer:
                trainer.train()
                trainer.sync_worker_state([trainer.workers[1]])
                trainer.workers[1].sampler.replace_dataset(replacement)
                trainer.train()
                return trainer

        serial = run("serial")
        resident = run("resident")
        assert np.array_equal(
            serial.generator.get_parameters(), resident.generator.get_parameters()
        )
        for s_worker, r_worker in zip(serial.workers, resident.workers):
            assert np.array_equal(
                s_worker.discriminator.get_parameters(),
                r_worker.discriminator.get_parameters(),
            )

    def test_close_backend_between_trains_matches_serial(
        self, small_shards_and_factory
    ):
        # Regression: the end-of-train mirror must leave the trainer's
        # objects *complete* (including the sampler's mid-epoch shuffle
        # order/cursor), so dropping the pool and re-installing from them is
        # still bitwise-exact — not just warm reuse.
        shards, factory = small_shards_and_factory

        def run(backend_name):
            with MDGANTrainer(factory, shards, _config(backend_name)) as trainer:
                trainer.train()
                trainer.close_backend()  # cold restart: next train re-installs
                trainer.train()
                return trainer

        serial = run("serial")
        resident = run("resident")
        assert np.array_equal(
            serial.generator.get_parameters(), resident.generator.get_parameters()
        )
        for s_worker, r_worker in zip(serial.workers, resident.workers):
            assert np.array_equal(
                s_worker.discriminator.get_parameters(),
                r_worker.discriminator.get_parameters(),
            )
            assert s_worker.sampler.samples_drawn == r_worker.sampler.samples_drawn
            assert s_worker.rng.bit_generator.state == r_worker.rng.bit_generator.state

    def test_flgan_second_train_reuses_warm_slots(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        with FLGANTrainer(factory, shards, _config("resident")) as trainer:
            trainer.train()
            backend = trainer._backend
            installs_cold = backend.install_count
            trainer.train()
            assert trainer._backend is backend
            assert backend.install_count == installs_cold

    def test_mirror_payload_carries_no_dataset(self, small_shards_and_factory):
        # The end-of-train refresh must not re-ship the shard: the mirror op
        # returns exactly the model/optimizer/cursor view, nothing bulkier.
        shards, factory = small_shards_and_factory
        with MDGANTrainer(factory, shards, _config("resident")) as trainer:
            trainer.train_iteration(1)
            backend = trainer._backend
            mirrors = backend.pull_mirror([w.index for w in trainer.workers])
            assert set(mirrors) == {w.index for w in trainer.workers}
            for payload in mirrors.values():
                assert set(payload) == {
                    "discriminator",
                    "disc_opt",
                    "rng_state",
                    "sampler_cursor",
                }
            # Mirroring kept the pool warm and authoritative.
            assert all(backend.installed(w.index) for w in trainer.workers)

    def test_close_is_idempotent_and_reclaims(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config("resident"))
        trainer.train_iteration(1)
        trainer.close()
        assert trainer._backend is None
        trainer.close()  # second close is a no-op
        # The trainer stays usable: a later call rebuilds the pool lazily.
        trainer.train_iteration(2)
        trainer.close()
        assert trainer._backend is None


class TestCleanupErrorMasking:
    def test_original_exception_survives_poisoned_pool_cleanup(
        self, small_shards_and_factory
    ):
        # Regression: train()'s cleanup used to call sync_worker_state()
        # unguarded, and on a pool whose broken flag was raised mid-failure
        # (install bookkeeping still naming residents) the secondary
        # RuntimeError from _check_usable shadowed the original training
        # exception.  Cleanup must be best-effort: original error surfaces,
        # backend still gets closed.
        shards, factory = small_shards_and_factory

        class _PoisonThenExplode:
            """Evaluator stub that half-poisons the pool, then raises."""

            def __init__(self, trainer):
                self.trainer = trainer

            def evaluate(self, sample_fn, iteration):
                self.trainer._backend._broken_reason = "injected mid-run failure"
                raise ValueError("original training failure")

        trainer = MDGANTrainer(factory, shards, _config("resident", eval_every=2))
        trainer.evaluator = _PoisonThenExplode(trainer)
        with pytest.raises(ValueError, match="original training failure"):
            trainer.train()
        assert trainer._backend is None


class TestSharedMemoryInstall:
    def _run(self, shards, factory, shm: bool):
        config = _config("resident").with_overrides(shm_install=shm)
        with MDGANTrainer(factory, shards, config) as trainer:
            if shm:
                # Force even the toy arrays through shared memory so the
                # transport is genuinely exercised at test scale.
                trainer.executor.shm_min_bytes = 1
            trainer.train()
            backend = trainer._backend
            meters = (
                backend.ipc_bytes_sent,
                backend.shm_bytes_sent,
                backend.install_count,
            )
        return trainer, meters

    def test_shm_install_is_bitwise_neutral_and_off_pipe(
        self, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory
        plain, (plain_pipe, plain_shm, plain_installs) = self._run(
            shards, factory, shm=False
        )
        shm, (shm_pipe, shm_shm, shm_installs) = self._run(shards, factory, shm=True)
        # Same installs, same numerics — but the shard/model bytes moved off
        # the pipes and through shared memory.
        assert plain_shm == 0
        assert shm_shm > 0
        assert shm_installs == plain_installs
        assert shm_pipe < plain_pipe
        assert plain.history.generator_loss == shm.history.generator_loss
        assert np.array_equal(
            plain.generator.get_parameters(), shm.generator.get_parameters()
        )
        for p_worker, s_worker in zip(plain.workers, shm.workers):
            assert np.array_equal(
                p_worker.discriminator.get_parameters(),
                s_worker.discriminator.get_parameters(),
            )

    def test_segments_are_unlinked_on_close(self, small_shards_and_factory):
        from multiprocessing import shared_memory

        shards, factory = small_shards_and_factory
        config = _config("resident").with_overrides(shm_install=True)
        trainer = MDGANTrainer(factory, shards, config)
        trainer.executor.shm_min_bytes = 1
        trainer.train_iteration(1)
        backend = trainer._backend
        names = [
            segment.name
            for segments in backend._shm_segments.values()
            for segment in segments
        ]
        assert names, "expected shm-backed installs"
        trainer.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_disabled_shm_ships_plain_payloads(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        config = _config("resident").with_overrides(shm_install=False)
        with MDGANTrainer(factory, shards, config) as trainer:
            trainer.train_iteration(1)
            backend = trainer._backend
            assert backend.shm_bytes_sent == 0
            assert not backend._shm_segments


class TestStableSlotAffinity:
    def test_integer_keys_keep_positional_affinity(self):
        assert stable_key_hash(5) == 5
        assert stable_key_hash(np.int64(7)) == 7

    def test_non_integer_keys_are_seed_independent(self):
        # Pinned against the CRC of the key's repr: any interpreter run (any
        # PYTHONHASHSEED) must produce exactly these values, which is what
        # makes worker->slot affinity and the IPC meters reproducible.
        assert stable_key_hash("worker-a") == zlib.crc32(b"'worker-a'")
        assert stable_key_hash(("generator", 3)) == zlib.crc32(
            repr(("generator", 3)).encode("utf-8")
        )

    def test_slot_assignment_uses_stable_hash(self, small_shards_and_factory):
        backend = ResidentBackend(max_workers=2)
        try:
            assert backend._slot_for(3) == 1
            assert (
                backend._slot_for("__server_generator__")
                == zlib.crc32(b"'__server_generator__'") % 2
            )
        finally:
            backend.close()

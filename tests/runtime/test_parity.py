"""Backend parity: seeded runs must be bitwise identical across backends.

The execution backends only change *where* the per-worker phase runs, never
the numerics: results merge in worker-index order and the task runners touch
no shared state.  These tests pin that guarantee for MD-GAN and FL-GAN —
including under fail-stop crashes, partial participation and the Section VII
extension trainers — by comparing full loss trajectories, final parameters,
metered traffic and compute ledgers against the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AsyncMDGANTrainer,
    FLGANTrainer,
    MDGANTrainer,
    SampledMDGANTrainer,
    TrainingConfig,
)
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.simulation import CrashSchedule

#: Backend specs for parametrized parity tests.  ``"resident-tcp"`` is a
#: pseudo-backend spec: :func:`_config` maps it to the resident backend with
#: ``transport="tcp"``, so every parity scenario also pins that seeded runs
#: over loopback sockets are bitwise identical to pipes and to serial.
PARALLEL_BACKENDS = ("thread", "process", "resident", "resident-tcp")


@pytest.fixture(scope="module")
def small_shards_and_factory():
    """A tiny ring dataset split over 4 workers, plus a matched toy GAN."""
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(backend: str, **overrides) -> TrainingConfig:
    base = dict(iterations=5, batch_size=8, seed=11, backend=backend, max_workers=2)
    if backend == "resident-tcp":
        base.update(backend="resident", transport="tcp")
    base.update(overrides)
    return TrainingConfig(**base)


def _mdgan_signature(trainer) -> dict:
    history = trainer.train()
    return {
        "gen_loss": history.generator_loss,
        "disc_loss": history.discriminator_loss,
        "events": history.events,
        "generator": trainer.generator.get_parameters(),
        "discriminators": [w.discriminator.get_parameters() for w in trainer.workers],
        "traffic": trainer.cluster.meter.total_bytes(),
        "flops": [node.compute.flops for node in trainer.cluster.workers],
        "flops_by_category": [
            node.compute.by_category for node in trainer.cluster.workers
        ],
        "peak_memory": [
            node.compute.peak_memory_floats for node in trainer.cluster.workers
        ],
    }


def _assert_signatures_equal(got: dict, expected: dict) -> None:
    assert got["gen_loss"] == expected["gen_loss"]
    assert got["disc_loss"] == expected["disc_loss"]
    assert got["events"] == expected["events"]
    assert np.array_equal(got["generator"], expected["generator"])
    for got_d, exp_d in zip(got["discriminators"], expected["discriminators"]):
        assert np.array_equal(got_d, exp_d)
    assert got["traffic"] == expected["traffic"]
    assert got["flops"] == expected["flops"]
    assert got["flops_by_category"] == expected["flops_by_category"]
    assert got["peak_memory"] == expected["peak_memory"]


class TestMDGANParity:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_bitwise_identical_to_serial(self, backend, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        reference = _mdgan_signature(
            MDGANTrainer(factory, shards, _config("serial"))
        )
        got = _mdgan_signature(MDGANTrainer(factory, shards, _config(backend)))
        _assert_signatures_equal(got, reference)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parity_under_crashes_and_partial_participation(
        self, backend, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory

        def build(backend_name):
            return MDGANTrainer(
                factory,
                shards,
                _config(backend_name, participation_fraction=0.75),
                crash_schedule=CrashSchedule({2: ["worker-1"], 4: ["worker-3"]}),
            )

        reference = _mdgan_signature(build("serial"))
        got = _mdgan_signature(build(backend))
        _assert_signatures_equal(got, reference)
        # The schedule actually crashed workers, so the scenario is exercised.
        assert [e["kind"] for e in reference["events"]].count("crash") == 2

    def test_async_variant_parity(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        reference = _mdgan_signature(
            AsyncMDGANTrainer(factory, shards, _config("serial"))
        )
        got = _mdgan_signature(AsyncMDGANTrainer(factory, shards, _config("thread")))
        _assert_signatures_equal(got, reference)

    def test_sampled_variant_parity(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        reference = _mdgan_signature(
            SampledMDGANTrainer(
                factory, shards, _config("serial"), participation_fraction=0.5
            )
        )
        got = _mdgan_signature(
            SampledMDGANTrainer(
                factory, shards, _config("thread"), participation_fraction=0.5
            )
        )
        _assert_signatures_equal(got, reference)


class TestFLGANParity:
    @staticmethod
    def _signature(trainer) -> dict:
        history = trainer.train()
        return {
            "gen_loss": history.generator_loss,
            "disc_loss": history.discriminator_loss,
            "events": history.events,
            "server_generator": trainer.server_generator.get_parameters(),
            "workers": [
                (w.generator.get_parameters(), w.discriminator.get_parameters())
                for w in trainer.workers
            ],
            "traffic": trainer.cluster.meter.total_bytes(),
        }

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_bitwise_identical_to_serial(self, backend, small_shards_and_factory):
        shards, factory = small_shards_and_factory

        def build(backend_name):
            # epochs_per_swap=0.4 -> a federated round every 2 iterations, so
            # the averaging/broadcast path is crossed by the parallel phase.
            return FLGANTrainer(
                factory, shards, _config(backend_name, epochs_per_swap=0.4)
            )

        reference = self._signature(build("serial"))
        got = self._signature(build(backend))
        assert reference["events"], "expected at least one federated round"
        assert got["gen_loss"] == reference["gen_loss"]
        assert got["disc_loss"] == reference["disc_loss"]
        assert got["events"] == reference["events"]
        assert np.array_equal(
            got["server_generator"], reference["server_generator"]
        )
        for (got_g, got_d), (exp_g, exp_d) in zip(
            got["workers"], reference["workers"]
        ):
            assert np.array_equal(got_g, exp_g)
            assert np.array_equal(got_d, exp_d)
        assert got["traffic"] == reference["traffic"]

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parity_with_crashed_worker(self, backend, small_shards_and_factory):
        shards, factory = small_shards_and_factory

        def build(backend_name):
            trainer = FLGANTrainer(
                factory, shards, _config(backend_name, epochs_per_swap=0.4)
            )
            trainer.cluster.workers[2].crash()
            return trainer

        reference = self._signature(build("serial"))
        got = self._signature(build(backend))
        assert got["gen_loss"] == reference["gen_loss"]
        assert np.array_equal(
            got["server_generator"], reference["server_generator"]
        )
        assert got["traffic"] == reference["traffic"]


class TestPipelineDepthZeroParity:
    """``pipeline_depth=0`` must be bitwise identical to the default config.

    The pipelined mode is opt-in: passing an explicit depth of zero takes the
    synchronous code path on every backend, produces no staleness/overlap
    records, and leaves the trajectory untouched.
    """

    @pytest.mark.parametrize("backend", ("serial",) + PARALLEL_BACKENDS)
    def test_mdgan_depth_zero_matches_default(self, backend, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        reference = _mdgan_signature(
            MDGANTrainer(factory, shards, _config("serial"))
        )
        got_trainer = MDGANTrainer(
            factory, shards, _config(backend, pipeline_depth=0)
        )
        got = _mdgan_signature(got_trainer)
        _assert_signatures_equal(got, reference)
        assert got_trainer.history.staleness == []
        assert got_trainer.history.overlap == {}

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_mdgan_fixed_positive_depth_is_backend_invariant(
        self, backend, small_shards_and_factory
    ):
        # Depth > 0 deliberately relaxes parity *with the synchronous
        # schedule* — but for a fixed depth the trajectory (including the
        # recorded staleness) must still be identical across backends.
        shards, factory = small_shards_and_factory
        reference = _mdgan_signature(
            MDGANTrainer(factory, shards, _config("serial", pipeline_depth=1))
        )
        got = _mdgan_signature(
            MDGANTrainer(factory, shards, _config(backend, pipeline_depth=1))
        )
        _assert_signatures_equal(got, reference)

    def test_flgan_any_depth_matches_synchronous(self, small_shards_and_factory):
        # FL-GAN pipelining (resident window) is parity-preserving at every
        # depth: local iterations never touch the server model between
        # rounds, and merges stay in dispatch order.
        shards, factory = small_shards_and_factory
        reference = TestFLGANParity._signature(
            FLGANTrainer(factory, shards, _config("serial", epochs_per_swap=0.4))
        )
        got = TestFLGANParity._signature(
            FLGANTrainer(
                factory,
                shards,
                _config("resident", epochs_per_swap=0.4, pipeline_depth=2),
            )
        )
        assert got["gen_loss"] == reference["gen_loss"]
        assert got["events"] == reference["events"]
        assert np.array_equal(got["server_generator"], reference["server_generator"])
        assert got["traffic"] == reference["traffic"]


class TestComposedModes:
    """The previously forbidden mode compositions, pinned per backend.

    ``aggregation="async"`` now composes with ``pipeline_depth > 0`` (the
    engine's lookahead store, dispatched with backdated staleness marks) and
    with ``participation_fraction < 1`` (deselected in-flight units merge
    state but discard their contribution, sync's discard accounting).  The
    staleness bound must hold unchanged under both.
    """

    pytestmark = pytest.mark.composition

    @pytest.mark.parametrize("backend", ("serial",) + PARALLEL_BACKENDS)
    def test_async_pipelined_bound_holds_on_every_backend(
        self, backend, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory
        config = _config(
            backend,
            iterations=6,
            aggregation="async",
            max_staleness=1,
            pipeline_depth=2,
        )
        with MDGANTrainer(factory, shards, config) as trainer:
            history = trainer.train()
        assert len(history.iterations) == config.iterations
        assert history.max_worker_staleness() <= config.max_staleness
        assert history.overlap["p95_staleness"] <= config.max_staleness
        # The lookahead window actually overlapped: the recorded summary
        # carries the depth and at least one pre-generated batch set.
        assert history.overlap["pipeline_depth"] == 2.0
        assert history.overlap["lookahead_generations"] > 0

    def test_async_pipelined_serial_is_deterministic(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        runs = []
        for _ in range(2):
            config = _config(
                "serial",
                iterations=6,
                aggregation="async",
                max_staleness=2,
                pipeline_depth=2,
            )
            with MDGANTrainer(factory, shards, config) as trainer:
                history = trainer.train()
            runs.append(
                (
                    history.generator_loss,
                    history.discriminator_loss,
                    trainer.generator.get_parameters().tobytes(),
                )
            )
        assert runs[0] == runs[1]

    def test_async_partial_participation_discard_accounting(
        self, small_shards_and_factory
    ):
        shards, factory = small_shards_and_factory
        runs = []
        for _ in range(2):
            config = _config(
                "serial",
                iterations=6,
                aggregation="async",
                max_staleness=2,
                participation_fraction=0.5,
            )
            with MDGANTrainer(factory, shards, config) as trainer:
                history = trainer.train()
            runs.append(
                (
                    history.generator_loss,
                    history.events,
                    trainer.generator.get_parameters().tobytes(),
                )
            )
        # The run still applies exactly `iterations` global updates; units
        # from deselected workers merged their state but discarded their
        # contribution, each recorded as a participation_discard event.
        assert len(history.iterations) == config.iterations
        assert history.max_worker_staleness() <= config.max_staleness
        assert history.events_of_kind("participation_discard")
        assert runs[0] == runs[1]

    def test_flgan_async_depth_is_identity(self, small_shards_and_factory):
        # FL-GAN's async unit is already a single local iteration; a depth
        # is accepted (and recorded) but must not change the trajectory.
        shards, factory = small_shards_and_factory

        def final(depth):
            config = _config(
                "serial",
                iterations=6,
                aggregation="async",
                max_staleness=2,
                epochs_per_swap=0.5,
                pipeline_depth=depth,
            )
            with FLGANTrainer(factory, shards, config) as trainer:
                history = trainer.train()
            return history.generator_loss, trainer.server_generator.get_parameters()

        base_losses, base_params = final(0)
        depth_losses, depth_params = final(2)
        assert depth_losses == base_losses
        assert np.array_equal(depth_params, base_params)


class TestBackendStateRoundTrip:
    @pytest.mark.parametrize("backend", ("process", "resident", "resident-tcp"))
    def test_backend_advances_parent_rng_and_sampler(
        self, backend, small_shards_and_factory
    ):
        # The worker RNG and its sampler share one Generator; after a pickle
        # round-trip (process: per-iteration tasks; resident: the final
        # state sync) the re-adopted copies must still share it, and their
        # state must have advanced exactly as in a serial run.
        shards, factory = small_shards_and_factory
        serial = MDGANTrainer(factory, shards, _config("serial", iterations=2))
        serial.train()
        other = MDGANTrainer(factory, shards, _config(backend, iterations=2))
        other.train()
        for s_worker, p_worker in zip(serial.workers, other.workers):
            assert p_worker.sampler._rng is p_worker.rng
            assert (
                p_worker.rng.bit_generator.state == s_worker.rng.bit_generator.state
            )
            assert p_worker.sampler.samples_drawn == s_worker.sampler.samples_drawn

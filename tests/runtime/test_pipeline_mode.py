"""Tests for the pipelined execution mode (repro.runtime.pipeline).

Covers the building blocks (lookahead queue, in-flight window, generation
fan-out, async dispatch handles) and the end-to-end semantics: depth 0 stays
bitwise identical to the synchronous schedule, a fixed positive depth is
deterministic across backends, staleness is recorded per iteration, and
FL-GAN pipelining preserves bitwise parity at every depth.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core import FLGANTrainer, MDGANTrainer, TrainingConfig
from repro.core.gan_ops import sample_generator_images
from repro.core.history import TrainingHistory
from repro.datasets import make_gaussian_ring, make_mnist_like, partition_iid
from repro.models import build_architecture, build_toy_gan
from repro.nn.layers import BatchNorm, Dropout
from repro.runtime import (
    BatchAheadQueue,
    CompletedResult,
    InflightWindow,
    PipelineStats,
    ResidentBackend,
    can_generate_resident,
    create_backend,
    fan_out_generation,
    start_resident_generation,
)
from repro.runtime.pipeline import can_fan_out
from repro.runtime.tasks import MDGANResidentState
from repro.simulation import CrashSchedule


@pytest.fixture(scope="module")
def ring_setup():
    """A tiny ring dataset split over 4 workers, plus a matched toy GAN."""
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(backend: str, **overrides) -> TrainingConfig:
    base = dict(iterations=6, batch_size=8, seed=11, backend=backend, max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


def _mdgan_run(factory, shards, config, **trainer_kwargs):
    trainer = MDGANTrainer(factory, shards, config, **trainer_kwargs)
    history = trainer.train()
    return trainer, history


# -- building blocks ---------------------------------------------------------------


class TestBatchAheadQueue:
    def test_put_pop_roundtrip(self):
        queue = BatchAheadQueue()
        queue.put(2, ["b2"], generated_at_update=1)
        queue.put(3, ["b3"], generated_at_update=1)
        assert len(queue) == 2
        assert queue.pop(2) == (["b2"], 1)
        assert queue.pop(3) == (["b3"], 1)
        assert queue.pop(4) is None

    def test_pop_discards_skipped_targets(self):
        queue = BatchAheadQueue()
        queue.put(2, ["b2"], 0)
        queue.put(3, ["b3"], 0)
        assert queue.pop(3) == (["b3"], 0)
        assert len(queue) == 0

    def test_targets_must_ascend(self):
        queue = BatchAheadQueue()
        queue.put(5, ["b5"], 0)
        with pytest.raises(ValueError, match="ascend"):
            queue.put(5, ["again"], 0)
        # last_target survives pops, keeping the filler contiguous.
        queue.pop(5)
        assert queue.last_target == 5
        with pytest.raises(ValueError, match="ascend"):
            queue.put(4, ["b4"], 0)

    def test_clear(self):
        queue = BatchAheadQueue()
        queue.put(1, ["b1"], 0)
        queue.clear()
        assert len(queue) == 0

    def test_clear_resets_target_high_water_mark(self):
        # Regression: clear() used to keep last_target, so a crash-path
        # clear followed by a refill at an earlier target than the pre-clear
        # high-water mark raised the ascending-target ValueError.  A cleared
        # queue behaves exactly like a new one.
        queue = BatchAheadQueue()
        queue.put(5, ["b5"], 2)
        queue.clear()
        assert queue.last_target == 0
        queue.put(3, ["b3"], 2)  # earlier than the pre-clear mark: legitimate
        assert queue.pop(3) == (["b3"], 2)
        # The ascending contract still holds within the new generation.
        queue.put(4, ["b4"], 2)
        with pytest.raises(ValueError, match="ascend"):
            queue.put(4, ["again"], 2)


class TestInflightWindow:
    def test_drain_to_depth_is_fifo(self):
        window = InflightWindow(depth=1)
        window.push(("a",))
        assert list(window.drain()) == []
        window.push(("b",))
        assert list(window.drain()) == [("a",)]
        window.push(("c",))
        assert list(window.drain(0)) == [("b",), ("c",)]
        assert len(window) == 0

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            InflightWindow(depth=-1)


class TestPipelineStats:
    def test_overlap_dict_summarises(self):
        stats = PipelineStats(depth=2)
        stats.record_staleness(0)
        stats.record_staleness(2)
        stats.observe_in_flight(1)
        stats.observe_in_flight(3)
        stats.lookahead_generations = 4
        payload = stats.as_overlap_dict()
        assert payload["pipeline_depth"] == 2.0
        assert payload["mean_staleness"] == 1.0
        assert payload["max_staleness"] == 2.0
        assert payload["max_in_flight"] == 3.0
        assert payload["lookahead_generations"] == 4.0
        assert payload["p95_staleness"] == pytest.approx(1.9)
        assert payload["iterations"] == 2.0

    def test_empty_overlap_dict(self):
        payload = PipelineStats(depth=1).as_overlap_dict()
        assert payload["mean_staleness"] == 0.0
        assert payload["max_staleness"] == 0.0
        assert payload["p95_staleness"] == 0.0
        assert payload["iterations"] == 0.0


# -- async dispatch handles --------------------------------------------------------


class TestSubmitOrdered:
    @pytest.mark.parametrize("backend_name", ("serial", "thread", "process"))
    def test_matches_map_ordered(self, backend_name):
        backend = create_backend(backend_name, 2)
        try:
            tasks = list(range(7))
            handle = backend.submit_ordered(_square, tasks)
            assert handle.result() == backend.map_ordered(_square, tasks)
        finally:
            backend.close()

    def test_single_task_runs_inline(self):
        backend = create_backend("thread", 2)
        try:
            handle = backend.submit_ordered(_square, [3])
            assert isinstance(handle, CompletedResult)
            assert handle.done
            assert handle.result() == [9]
        finally:
            backend.close()


def _square(x):
    return x * x


class TestResidentPendingSteps:
    def test_out_of_order_collect_raises(self, ring_setup):
        backend = ResidentBackend(max_workers=2)
        try:
            first = backend.start_steps("flgan", _flgan_items2())
            second = backend.start_steps("flgan", _flgan_items2())
            with pytest.raises(RuntimeError, match="dispatch order"):
                second.result()
            first.result()
            second.result()
        finally:
            backend.close()

    def test_boundary_ops_refused_while_inflight(self, ring_setup):
        backend = ResidentBackend(max_workers=2)
        try:
            handle = backend.start_steps("flgan", _flgan_items2())
            with pytest.raises(RuntimeError, match="in flight"):
                backend.pull_params([0])
            handle.result()
        finally:
            backend.close()

    def test_drain_inflight_collects_everything(self):
        backend = ResidentBackend(max_workers=2)
        try:
            backend.start_steps("flgan", _flgan_items2())
            backend.start_steps("flgan", _flgan_items2())
            assert backend.drain_inflight() == 2
            assert backend.drain_inflight() == 0
        finally:
            backend.close()

    def test_dead_handle_raises_after_close(self):
        backend = ResidentBackend(max_workers=2)
        handle = backend.start_steps("flgan", _flgan_items2())
        backend.close()
        with pytest.raises(RuntimeError, match="closed or poisoned"):
            handle.result()

    def test_empty_dispatch_returns_trivial_handle(self):
        backend = ResidentBackend(max_workers=2)
        try:
            handle = backend.start_steps("flgan", [])
            assert handle.result() == []
        finally:
            backend.close()


_FLGAN_STATE_CACHE = {}


def _flgan_items2():
    """One-worker FL-GAN step items against a cached tiny trainer state."""
    if "trainer" not in _FLGAN_STATE_CACHE:
        train, _ = make_gaussian_ring(n_train=40, n_test=10, image_size=8, seed=5)
        factory = build_toy_gan(
            image_shape=train.spec.shape,
            num_classes=train.num_classes,
            latent_dim=8,
            hidden=16,
        )
        trainer = FLGANTrainer(
            factory, [train], TrainingConfig(iterations=1, batch_size=8, seed=3)
        )
        _FLGAN_STATE_CACHE["trainer"] = trainer
    trainer = _FLGAN_STATE_CACHE["trainer"]
    worker = trainer.workers[0]
    return [(worker.index, lambda: trainer._resident_state(worker), None)]


# -- generation fan-out ------------------------------------------------------------


class TestGenerationFanOut:
    @pytest.fixture(scope="class")
    def conv_generator(self):
        """A BatchNorm-bearing conv generator plus its factory."""
        train, _ = make_mnist_like(n_train=64, n_test=16, image_size=16, seed=7)
        factory = build_architecture(
            "mnist-cnn",
            image_shape=train.spec.shape,
            num_classes=train.num_classes,
            width_factor=0.5,
            use_minibatch_discrimination=False,
        )
        generator = factory.make_generator(np.random.default_rng(5))
        assert any(isinstance(layer, BatchNorm) for layer in generator.layers)
        # Warm the BN running stats so the fold-back has non-trivial state.
        sample_generator_images(generator, factory, 16, np.random.default_rng(1))
        return generator, factory

    @pytest.mark.parametrize("backend_name", ("thread", "process"))
    def test_bitwise_identical_to_serial_loop(self, backend_name, conv_generator):
        generator, factory = conv_generator
        gen_serial = copy.deepcopy(generator)
        gen_fanned = copy.deepcopy(generator)
        rng_serial = np.random.default_rng(42)
        rng_fanned = np.random.default_rng(42)
        k, batch = 5, 16
        serial = [
            sample_generator_images(gen_serial, factory, batch, rng_serial, batch_index=j)
            for j in range(k)
        ]
        backend = create_backend(backend_name, 2)
        try:
            fanned = fan_out_generation(backend, gen_fanned, factory, batch, k, rng_fanned)
        finally:
            backend.close()
        assert fanned is not None
        for ref, got in zip(serial, fanned):
            assert np.array_equal(ref.images, got.images)
            assert np.array_equal(ref.noise, got.noise)
            assert ref.batch_index == got.batch_index
            if ref.labels is None:
                assert got.labels is None
            else:
                assert np.array_equal(ref.labels, got.labels)
        for layer_ref, layer_got in zip(gen_serial.layers, gen_fanned.layers):
            if isinstance(layer_ref, BatchNorm):
                assert np.array_equal(layer_ref.running_mean, layer_got.running_mean)
                assert np.array_equal(layer_ref.running_var, layer_got.running_var)
        assert rng_serial.bit_generator.state == rng_fanned.bit_generator.state

    def test_declined_for_serial_backend_and_small_k(self, conv_generator):
        generator, factory = conv_generator
        serial = create_backend("serial")
        assert not can_fan_out(serial, generator, 8)
        thread = create_backend("thread", 2)
        try:
            assert not can_fan_out(thread, generator, 1)
            assert can_fan_out(thread, generator, 2)
        finally:
            thread.close()

    def test_declined_for_dropout_generators(self, conv_generator):
        generator, factory = conv_generator
        generator = copy.deepcopy(generator)
        generator.layers.append(Dropout(0.3))
        thread = create_backend("thread", 2)
        try:
            assert not can_fan_out(thread, generator, 4)
            assert (
                fan_out_generation(
                    thread, generator, factory, 8, 4, np.random.default_rng(0)
                )
                is None
            )
        finally:
            thread.close()


# -- resident-side generation ------------------------------------------------------


class TestResidentGeneration:
    @pytest.fixture(scope="class")
    def conv_generator(self):
        """A BatchNorm-bearing conv generator plus its factory."""
        train, _ = make_mnist_like(n_train=64, n_test=16, image_size=16, seed=7)
        factory = build_architecture(
            "mnist-cnn",
            image_shape=train.spec.shape,
            num_classes=train.num_classes,
            width_factor=0.5,
            use_minibatch_discrimination=False,
        )
        generator = factory.make_generator(np.random.default_rng(5))
        # Warm the BN running stats so the fold-back has non-trivial state.
        sample_generator_images(generator, factory, 16, np.random.default_rng(1))
        return generator, factory

    def test_bitwise_identical_to_serial_loop(self, conv_generator):
        generator, factory = conv_generator
        gen_serial = copy.deepcopy(generator)
        gen_resident = copy.deepcopy(generator)
        rng_serial = np.random.default_rng(42)
        rng_resident = np.random.default_rng(42)
        k, batch = 5, 16
        serial = [
            sample_generator_images(gen_serial, factory, batch, rng_serial, batch_index=j)
            for j in range(k)
        ]
        backend = ResidentBackend(max_workers=2)
        try:
            pending = start_resident_generation(
                backend, gen_resident, factory, batch, k, rng_resident
            )
            assert pending is not None
            got = pending.collect()
        finally:
            backend.close()
        for ref, out in zip(serial, got):
            assert np.array_equal(ref.images, out.images)
            assert np.array_equal(ref.noise, out.noise)
            assert ref.batch_index == out.batch_index
            if ref.labels is None:
                assert out.labels is None
            else:
                assert np.array_equal(ref.labels, out.labels)
        for layer_ref, layer_got in zip(gen_serial.layers, gen_resident.layers):
            if isinstance(layer_ref, BatchNorm):
                assert np.array_equal(layer_ref.running_mean, layer_got.running_mean)
                assert np.array_equal(layer_ref.running_var, layer_got.running_var)
        assert rng_serial.bit_generator.state == rng_resident.bit_generator.state

    def test_generator_installs_once_then_ships_params_only(self, conv_generator):
        generator, factory = conv_generator
        generator = copy.deepcopy(generator)
        backend = ResidentBackend(max_workers=2)
        try:
            rng = np.random.default_rng(3)
            start_resident_generation(backend, generator, factory, 8, 4, rng).collect()
            installs = backend.install_count
            assert installs == 2  # one generator copy per used slot
            bytes_after_install = backend.ipc_bytes_sent
            start_resident_generation(backend, generator, factory, 8, 4, rng).collect()
            assert backend.install_count == installs
            # The second round ships only parameters + inputs, no structure.
            assert backend.ipc_bytes_sent - bytes_after_install < bytes_after_install
        finally:
            backend.close()

    def test_declined_for_dropout_and_non_resident_backends(self, conv_generator):
        generator, factory = conv_generator
        thread = create_backend("thread", 2)
        backend = ResidentBackend(max_workers=2)
        try:
            assert not can_generate_resident(thread, generator, 4)
            assert can_generate_resident(backend, generator, 1)
            dropout_gen = copy.deepcopy(generator)
            dropout_gen.layers.append(Dropout(0.3))
            assert not can_generate_resident(backend, dropout_gen, 4)
            assert (
                start_resident_generation(
                    backend, dropout_gen, factory, 8, 4, np.random.default_rng(0)
                )
                is None
            )
        finally:
            thread.close()
            backend.close()


# -- end-to-end pipelined training -------------------------------------------------


class TestPipelinedMDGAN:
    def test_depth_zero_records_no_pipeline_fields(self, ring_setup):
        shards, factory = ring_setup
        _, history = _mdgan_run(factory, shards, _config("serial"))
        assert history.staleness == []
        assert history.overlap == {}

    def test_depth_one_staleness_ramp(self, ring_setup):
        shards, factory = ring_setup
        _, history = _mdgan_run(
            factory, shards, _config("serial", pipeline_depth=1)
        )
        # Cold start generates iteration 1's batches on the spot (staleness
        # 0); every later iteration consumes a one-iteration-old batch set.
        assert history.staleness == [0, 1, 1, 1, 1, 1]
        assert history.overlap["pipeline_depth"] == 1.0
        assert history.overlap["max_staleness"] == 1.0
        assert history.overlap["lookahead_generations"] == 5.0
        assert history.overlap["immediate_generations"] == 1.0
        assert len(history.staleness) == len(history.iterations)

    def test_depth_two_staleness_caps_at_depth(self, ring_setup):
        shards, factory = ring_setup
        _, history = _mdgan_run(
            factory, shards, _config("serial", pipeline_depth=2)
        )
        assert history.staleness == [0, 1, 2, 2, 2, 2]
        assert max(history.staleness) <= 2

    @pytest.mark.parametrize("backend", ("thread", "process", "resident"))
    def test_fixed_depth_deterministic_across_backends(self, backend, ring_setup):
        shards, factory = ring_setup
        ref_trainer, ref = _mdgan_run(
            factory, shards, _config("serial", pipeline_depth=1)
        )
        got_trainer, got = _mdgan_run(
            factory, shards, _config(backend, pipeline_depth=1)
        )
        assert got.generator_loss == ref.generator_loss
        assert got.discriminator_loss == ref.discriminator_loss
        assert got.staleness == ref.staleness
        assert got.events == ref.events
        assert np.array_equal(
            got_trainer.generator.get_parameters(),
            ref_trainer.generator.get_parameters(),
        )

    def test_depth_changes_trajectory_vs_sync(self, ring_setup):
        # Not an accident of the toy setup: stale batches really do feed the
        # workers, so the trajectory must differ from the synchronous one.
        shards, factory = ring_setup
        _, sync = _mdgan_run(factory, shards, _config("serial"))
        _, pipe = _mdgan_run(factory, shards, _config("serial", pipeline_depth=1))
        assert pipe.generator_loss != sync.generator_loss

    def test_pipelined_with_crashes_and_partial_participation(self, ring_setup):
        shards, factory = ring_setup

        def build(backend):
            return MDGANTrainer(
                factory,
                shards,
                _config(backend, pipeline_depth=1, participation_fraction=0.75),
                crash_schedule=CrashSchedule({2: ["worker-1"], 4: ["worker-3"]}),
            )

        ref_trainer = build("serial")
        ref = ref_trainer.train()
        assert [e["kind"] for e in ref.events].count("crash") == 2
        for backend in ("thread", "resident"):
            got_trainer = build(backend)
            got = got_trainer.train()
            assert got.generator_loss == ref.generator_loss
            assert got.staleness == ref.staleness
            assert got.events == ref.events
            assert np.array_equal(
                got_trainer.generator.get_parameters(),
                ref_trainer.generator.get_parameters(),
            )

    def test_cold_start_generation_fans_out_on_concurrent_backends(self, ring_setup):
        shards, factory = ring_setup
        # k = 4 >= 2 and the toy generator is fan-out-safe (no Dropout), so
        # the thread backend's cold-start generation goes through the fanned
        # path; the resident backend routes it through its own pool slots
        # (the dedicated generation op) and counts as fanned out too.
        _, threaded = _mdgan_run(
            factory, shards, _config("thread", pipeline_depth=1, num_batches=4)
        )
        assert threaded.overlap["fanout_generations"] == 1.0
        assert threaded.overlap["resident_generations"] == 0.0
        _, resident = _mdgan_run(
            factory, shards, _config("resident", pipeline_depth=1, num_batches=4)
        )
        assert resident.overlap["fanout_generations"] == 1.0
        # ...and its lookahead generations all ran off the trainer thread.
        assert (
            resident.overlap["resident_generations"]
            == resident.overlap["lookahead_generations"]
            > 0
        )
        # Scheduling, not numerics: both backends still agree bitwise.
        assert threaded.generator_loss == resident.generator_loss

    def test_all_crash_break_still_records_overlap(self, ring_setup):
        # Early-exit path 1: the all_workers_crashed break must not drop the
        # overlap/staleness summary, and the history must round-trip.
        shards, factory = ring_setup
        trainer = MDGANTrainer(
            factory,
            shards,
            _config("serial", pipeline_depth=1),
            crash_schedule=CrashSchedule({3: [f"worker-{i}" for i in range(4)]}),
        )
        history = trainer.train()
        assert any(e["kind"] == "all_workers_crashed" for e in history.events)
        assert history.overlap["pipeline_depth"] == 1.0
        assert history.staleness  # the pre-crash iterations kept their records
        restored = TrainingHistory.from_dict(history.as_dict())
        assert restored.overlap == history.overlap
        assert restored.staleness == history.staleness

    @pytest.mark.parametrize("backend", ("serial", "resident"))
    def test_exception_still_records_overlap(self, backend, ring_setup):
        # Early-exit path 2: an exception mid-run (here: the evaluator)
        # surfaces unchanged while the overlap summary is still recorded.
        shards, factory = ring_setup

        class _ExplodingEvaluator:
            def evaluate(self, sample_fn, iteration):
                raise ValueError("evaluation exploded")

        trainer = MDGANTrainer(
            factory,
            shards,
            _config(backend, pipeline_depth=1, eval_every=3),
            evaluator=_ExplodingEvaluator(),
        )
        with pytest.raises(ValueError, match="evaluation exploded"):
            trainer.train()
        assert trainer.history.overlap["pipeline_depth"] == 1.0
        assert len(trainer.history.staleness) == 3
        restored = TrainingHistory.from_dict(trainer.history.as_dict())
        assert restored.overlap == trainer.history.overlap
        assert restored.staleness == trainer.history.staleness
        # The failed run's cleanup closed the backend (best effort).
        assert trainer._backend is None

    def test_staleness_counts_missed_updates(self, ring_setup):
        shards, factory = ring_setup
        trainer, history = _mdgan_run(
            factory, shards, _config("resident", pipeline_depth=1)
        )
        # One generator update per non-empty iteration; at depth 1 every
        # post-warmup batch set missed exactly the previous iteration's.
        assert trainer._gen_update_count == len(history.iterations)
        assert history.overlap["mean_staleness"] == pytest.approx(5 / 6)


class TestPipelinedFLGAN:
    def test_resident_windowed_is_bitwise_identical(self, ring_setup):
        shards, factory = ring_setup

        def signature(backend, depth):
            trainer = FLGANTrainer(
                factory,
                shards,
                _config(backend, epochs_per_swap=0.4, pipeline_depth=depth),
            )
            history = trainer.train()
            return (
                history.generator_loss,
                history.events,
                trainer.server_generator.get_parameters(),
                trainer.cluster.meter.total_bytes(),
                dict(history.overlap),
            )

        ref = signature("serial", 0)
        assert any(e["kind"] == "federated_round" for e in ref[1])
        for depth in (1, 3):
            got = signature("resident", depth)
            assert got[0] == ref[0]
            assert got[1] == ref[1]
            assert np.array_equal(got[2], ref[2])
            assert got[3] == ref[3]
            # The window genuinely overlapped (> 1 in flight at the peak).
            assert got[4]["max_in_flight"] >= 2

    def test_exception_still_records_overlap(self, ring_setup):
        shards, factory = ring_setup

        class _ExplodingEvaluator:
            def evaluate(self, sample_fn, iteration):
                raise ValueError("evaluation exploded")

        trainer = FLGANTrainer(
            factory,
            shards,
            _config("resident", epochs_per_swap=0.4, pipeline_depth=2, eval_every=3),
            evaluator=_ExplodingEvaluator(),
        )
        with pytest.raises(ValueError, match="evaluation exploded"):
            trainer.train()
        assert trainer.history.overlap["pipeline_depth"] == 2.0
        restored = TrainingHistory.from_dict(trainer.history.as_dict())
        assert restored.overlap == trainer.history.overlap

    def test_non_resident_depth_falls_back_to_sync(self, ring_setup):
        shards, factory = ring_setup
        trainer = FLGANTrainer(
            factory, shards, _config("thread", epochs_per_swap=0.4, pipeline_depth=2)
        )
        history = trainer.train()
        # Recorded overlap shows the fallback: nothing was ever in flight.
        assert history.overlap["max_in_flight"] == 0.0
        ref = FLGANTrainer(
            factory, shards, _config("serial", epochs_per_swap=0.4)
        ).train()
        assert history.generator_loss == ref.generator_loss


def test_resident_state_type_still_used():
    """Guard: the resident MD-GAN install payload keeps its public shape."""
    fields = set(MDGANResidentState.__dataclass_fields__)
    assert {"worker_index", "discriminator", "sampler", "rng"} <= fields

"""Elastic membership chaos suite: join/leave/reconnect mid-run.

Fail-stop is the default and stays bitwise identical to the pre-membership
runtime (pinned here across all four backends).  Under an elastic
``on_slot_loss`` policy the pool must instead *survive* slot churn:

* a killed slot is quarantined (not poisoned) — its workers' step results
  come back as :data:`LOST`, the pool keeps serving survivors, and the
  trainer-side policy evicts (``degrade``) or blocks-and-reassigns
  (``wait``) the lost workers at the next aggregation boundary;
* evicted workers' shards are redistributed across survivors, and FedAvg
  weights follow the *live* shard sizes;
* a late ``worker_host --connect`` joiner is admitted through the versioned
  re-handshake, revives evicted workers from their last merged mirror after
  exactly one rebalance boundary, and contributes from the next iteration.

Faults are injected deterministically through the
:class:`~repro.runtime.transport.chaos.ChaosTransport` harness (scripted
schedules and scripted ``kill_slot`` calls — no timing races, fixed seeds).
"""

from __future__ import annotations

import multiprocessing
import select
import time

import numpy as np
import pytest

from repro.core import FLGANTrainer, MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.runtime import (
    LOST,
    ChaosAction,
    ChaosSchedule,
    ChaosTransport,
    MembershipPolicy,
    PoolMembership,
    ResidentBackend,
    SlotLossError,
    TransportError,
    stable_key_hash,
)
from repro.runtime.resident import ResidentProgram, register_program, serve_slot
from repro.runtime.transport import LocalPipeTransport, TcpTransport
from repro.runtime.worker_host import run_worker

pytestmark = pytest.mark.chaos


# A trivial resident program the backend-level tests drive directly.
# Registered at import time, before any pool forks, so slot processes
# (pipe children and loopback tcp workers alike) inherit it.
def _echo_step(state, payload):
    if isinstance(payload, dict) and payload.get("sleep"):
        time.sleep(payload["sleep"])
    state["count"] = state.get("count", 0) + 1
    return (state["count"], payload)


register_program(
    ResidentProgram(
        name="member-echo",
        step=_echo_step,
        pull_params=lambda state: dict(state),
        push_params=lambda state, params: state.update(params),
    )
)


def _fresh_state():
    return {"count": 0}


def _degrade(**overrides) -> MembershipPolicy:
    base = dict(on_slot_loss="degrade", min_workers=1, rejoin_backoff=0.1, rejoin_timeout=5.0)
    base.update(overrides)
    return MembershipPolicy(**base)


def _elastic_pipe_backend(schedule=None, read_timeout=None, policy=None):
    """A 2-slot elastic pipe pool behind the chaos harness."""
    transport = ChaosTransport(
        LocalPipeTransport(serve_slot, read_timeout=read_timeout), schedule=schedule
    )
    backend = ResidentBackend(
        max_workers=2, transport=transport, membership_policy=policy or _degrade()
    )
    return backend, transport


# Founding hash placement on a 2-slot pool: small integer keys alternate
# slots (0 -> slot 0, 1 -> slot 1, 2 -> slot 0, ...), pinned here so every
# chaos script below can name its victim deterministically.
def test_small_keys_alternate_slots():
    assert [stable_key_hash(k) % 2 for k in range(4)] == [0, 1, 0, 1]


# -- membership primitives ---------------------------------------------------------


class TestMembershipPrimitives:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="on_slot_loss"):
            MembershipPolicy(on_slot_loss="explode")
        with pytest.raises(ValueError, match="min_workers"):
            MembershipPolicy(on_slot_loss="degrade", min_workers=0)
        with pytest.raises(ValueError, match="rejoin_backoff"):
            MembershipPolicy(on_slot_loss="wait", rejoin_backoff=0.0)
        assert not MembershipPolicy().elastic
        assert MembershipPolicy(on_slot_loss="degrade").elastic
        assert MembershipPolicy(on_slot_loss="wait").elastic

    def test_slot_loss_error_is_a_transport_error(self):
        exc = SlotLossError("slot 1 died", slot_index=1, op="run", lost_keys=[3, 0])
        assert isinstance(exc, TransportError)
        assert exc.slot_index == 1
        assert exc.op == "run"
        assert exc.lost_keys == [3, 0]
        assert SlotLossError("bare").lost_keys == []

    def test_record_counters_and_pending_loss(self):
        membership = PoolMembership(policy=_degrade())
        membership.record("slot_loss", slot=1, detail="killed")
        membership.record("evict", worker=3)
        membership.record("evict", worker=1)
        assert membership.counters_snapshot() == {"slot_loss": 1, "evict": 2}
        # The snapshot is a copy, not a live view.
        membership.counters_snapshot()["evict"] = 99
        assert membership.counters["evict"] == 2
        membership.pending_loss.update({3, 1})
        assert membership.take_pending_loss() == [1, 3]  # sorted, then cleared
        assert membership.take_pending_loss() == []


class TestChaosHarness:
    def test_action_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosAction(slot=0, frame_index=0, kind="meteor")

    def test_random_schedule_is_seed_deterministic(self):
        kwargs = dict(num_slots=2, num_frames=32, drop=0.2, delay=0.1, disconnect=0.1)
        first = ChaosSchedule.random(seed=7, **kwargs)
        again = ChaosSchedule.random(seed=7, **kwargs)
        assert len(first) > 0
        assert first._by_key.keys() == again._by_key.keys()
        assert [a.kind for a in first._by_key.values()] == [
            a.kind for a in again._by_key.values()
        ]
        # Actions fire exactly once.
        key = next(iter(first._by_key))
        assert first.take(*key) is not None
        assert first.take(*key) is None

    def test_schedule_free_wrapper_is_transparent(self):
        # No schedule, fail-stop pool: the wrapper must be byte-for-byte
        # invisible to the protocol.
        transport = ChaosTransport(LocalPipeTransport(serve_slot))
        backend = ResidentBackend(max_workers=2, transport=transport)
        try:
            out = backend.run_steps(
                "member-echo", [(0, _fresh_state, "a"), (1, _fresh_state, "b")]
            )
            assert out == [(1, "a"), (1, "b")]
            assert backend.pull_params([0])[0]["count"] == 1
        finally:
            backend.close()


# -- backend-level quarantine (pipe) -----------------------------------------------


class TestElasticBackendPipe:
    def test_killed_slot_quarantines_and_pool_survives(self):
        backend, transport = _elastic_pipe_backend()
        try:
            out = backend.run_steps(
                "member-echo", [(0, _fresh_state, "a"), (1, _fresh_state, "b")]
            )
            assert out == [(1, "a"), (1, "b")]
            transport.kill_slot(0)
            out = backend.run_steps(
                "member-echo", [(0, _fresh_state, "a2"), (1, _fresh_state, "b2")]
            )
            # Key 0 lived on the dead slot: its result is LOST, the
            # survivor's step still completed.
            assert out[0] is LOST
            assert out[1] == (2, "b2")
            membership = backend.membership
            assert backend.alive_slot_count() == 1
            assert membership.counters["slot_loss"] == 1
            assert membership.take_pending_loss() == [0]
            # The lost key re-dispatches onto the surviving slot: its install
            # was popped at quarantine time, so the (fresh) trainer-side
            # state is re-shipped and the step runs there.
            out = backend.run_steps("member-echo", [(0, _fresh_state, "a3")])
            assert out == [(1, "a3")]
            assert backend._slot_for(0) == backend._slot_for(1)
        finally:
            backend.close()

    def test_last_surviving_slot_fails_stop(self):
        # Elasticity never yields an empty pool: a fault on the only alive
        # slot is handled exactly like fail-stop (poison, not quarantine).
        backend, transport = _elastic_pipe_backend()
        try:
            backend.run_steps(
                "member-echo", [(0, _fresh_state, "a"), (1, _fresh_state, "b")]
            )
            transport.kill_slot(0)
            out = backend.run_steps("member-echo", [(0, _fresh_state, "a2")])
            assert out == [LOST]  # slot 0 quarantined; slot 1 is the last alive
            transport.kill_slot(1)
            with pytest.raises(TransportError) as excinfo:
                backend.run_steps("member-echo", [(1, _fresh_state, "b3")])
            assert not isinstance(excinfo.value, SlotLossError)
            assert backend._transport is None  # fail-stop: pool torn down
            with pytest.raises(RuntimeError, match="previously failed"):
                backend.run_steps("member-echo", [(1, _fresh_state, "b4")])
        finally:
            backend.close()

    def test_stale_fault_on_quarantined_slot_is_ignored(self):
        backend, transport = _elastic_pipe_backend()
        try:
            backend.run_steps(
                "member-echo", [(0, _fresh_state, "a"), (1, _fresh_state, "b")]
            )
            lost = backend.quarantine_slot(0, reason="scripted")
            assert lost == [0]
            # Quarantining twice is idempotent ...
            assert backend.quarantine_slot(0, reason="again") == []
            # ... and a late-arriving wire fault for the same slot is stale
            # news: no poisoning, no second loss.
            assert backend._wire_fault(0, "run", "late echo", "late echo") is None
            assert backend.membership.counters["slot_loss"] == 1
            assert backend._broken_reason is None
        finally:
            backend.close()

    def test_exploding_channel_close_never_masks_the_loss(self):
        # Satellite regression: quarantine closes the dead slot's channel
        # best-effort; a TransportError/OSError raised by that close must
        # not replace the loss being handled — and a later pool close() must
        # also survive the unusable channel.
        backend, transport = _elastic_pipe_backend()
        try:
            backend.run_steps(
                "member-echo", [(0, _fresh_state, "a"), (1, _fresh_state, "b")]
            )

            def exploding_close():
                raise OSError("close exploded")

            transport.channel(0).close = exploding_close
            lost = backend.quarantine_slot(0, reason="scripted kill")
            assert lost == [0]  # the real outcome survived the broken close
            assert backend.membership.counters["slot_loss"] == 1
            out = backend.run_steps("member-echo", [(1, _fresh_state, "b2")])
            assert out == [(2, "b2")]
        finally:
            backend.close()  # must not raise through the exploding channel

    def test_scheduled_disconnect_degrades_the_pool(self):
        # A scripted mid-run disconnect (seeded chaos, not an imperative
        # kill) quarantines its slot; the run completes on the survivor.
        schedule = ChaosSchedule(
            (ChaosAction(slot=1, frame_index=3, kind="disconnect"),)
        )
        backend, transport = _elastic_pipe_backend(schedule=schedule)
        try:
            results = []
            for step in range(6):
                results.append(
                    backend.run_steps(
                        "member-echo",
                        [(0, _fresh_state, step), (1, _fresh_state, step)],
                    )
                )
            assert len(schedule) == 0  # the scripted fault fired
            assert backend.membership.counters["slot_loss"] == 1
            assert backend.alive_slot_count() == 1
            lost_rounds = [r for r in results if any(v is LOST for v in r)]
            assert len(lost_rounds) == 1
            # Both keys kept stepping on the survivor after the loss.
            assert all(v is not LOST for v in results[-1])
        finally:
            backend.close()

    def test_wait_policy_heals_via_replacement_slot(self):
        # Backend half of the "wait" policy: the pipe transport can respawn
        # capacity, and the lost key's next dispatch reinstalls there.
        policy = MembershipPolicy(
            on_slot_loss="wait", rejoin_backoff=0.05, rejoin_timeout=5.0
        )
        backend, transport = _elastic_pipe_backend(policy=policy)
        try:
            backend.run_steps(
                "member-echo", [(0, _fresh_state, "a"), (1, _fresh_state, "b")]
            )
            transport.kill_slot(0)
            out = backend.run_steps(
                "member-echo", [(0, _fresh_state, "x"), (1, _fresh_state, "y")]
            )
            assert out[0] is LOST
            replacement = backend.open_replacement_slot()
            assert replacement == 2  # appended; existing indices never renumber
            assert backend.alive_slot_count() == 2
            counters = backend.membership_counters()
            assert counters["join"] == 1
            assert counters["reconnect_attempt"] == 1
            # The orphaned key was repointed at the new slot and reinstalls.
            assert backend._slot_for(0) == replacement
            out = backend.run_steps("member-echo", [(0, _fresh_state, "x2")])
            assert out == [(1, "x2")]
        finally:
            backend.close()


# -- trainer-level chaos -----------------------------------------------------------


@pytest.fixture(scope="module")
def ring_setup3():
    """A tiny ring dataset split over 3 workers, plus a matched toy GAN."""
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 3, np.random.default_rng(3))
    return shards, factory


@pytest.fixture(scope="module")
def ring_setup4():
    """The same ring split over 4 workers (MD-GAN scenarios)."""
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(**overrides) -> TrainingConfig:
    base = dict(iterations=6, batch_size=8, seed=11, backend="resident", max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


def _adopt_chaos_tcp(trainer, config, schedule=None):
    """Give the trainer a chaos-wrapped loopback tcp pool it owns."""
    transport = ChaosTransport(TcpTransport(connect_timeout=30.0), schedule=schedule)
    backend = ResidentBackend(
        max_workers=config.max_workers,
        transport=transport,
        membership_policy=config.membership_policy(),
    )
    trainer.adopt_backend(backend, owned=True)
    return backend, transport


class TestDegradeTcp:
    def test_killed_tcp_slot_completes_run_and_rebalances(self, ring_setup3):
        # Acceptance (a): a killed TCP slot under "degrade" still completes
        # the run; the evicted worker's shard is redistributed and the final
        # scores land within tolerance of an (N-1)-worker baseline.
        shards, factory = ring_setup3
        config = _config(epochs_per_swap=0.4, on_slot_loss="degrade")
        trainer = FLGANTrainer(factory, shards, config)
        captured_weights = []
        import repro.core.flgan as flgan_mod

        real_average = flgan_mod.weighted_average_parameters

        def capture_average(vectors, weights):
            captured_weights.append(list(weights))
            return real_average(vectors, weights)

        flgan_mod.weighted_average_parameters = capture_average
        try:
            backend, transport = _adopt_chaos_tcp(trainer, config)
            assert trainer.iterations_per_round == 3  # rounds at 3 and 6
            for iteration in (1, 2, 3):
                trainer._elastic_iteration(iteration, trainer._sync_iteration)
            # Worker 1 is alone on slot 1 (founding hash placement); killing
            # that slot evicts exactly one worker and leaves two survivors.
            transport.kill_slot(1)
            for iteration in (4, 5, 6):
                trainer._elastic_iteration(iteration, trainer._sync_iteration)

            history = trainer.history
            assert history.events_of_kind("slot_loss")
            evicts = history.events_of_kind("membership_evict")
            assert [e["worker"] for e in evicts] == [1]
            assert history.events_of_kind("membership_rebalance")
            assert not trainer.cluster.workers[1].alive
            alive = [w for w in trainer.workers if trainer.cluster.workers[w.index].alive]
            assert sorted(w.index for w in alive) == [0, 2]
            # The evicted worker's whole shard moved to a survivor: the live
            # fleet still covers every training sample.
            assert sum(len(w.sampler) for w in alive) == 160
            assert len(trainer.workers[0].sampler) == len(shards[0]) + len(shards[1])
            assert len(trainer.workers[2].sampler) == len(shards[2])
            # FedAvg weights follow the live shard sizes (m_n / sum m):
            # full fleet at the round-3 boundary, survivors-only at round 6.
            assert captured_weights[0] == [float(len(s)) for s in shards]
            assert captured_weights[-1] == [
                float(len(trainer.workers[0].sampler)),
                float(len(trainer.workers[2].sampler)),
            ]
            # Run completed: every iteration kept its loss record, finite.
            assert len(history.iterations) == 6
            assert np.isfinite(history.generator_loss).all()
            assert history.membership["slot_loss"] >= 1
            assert history.membership["evict"] >= 1

            # (N-1)-worker baseline with the same post-rebalance shard
            # layout: the degraded run's final scores stay in its ballpark
            # (loose tolerance — the first 3 iterations ran with 3 workers).
            baseline = FLGANTrainer(
                factory,
                [trainer.workers[0].dataset, trainer.workers[2].dataset],
                _config(epochs_per_swap=0.4, backend="serial"),
            )
            baseline_history = baseline.train()
            assert abs(
                history.mean_generator_loss(last=2)
                - baseline_history.mean_generator_loss(last=2)
            ) < 2.0
        finally:
            flgan_mod.weighted_average_parameters = real_average
            trainer.close_backend()

    def test_late_joiner_revives_after_one_boundary(self, ring_setup3):
        # Acceptance (b): a worker_host started mid-run is admitted through
        # the versioned re-handshake, revives the evicted worker after
        # exactly one rebalance boundary, and contributes from the next
        # iteration on.
        shards, factory = ring_setup3
        config = _config(epochs_per_swap=0.4, on_slot_loss="degrade")
        trainer = FLGANTrainer(factory, shards, config)
        joiner = None
        try:
            backend, transport = _adopt_chaos_tcp(trainer, config)
            for iteration in (1, 2):
                trainer._elastic_iteration(iteration, trainer._sync_iteration)
            transport.kill_slot(1)
            trainer._elastic_iteration(3, trainer._sync_iteration)
            assert not trainer.cluster.workers[1].alive  # evicted
            assert backend.membership.evicted == {1}

            # The elastic pool kept its listener open; dial in a late joiner
            # and wait (bounded) for its connection to reach the backlog.
            inner = transport.inner
            joiner = multiprocessing.Process(
                target=run_worker,
                args=(inner.bound_address,),
                kwargs={"connect_timeout": 30.0},
                daemon=True,
            )
            joiner.start()
            ready, _, _ = select.select([inner._listener], [], [], 30.0)
            assert ready, "late joiner never reached the listener"

            # One boundary admits + revives + rebalances ...
            trainer._elastic_iteration(4, trainer._sync_iteration)
            history = trainer.history
            joins = [e for e in history.events_of_kind("membership_join")]
            assert joins and joins[0]["iteration"] == 4
            revives = history.events_of_kind("membership_revive")
            assert [e["worker"] for e in revives] == [1]
            assert trainer.cluster.workers[1].alive
            assert backend.membership.evicted == set()
            # ... and the shards are back to their founding layout.
            for worker, shard in zip(trainer.workers, shards):
                assert len(worker.sampler) == len(shard)
            # The revived worker contributes from the very next iteration.
            drawn_before = trainer.workers[1].sampler.samples_drawn
            trainer._elastic_iteration(5, trainer._sync_iteration)
            assert trainer.workers[1].sampler.samples_drawn > drawn_before
            assert history.membership["join"] >= 1
            assert history.membership["revive"] >= 1
        finally:
            trainer.close_backend()
            if joiner is not None and joiner.is_alive():
                joiner.terminate()
                joiner.join(timeout=10)


class TestDegradePolicyEdges:
    def test_min_workers_escalates_to_run_failure(self, ring_setup4):
        shards, factory = ring_setup4
        config = _config(transport="pipe", on_slot_loss="degrade", min_workers=4)
        trainer = MDGANTrainer(factory, shards, config)
        try:
            trainer._elastic_iteration(1, trainer.train_iteration)
            victim = trainer._backend._transport._processes[0]
            victim.kill()
            victim.join()
            # The boundary evicts slot 0's workers, leaving 2 of 4 alive —
            # below the configured floor: the run fails loudly, not quietly.
            with pytest.raises(TransportError, match="min_workers=4"):
                trainer._elastic_iteration(2, trainer.train_iteration)
        finally:
            trainer.close_backend()

    def test_wait_policy_reassigns_without_eviction(self, ring_setup4):
        # Trainer half of "wait": the lost workers never crash; the boundary
        # blocks for a replacement pipe slot, restores them from the last
        # merged mirror and the run continues with the full fleet.
        shards, factory = ring_setup4
        config = _config(
            transport="pipe",
            on_slot_loss="wait",
            rejoin_backoff=0.05,
            rejoin_timeout=10.0,
            iterations=3,
        )
        trainer = MDGANTrainer(factory, shards, config)
        try:
            trainer._elastic_iteration(1, trainer.train_iteration)
            victim = trainer._backend._transport._processes[0]
            victim.kill()
            victim.join()
            trainer._elastic_iteration(2, trainer.train_iteration)
            trainer._elastic_iteration(3, trainer.train_iteration)
            history = trainer.history
            assert all(node.alive for node in trainer.cluster.workers)
            assert not history.events_of_kind("membership_evict")
            reassigns = history.events_of_kind("membership_reassign")
            assert any(e.get("detail") == "wait-policy heal" for e in reassigns)
            assert history.membership["join"] >= 1
            assert history.membership["slot_loss"] == 1
            assert 3 in history.iterations  # the healed fleet kept training
        finally:
            trainer.close_backend()


class TestAsyncElastic:
    def test_async_degrade_keeps_staleness_bound(self, ring_setup3):
        # Satellite invariant: after a mid-run eviction the async loop's
        # bounded-staleness guarantee must hold exactly as before.
        shards, factory = ring_setup3
        config = _config(
            epochs_per_swap=0.4,
            aggregation="async",
            max_staleness=2,
            on_slot_loss="degrade",
        )
        trainer = FLGANTrainer(factory, shards, config)
        schedule = ChaosSchedule(
            (ChaosAction(slot=1, frame_index=7, kind="disconnect"),)
        )
        try:
            transport = ChaosTransport(
                LocalPipeTransport(serve_slot), schedule=schedule
            )
            backend = ResidentBackend(
                max_workers=2,
                transport=transport,
                membership_policy=config.membership_policy(),
            )
            trainer.adopt_backend(backend, owned=True)
            history = trainer.train()
            assert len(schedule) == 0  # the scripted disconnect fired
            assert history.membership["slot_loss"] >= 1
            assert history.membership["evict"] >= 1
            assert not trainer.cluster.workers[1].alive
            assert history.max_worker_staleness() <= config.max_staleness
            assert np.isfinite(history.generator_loss).all()
        finally:
            trainer.close_backend()

    def test_async_late_joiner_admitted_as_capacity(self, ring_setup3):
        # Async loops have no revival boundary; a late joiner is still
        # admitted (extra capacity, counted) and the staleness bound holds.
        shards, factory = ring_setup3
        config = _config(
            epochs_per_swap=0.4,
            aggregation="async",
            max_staleness=2,
            on_slot_loss="degrade",
        )
        trainer = FLGANTrainer(factory, shards, config)
        joiner = None
        try:
            backend, transport = _adopt_chaos_tcp(trainer, config)
            inner = transport.inner
            address = inner.listen(config.max_workers)
            # Dial a third worker host at the 2-slot pool *before* training:
            # it waits in the listener backlog past the founding accepts and
            # is admitted mid-run at an aggregation boundary.
            joiner = multiprocessing.Process(
                target=run_worker,
                args=(address,),
                kwargs={"connect_timeout": 60.0},
                daemon=True,
            )
            joiner.start()
            history = trainer.train()
            assert history.membership.get("join", 0) >= 1
            assert history.max_worker_staleness() <= config.max_staleness
            assert np.isfinite(history.generator_loss).all()
            assert all(node.alive for node in trainer.cluster.workers)
        finally:
            trainer.close_backend()
            if joiner is not None and joiner.is_alive():
                joiner.terminate()
                joiner.join(timeout=10)


# -- composed modes under chaos ----------------------------------------------------


class TestComposedElastic:
    """Elastic policies composed with the pipelined and async schedules.

    The execution engine drains whatever window is in flight before any
    membership remap touches the pool, so the elastic boundary pipeline
    (evict/wait, admit, revive, rebalance) always runs against a quiescent
    collector — these tests pin that composition under scripted faults.
    """

    pytestmark = pytest.mark.composition

    def test_mdgan_pipelined_degrade_redistributes_shards(self, ring_setup3):
        # MD-GAN at pipeline_depth 1 under "degrade": a scripted mid-run
        # disconnect drains the in-flight window, evicts the lost worker at
        # the boundary, redistributes its shard, and the run completes.
        shards, factory = ring_setup3
        config = _config(pipeline_depth=1, on_slot_loss="degrade")
        trainer = MDGANTrainer(factory, shards, config)
        schedule = ChaosSchedule(
            (ChaosAction(slot=1, frame_index=3, kind="disconnect"),)
        )
        try:
            transport = ChaosTransport(
                LocalPipeTransport(serve_slot), schedule=schedule
            )
            backend = ResidentBackend(
                max_workers=2,
                transport=transport,
                membership_policy=config.membership_policy(),
            )
            trainer.adopt_backend(backend, owned=True)
            history = trainer.train()
            assert len(schedule) == 0  # the scripted disconnect fired
            assert history.membership["slot_loss"] >= 1
            evicts = history.events_of_kind("membership_evict")
            assert [e["worker"] for e in evicts] == [1]
            assert not trainer.cluster.workers[1].alive
            # The evicted worker's shard moved to a survivor: the live
            # fleet still covers every training sample.
            alive = [
                w for w in trainer.workers if trainer.cluster.workers[w.index].alive
            ]
            assert sum(len(w.sampler) for w in alive) == 160
            assert history.events_of_kind("membership_rebalance")
            # The run completed its full schedule with finite losses and
            # the pipelined overlap summary intact.
            assert len(history.iterations) == config.iterations
            assert np.isfinite(history.generator_loss).all()
            assert history.overlap["pipeline_depth"] == 1.0
        finally:
            trainer.close_backend()

    def test_mdgan_async_wait_heals_without_eviction(self, ring_setup4):
        # "wait" under async: the engine's drain barrier empties the
        # collector (consuming every queued LOST), blocks for a replacement
        # slot, reassigns the lost workers there, and the loop resumes with
        # the full fleet — no evictions, bound intact.
        shards, factory = ring_setup4
        config = _config(
            aggregation="async",
            max_staleness=2,
            on_slot_loss="wait",
            rejoin_backoff=0.05,
            rejoin_timeout=10.0,
        )
        trainer = MDGANTrainer(factory, shards, config)
        schedule = ChaosSchedule(
            (ChaosAction(slot=1, frame_index=3, kind="disconnect"),)
        )
        try:
            transport = ChaosTransport(
                LocalPipeTransport(serve_slot), schedule=schedule
            )
            backend = ResidentBackend(
                max_workers=2,
                transport=transport,
                membership_policy=config.membership_policy(),
            )
            trainer.adopt_backend(backend, owned=True)
            history = trainer.train()
            assert len(schedule) == 0
            assert history.membership["slot_loss"] == 1
            assert history.membership["join"] >= 1
            assert all(node.alive for node in trainer.cluster.workers)
            assert not history.events_of_kind("membership_evict")
            reassigns = history.events_of_kind("membership_reassign")
            assert any(e.get("detail") == "wait-policy heal" for e in reassigns)
            assert len(history.iterations) == config.iterations
            assert history.max_worker_staleness() <= config.max_staleness
            assert np.isfinite(history.generator_loss).all()
        finally:
            trainer.close_backend()

    def test_flgan_async_wait_heals_without_eviction(self, ring_setup3):
        shards, factory = ring_setup3
        config = _config(
            epochs_per_swap=0.4,
            aggregation="async",
            max_staleness=2,
            on_slot_loss="wait",
            rejoin_backoff=0.05,
            rejoin_timeout=10.0,
        )
        trainer = FLGANTrainer(factory, shards, config)
        schedule = ChaosSchedule(
            (ChaosAction(slot=1, frame_index=3, kind="disconnect"),)
        )
        try:
            transport = ChaosTransport(
                LocalPipeTransport(serve_slot), schedule=schedule
            )
            backend = ResidentBackend(
                max_workers=2,
                transport=transport,
                membership_policy=config.membership_policy(),
            )
            trainer.adopt_backend(backend, owned=True)
            history = trainer.train()
            assert len(schedule) == 0
            assert history.membership["slot_loss"] == 1
            assert history.membership["join"] >= 1
            assert all(node.alive for node in trainer.cluster.workers)
            assert not history.events_of_kind("membership_evict")
            reassigns = history.events_of_kind("membership_reassign")
            assert any(e.get("detail") == "wait-policy heal" for e in reassigns)
            assert history.max_worker_staleness() <= config.max_staleness
            assert np.isfinite(history.generator_loss).all()
        finally:
            trainer.close_backend()

    def test_async_degrade_with_pipeline_depth(self, ring_setup3):
        # The full composition: async aggregation x lookahead window x
        # elastic degrade, in one run.  The bound and the discard
        # accounting must survive the eviction.
        shards, factory = ring_setup3
        config = _config(
            aggregation="async",
            max_staleness=2,
            pipeline_depth=1,
            on_slot_loss="degrade",
        )
        trainer = MDGANTrainer(factory, shards, config)
        # Worker 1's dispatch frames carry its install inline, so slot 1
        # sees only a handful of frames in this 3-worker run: frame 1 is
        # its second in-flight unit, squarely mid-training.
        schedule = ChaosSchedule(
            (ChaosAction(slot=1, frame_index=1, kind="disconnect"),)
        )
        try:
            transport = ChaosTransport(
                LocalPipeTransport(serve_slot), schedule=schedule
            )
            backend = ResidentBackend(
                max_workers=2,
                transport=transport,
                membership_policy=config.membership_policy(),
            )
            trainer.adopt_backend(backend, owned=True)
            history = trainer.train()
            assert len(schedule) == 0
            assert history.membership["slot_loss"] >= 1
            assert history.membership["evict"] >= 1
            assert not trainer.cluster.workers[1].alive
            assert len(history.iterations) == config.iterations
            assert history.max_worker_staleness() <= config.max_staleness
            assert np.isfinite(history.generator_loss).all()
        finally:
            trainer.close_backend()


# -- fail-stop stays bitwise identical ---------------------------------------------


class TestFailStopParity:
    def test_fail_stop_bitwise_identical_across_backends(self, ring_setup4):
        # Acceptance (c): the explicit fail-stop policy runs zero elastic
        # code and stays bitwise identical on all four backends.
        shards, factory = ring_setup4
        reference = None
        for backend in ("serial", "thread", "process", "resident"):
            trainer = MDGANTrainer(
                factory,
                shards,
                _config(backend=backend, iterations=3, on_slot_loss="fail_stop"),
            )
            history = trainer.train()
            trainer.close_backend()
            signature = (
                history.generator_loss,
                history.discriminator_loss,
                history.events,
                trainer.generator.get_parameters(),
            )
            if reference is None:
                reference = signature
                assert history.membership == {}  # no elastic code ran
                continue
            assert signature[0] == reference[0]
            assert signature[1] == reference[1]
            assert signature[2] == reference[2]
            assert np.array_equal(signature[3], reference[3])

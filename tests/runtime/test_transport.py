"""Transport-layer tests: framing, handshake, fault injection, worker hosts.

Bitwise parity of training *results* over tcp is pinned in ``test_parity.py``
(the ``resident-tcp`` pseudo-backend); these tests pin the transport machinery
itself — the TCP frame format and handshake, address parsing, and above all
the failure contract: any wire-level fault (killed slot, dropped frame,
truncated frame) must surface as a :class:`TransportError` naming the slot
index and the in-flight op, poison the pool fail-stop, and never hang.
"""

from __future__ import annotations

import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.runtime import ChaosTransport, ResidentBackend, TransportError
from repro.runtime.resident import ResidentProgram, register_program, serve_slot
from repro.runtime.transport import (
    LocalPipeTransport,
    TcpChannel,
    TcpTransport,
    parse_address,
)
from repro.runtime.transport.tcp import (
    _HEADER,
    _MAGIC,
    _MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    _server_handshake,
    client_handshake,
)


# -- shared fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def small_shards_and_factory():
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(**overrides) -> TrainingConfig:
    base = dict(iterations=4, batch_size=8, seed=11, backend="resident", max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


def _tcp_pair(read_timeout=None):
    """A connected pair of real loopback TcpChannels (client, server)."""
    listener = socket.create_server(("127.0.0.1", 0))
    client_sock = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
    server_sock, _ = listener.accept()
    listener.close()
    return (
        TcpChannel(client_sock, read_timeout=read_timeout),
        TcpChannel(server_sock, read_timeout=read_timeout),
    )


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# A trivial resident program the fault tests drive directly through the
# backend.  Registered at import time, before any pool forks, so the forked
# slot processes (pipe children and loopback tcp workers alike) inherit it.
def _echo_step(state, payload):
    state["count"] = state.get("count", 0) + 1
    return (state["count"], payload)


register_program(
    ResidentProgram(
        name="transport-echo",
        step=_echo_step,
        pull_params=lambda state: dict(state),
        push_params=lambda state, params: state.update(params),
    )
)


def _fresh_state():
    return {"count": 0}


# -- address parsing ---------------------------------------------------------------


class TestParseAddress:
    def test_valid_address(self):
        assert parse_address("example.com:5555") == ("example.com", 5555)
        assert parse_address("127.0.0.1:0") == ("127.0.0.1", 0)

    def test_missing_port_is_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("example.com")

    def test_non_integer_port_is_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            parse_address("example.com:abc")

    def test_out_of_range_port_is_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_address("example.com:70000")


# -- frame format ------------------------------------------------------------------


class TestTcpFraming:
    def test_roundtrip_preserves_frame_boundaries(self):
        a, b = _tcp_pair()
        try:
            payloads = [b"", b"x", os.urandom(1 << 18)]
            for payload in payloads:
                a.send_bytes(payload)
            for payload in payloads:
                assert b.poll(5.0)
                assert b.recv_bytes() == payload
            assert not b.poll(0.0)
        finally:
            a.close()
            b.close()

    def test_clean_peer_close_raises_eof(self):
        a, b = _tcp_pair()
        try:
            a.close()
            with pytest.raises(EOFError):
                b.recv_bytes()
        finally:
            b.close()

    def test_truncated_frame_raises_oserror(self):
        # A frame that announces 100 body bytes but delivers 10 before the
        # peer goes away is corruption, not a clean close: OSError, not
        # EOFError, and never a hang.
        a, b = _tcp_pair()
        try:
            a._sock.sendall(_HEADER.pack(100) + b"only-ten-b")
            a.close()
            with pytest.raises(OSError, match="mid-frame"):
                b.recv_bytes()
        finally:
            b.close()

    def test_corrupt_header_is_rejected(self):
        a, b = _tcp_pair()
        try:
            a._sock.sendall(_HEADER.pack(_MAX_FRAME_BYTES + 1))
            with pytest.raises(OSError, match="corrupt frame header"):
                b.recv_bytes()
        finally:
            a.close()
            b.close()

    def test_mid_frame_stall_times_out(self):
        # read_timeout bounds a *started* frame: a sender that stalls mid-body
        # (without closing) surfaces as a timeout error on the reader.
        a, b = _tcp_pair(read_timeout=0.2)
        try:
            a._sock.sendall(_HEADER.pack(100) + b"partial")
            with pytest.raises(OSError):
                b.recv_bytes()
        finally:
            a.close()
            b.close()


# -- handshake ---------------------------------------------------------------------


class TestHandshake:
    def test_assigns_slot_and_session(self):
        client, server = _tcp_pair()
        try:
            assignment = {}
            worker = threading.Thread(
                target=lambda: assignment.update(client_handshake(client))
            )
            worker.start()
            _server_handshake(server, slot_index=3, num_slots=4, session="abc123")
            worker.join(timeout=10)
            assert not worker.is_alive()
            assert assignment["slot_index"] == 3
            assert assignment["num_slots"] == 4
            assert assignment["session"] == "abc123"
            assert assignment["protocol"] == PROTOCOL_VERSION
        finally:
            client.close()
            server.close()

    def test_server_refuses_bad_magic(self):
        client, server = _tcp_pair()
        try:
            client.send_bytes(_dumps({"magic": "not-repro", "protocol": 1}))
            with pytest.raises(TransportError, match="handshake failed") as excinfo:
                _server_handshake(server, slot_index=0, num_slots=1, session="s")
            assert excinfo.value.slot_index == 0
            # The worker is told why before the connection is abandoned.
            refusal = pickle.loads(client.recv_bytes())
            assert "not-repro" in refusal["error"]
        finally:
            client.close()
            server.close()

    def test_server_refuses_protocol_mismatch(self):
        client, server = _tcp_pair()
        try:
            client.send_bytes(_dumps({"magic": _MAGIC, "protocol": 999}))
            with pytest.raises(TransportError, match="999"):
                _server_handshake(server, slot_index=1, num_slots=2, session="s")
        finally:
            client.close()
            server.close()

    def test_client_surfaces_refusal(self):
        client, server = _tcp_pair()
        try:
            server.send_bytes(_dumps({"error": "pool is full"}))
            with pytest.raises(TransportError, match="pool is full"):
                client_handshake(client)
        finally:
            client.close()
            server.close()

    def test_client_rejects_version_mismatch(self):
        client, server = _tcp_pair()
        try:
            server.send_bytes(_dumps({"magic": _MAGIC, "protocol": 999}))
            with pytest.raises(TransportError, match="mismatch"):
                client_handshake(client)
        finally:
            client.close()
            server.close()


class TestTcpLifecycle:
    def test_external_mode_times_out_without_workers(self):
        # External mode binds and waits for worker hosts; none connecting
        # must be a clean TransportError naming the progress, not a hang.
        transport = TcpTransport(
            address="127.0.0.1:0", spawn_workers=False, connect_timeout=0.2
        )
        try:
            with pytest.raises(TransportError, match="0 of 1"):
                transport.open(1)
        finally:
            transport.close()


# -- slot death (unified TransportError regression) --------------------------------


class TestSlotDeath:
    @pytest.mark.parametrize("transport", ("pipe", "tcp"))
    def test_killed_slot_names_slot_and_op(self, transport, small_shards_and_factory):
        # Regression for the unified error type: a slot process killed between
        # iterations must surface as TransportError carrying the slot index
        # and the in-flight op, poison the pool, and refuse later calls.
        shards, factory = small_shards_and_factory
        trainer = MDGANTrainer(factory, shards, _config(transport=transport))
        try:
            trainer.train_iteration(1)
            backend = trainer._backend
            victim = backend._transport._processes[0]
            victim.kill()
            victim.join()
            with pytest.raises(TransportError) as excinfo:
                trainer.train_iteration(2)
            # Slot indices follow accept order over tcp, so the victim may
            # serve either slot — but the error must name one, and the op.
            assert excinfo.value.slot_index in (0, 1)
            assert excinfo.value.op == "run"
            assert backend._transport is None  # fail-stop: pool torn down
            with pytest.raises(RuntimeError, match="previously failed"):
                trainer.train_iteration(3)
        finally:
            trainer.close_backend()


# -- fault injection: dropped / truncated frames (on the chaos harness) ------------


class TestFaultInjection:
    def test_dropped_pipe_frame_surfaces_as_timeout_not_hang(self):
        # A request frame lost on the wire means the slot never replies; the
        # transport's read_timeout must turn that into a clean TransportError
        # (pool poisoned, later calls refused) instead of an infinite wait.
        transport = ChaosTransport(LocalPipeTransport(serve_slot, read_timeout=1.0))
        backend = ResidentBackend(max_workers=1, transport=transport)
        try:
            out = backend.run_steps("transport-echo", [(0, _fresh_state, "a")])
            assert out == [(1, "a")]
            transport.channel(0).force_next("drop")
            started = time.monotonic()
            with pytest.raises(TransportError, match="timed out") as excinfo:
                backend.run_steps("transport-echo", [(0, _fresh_state, "b")])
            assert time.monotonic() - started < 10.0
            assert excinfo.value.slot_index == 0
            assert excinfo.value.op == "run"
            assert backend._transport is None
            with pytest.raises(RuntimeError, match="previously failed"):
                backend.run_steps("transport-echo", [(0, _fresh_state, "c")])
        finally:
            backend.close()

    def test_truncated_tcp_frame_poisons_fail_stop(self):
        # Half a frame followed by shutdown kills the worker mid-read; the
        # trainer side must observe the slot's death as a TransportError and
        # fail stop — no timeout needed, the broken stream is detectable.
        transport = ChaosTransport(TcpTransport(connect_timeout=30.0))
        backend = ResidentBackend(max_workers=1, transport=transport)
        try:
            out = backend.run_steps("transport-echo", [(0, _fresh_state, "a")])
            assert out == [(1, "a")]
            transport.channel(0).force_next("truncate")
            with pytest.raises(TransportError) as excinfo:
                backend.run_steps("transport-echo", [(0, _fresh_state, "b")])
            assert excinfo.value.slot_index == 0
            assert excinfo.value.op == "run"
            assert backend._transport is None
            with pytest.raises(RuntimeError, match="previously failed"):
                backend.run_steps("transport-echo", [(0, _fresh_state, "c")])
        finally:
            backend.close()


# -- standalone worker host (python -m repro.runtime.worker_host) ------------------


def _worker_host_env() -> dict:
    """Environment for worker-host subprocesses: the repo's src on PYTHONPATH."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH")) if p)
    return env


class TestWorkerHost:
    def test_subprocess_workers_serve_the_protocol(self):
        # End-to-end over the real entrypoint: a fresh interpreter running
        # `python -m repro.runtime.worker_host --connect HOST:PORT --slots 2`
        # connects, handshakes, serves protocol ops (including the err path)
        # and exits cleanly when the server closes the pool.
        transport = TcpTransport(
            address="127.0.0.1:0", spawn_workers=False, connect_timeout=30.0
        )
        host, port = transport.listen(2)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--connect",
                f"{host}:{port}",
                "--slots",
                "2",
            ],
            env=_worker_host_env(),
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            transport.open(2)
            for slot in range(2):
                transport.channel(slot).send_bytes(_dumps(("pull_params", [])))
            for slot in range(2):
                status, payload = pickle.loads(transport.channel(slot).recv_bytes())
                assert (status, payload) == ("ok", {})
            # The err path crosses the socket too: a failing op comes back as
            # ("err", traceback) with the worker-side cause attached.
            bad_run = ("run", [(0, "no-such-program", 0, {"state": 1}, None)])
            transport.channel(0).send_bytes(_dumps(bad_run))
            status, payload = pickle.loads(transport.channel(0).recv_bytes())
            assert status == "err"
            assert "Unknown resident program" in payload
            for slot in range(2):
                transport.channel(slot).send_bytes(_dumps(("close", None)))
            transport.close()
            assert proc.wait(timeout=30) == 0
            stderr = proc.stderr.read()
            assert "serving slot" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            transport.close()

    def test_loop_mode_serves_successive_pools(self):
        # Multi-run servers (fig4/fig5/traffic-check) build one pool per
        # training run on the same address; `--loop` keeps the host serving
        # until no server reappears within the connect timeout, then exits 0.
        # Also covers connect-retry: the host starts before any listener.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            host, port = probe.getsockname()
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--connect",
                f"{host}:{port}",
                "--loop",
                "--connect-timeout",
                "5",
            ],
            env=_worker_host_env(),
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            for _pool in range(2):
                transport = TcpTransport(
                    address=f"{host}:{port}",
                    spawn_workers=False,
                    connect_timeout=30.0,
                )
                assert transport.listen(1) == (host, port)
                transport.open(1)
                transport.channel(0).send_bytes(_dumps(("pull_params", [])))
                status, payload = pickle.loads(transport.channel(0).recv_bytes())
                assert (status, payload) == ("ok", {})
                transport.channel(0).send_bytes(_dumps(("close", None)))
                transport.close()
            assert proc.wait(timeout=30) == 0
            stderr = proc.stderr.read()
            assert "serving 2 pool(s)" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_connect_timeout_expiry_exits_nonzero(self):
        # No server ever listens: the host must give up when --connect-timeout
        # expires with a diagnostic and exit code 1, not retry forever.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            host, port = probe.getsockname()
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--connect",
                f"{host}:{port}",
                "--connect-timeout",
                "1",
            ],
            env=_worker_host_env(),
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.wait(timeout=30) == 1
            stderr = proc.stderr.read()
            assert "worker-host:" in stderr
            assert "no server listening" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_refused_handshake_retries_until_accepted(self):
        # An elastic server may refuse a joiner with retry=True (e.g. the pool
        # has not reached a join boundary); the host must back off, re-dial
        # the same address, and serve normally once a handshake is accepted.
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(30.0)
        host, port = listener.getsockname()
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--connect",
                f"{host}:{port}",
                "--rejoin-backoff",
                "0.1",
            ],
            env=_worker_host_env(),
            stderr=subprocess.PIPE,
            text=True,
        )
        first = second = None
        try:
            conn, _ = listener.accept()
            first = TcpChannel(conn, read_timeout=30.0)
            first.recv_bytes()  # the worker's hello
            first.send_bytes(_dumps({"error": "not at a join boundary", "retry": True}))
            first.close()
            conn, _ = listener.accept()  # the re-dial after the backoff
            second = TcpChannel(conn, read_timeout=30.0)
            _server_handshake(second, slot_index=0, num_slots=1, session="s")
            second.send_bytes(_dumps(("close", None)))
            assert proc.wait(timeout=30) == 0
            stderr = proc.stderr.read()
            assert "retrying" in stderr
            assert "serving slot 0 of 1" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            for channel in (first, second):
                if channel is not None:
                    channel.close()
            listener.close()

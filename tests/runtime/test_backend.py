"""Unit tests for the execution-backend abstraction (repro.runtime.backend)."""

from __future__ import annotations

import time

import pytest

from repro.runtime import (
    BACKENDS,
    ProcessBackend,
    ResidentBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
    default_max_workers,
)


def _square(x):
    """Module-level so the process backend can pickle it by reference."""
    return x * x


def _slow_then_fast(item):
    """Sleep longer for earlier items so completion order inverts task order."""
    index, delay = item
    time.sleep(delay)
    return index


class TestCreateBackend:
    def test_known_names(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("thread"), ThreadBackend)
        assert isinstance(create_backend("process"), ProcessBackend)
        assert isinstance(create_backend("resident"), ResidentBackend)

    def test_backend_names_match_registry(self):
        for name in BACKENDS:
            assert create_backend(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="Unknown backend"):
            create_backend("gpu")

    def test_invalid_max_workers_raises(self):
        with pytest.raises(ValueError, match="max_workers"):
            create_backend("thread", max_workers=0)

    def test_serial_ignores_max_workers(self):
        assert isinstance(create_backend("serial", max_workers=7), SerialBackend)

    def test_default_max_workers_positive(self):
        assert default_max_workers() >= 1


class TestMapOrdered:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_maps_in_task_order(self, name):
        with create_backend(name, max_workers=2) as backend:
            assert backend.map_ordered(_square, list(range(8))) == [
                x * x for x in range(8)
            ]

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_and_singleton(self, name):
        with create_backend(name, max_workers=2) as backend:
            assert backend.map_ordered(_square, []) == []
            assert backend.map_ordered(_square, [3]) == [9]

    def test_thread_results_ordered_despite_completion_order(self):
        # Earlier tasks sleep longer, so they *finish* last; map_ordered must
        # still return results in task order (the merge-phase invariant).
        items = [(i, 0.03 * (4 - i)) for i in range(4)]
        with ThreadBackend(max_workers=4) as backend:
            assert backend.map_ordered(_slow_then_fast, items) == [0, 1, 2, 3]


class TestLifecycle:
    def test_pool_is_lazy(self):
        backend = ThreadBackend(max_workers=2)
        assert backend._pool is None
        backend.map_ordered(_square, [1, 2])
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None

    def test_reusable_after_close(self):
        backend = ThreadBackend(max_workers=2)
        assert backend.map_ordered(_square, [1, 2]) == [1, 4]
        backend.close()
        assert backend.map_ordered(_square, [2, 3]) == [4, 9]
        backend.close()

    def test_close_without_use_is_noop(self):
        ThreadBackend(max_workers=2).close()
        SerialBackend().close()

    def test_single_task_skips_pool_dispatch(self):
        backend = ThreadBackend(max_workers=2)
        assert backend.map_ordered(_square, [5]) == [25]
        # The shortcut ran inline, so no pool was ever created.
        assert backend._pool is None

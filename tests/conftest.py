"""Shared fixtures for the test suite.

Heavier artefacts (datasets, trained score classifier) are session-scoped so
the suite stays fast while still exercising realistic objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimizerConfig, TrainingConfig
from repro.datasets import make_gaussian_ring, make_mnist_like, partition_iid
from repro.metrics import GeneratorEvaluator
from repro.models import build_toy_gan


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator for each test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def ring_dataset():
    """Small ring dataset pair (train, test) used by fast end-to-end tests."""
    return make_gaussian_ring(n_train=800, n_test=200, image_size=8, seed=7)


@pytest.fixture(scope="session")
def mnist_small():
    """Small MNIST-like dataset pair at 16x16 resolution."""
    return make_mnist_like(n_train=400, n_test=120, image_size=16, seed=7)


@pytest.fixture(scope="session")
def toy_factory(ring_dataset):
    """Toy GAN factory matched to the ring dataset."""
    train, _ = ring_dataset
    return build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=12,
        hidden=48,
    )


@pytest.fixture(scope="session")
def ring_shards(ring_dataset):
    """The ring training set split i.i.d. over 4 workers."""
    train, _ = ring_dataset
    return partition_iid(train, 4, np.random.default_rng(3))


@pytest.fixture(scope="session")
def ring_evaluator(ring_dataset):
    """Evaluator with a frozen score classifier trained on the ring dataset."""
    train, test = ring_dataset
    return GeneratorEvaluator.from_datasets(
        train, test, sample_size=120, classifier_epochs=5, seed=5
    )


@pytest.fixture()
def tiny_config() -> TrainingConfig:
    """Very small training configuration for end-to-end smoke tests."""
    return TrainingConfig(
        iterations=12,
        batch_size=8,
        disc_steps=1,
        epochs_per_swap=1.0,
        eval_every=0,
        seed=11,
        generator_opt=OptimizerConfig(learning_rate=1e-3),
        discriminator_opt=OptimizerConfig(learning_rate=1e-3),
    )

"""Tests for the score classifier and the generator evaluator."""

import numpy as np
import pytest

from repro.metrics import train_score_classifier


class TestScoreClassifier:
    def test_learns_ring_dataset(self, ring_dataset):
        train, test = ring_dataset
        clf = train_score_classifier(train, epochs=5, seed=0)
        assert clf.accuracy(test) > 0.8

    def test_features_and_probabilities_shapes(self, ring_dataset):
        train, test = ring_dataset
        clf = train_score_classifier(train, epochs=1, seed=0)
        images = test.images[:16]
        features = clf.features(images)
        probs = clf.probabilities(images)
        assert features.shape == (16, clf.feature_dim)
        assert probs.shape == (16, train.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_mlp_fallback_for_tiny_images(self, ring_dataset):
        train, _ = ring_dataset
        clf = train_score_classifier(train, epochs=1, convolutional=False, seed=0)
        assert clf.feature_dim > 0


class TestGeneratorEvaluator:
    def test_real_data_beats_noise(self, ring_dataset, ring_evaluator):
        _, test = ring_dataset
        real_result = ring_evaluator.evaluate_dataset(test)

        def noise_sampler(n, rng):
            return rng.uniform(-1, 1, size=(n,) + test.spec.shape)

        noise_result = ring_evaluator.evaluate(noise_sampler, iteration=1)
        assert real_result.score > noise_result.score
        assert real_result.fid < noise_result.fid

    def test_result_dict_round_trip(self, ring_dataset, ring_evaluator):
        _, test = ring_dataset
        result = ring_evaluator.evaluate_dataset(test, iteration=7)
        as_dict = result.as_dict()
        assert as_dict["iteration"] == 7
        assert set(as_dict) == {"iteration", "score", "score_std", "fid", "modes_covered"}

    def test_sampler_size_enforced(self, ring_dataset, ring_evaluator):
        _, test = ring_dataset

        def bad_sampler(n, rng):
            return rng.uniform(-1, 1, size=(n - 1,) + test.spec.shape)

        with pytest.raises(ValueError, match="Sampler returned"):
            ring_evaluator.evaluate(bad_sampler)

    def test_deterministic_for_same_iteration(self, ring_dataset, ring_evaluator):
        _, test = ring_dataset

        def sampler(n, rng):
            return rng.uniform(-1, 1, size=(n,) + test.spec.shape)

        a = ring_evaluator.evaluate(sampler, iteration=3)
        b = ring_evaluator.evaluate(sampler, iteration=3)
        assert a.score == b.score and a.fid == b.fid

    def test_real_features_cached(self, ring_dataset, ring_evaluator):
        _, test = ring_dataset
        ring_evaluator.evaluate_dataset(test)
        cached = ring_evaluator._real_features_cache
        ring_evaluator.evaluate_dataset(test)
        assert ring_evaluator._real_features_cache is cached

"""Unit tests for the Inception-style score and Fréchet distance."""

import numpy as np
import pytest

from repro.metrics import (
    frechet_distance,
    frechet_distance_from_features,
    gaussian_statistics,
    inception_score,
    mode_coverage,
)


class TestInceptionScore:
    def test_uniform_predictions_score_one(self):
        probs = np.full((100, 10), 0.1)
        score, std = inception_score(probs)
        assert score == pytest.approx(1.0)
        assert std == 0.0

    def test_confident_diverse_predictions_score_num_classes(self):
        # Perfectly confident and perfectly diverse: the score reaches K.
        probs = np.eye(10)[np.arange(100) % 10]
        score, _ = inception_score(probs)
        assert score == pytest.approx(10.0)

    def test_mode_collapse_scores_one(self):
        # Confident but all on the same class: KL(p(y|x) || p(y)) = 0.
        probs = np.zeros((50, 10))
        probs[:, 3] = 1.0
        score, _ = inception_score(probs)
        assert score == pytest.approx(1.0)

    def test_score_between_one_and_num_classes(self, rng):
        raw = rng.random((200, 10))
        probs = raw / raw.sum(axis=1, keepdims=True)
        score, _ = inception_score(probs)
        assert 1.0 <= score <= 10.0

    def test_splits(self):
        # 48 samples over 4 classes: each of the 4 splits holds 12 samples with
        # perfectly balanced classes, so every split scores exactly 4.
        probs = np.eye(4)[np.arange(48) % 4]
        score, std = inception_score(probs, splits=4)
        assert score == pytest.approx(4.0)
        assert std == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            inception_score(np.full((10, 3), 0.5))  # rows don't sum to 1
        with pytest.raises(ValueError):
            inception_score(np.full(10, 0.1))  # not 2-D


class TestFrechetDistance:
    def test_identical_gaussians_give_zero(self, rng):
        mu = rng.normal(size=5)
        a = rng.normal(size=(10, 5))
        sigma = a.T @ a / 10 + np.eye(5)
        assert frechet_distance(mu, sigma, mu, sigma) == pytest.approx(0.0, abs=1e-6)

    def test_mean_shift_dominates_for_equal_covariances(self):
        sigma = np.eye(3)
        mu1 = np.zeros(3)
        mu2 = np.array([2.0, 0.0, 0.0])
        # abs tolerance accounts for the 1e-6 diagonal stabilisation offset.
        assert frechet_distance(mu1, sigma, mu2, sigma) == pytest.approx(4.0, abs=1e-4)

    def test_known_1d_value(self):
        # For 1-D Gaussians: (mu1-mu2)^2 + (s1 - s2)^2 with s the std devs.
        d = frechet_distance(
            np.array([0.0]), np.array([[4.0]]), np.array([1.0]), np.array([[1.0]])
        )
        assert d == pytest.approx(1.0 + (2.0 - 1.0) ** 2, abs=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            frechet_distance(np.zeros(2), np.eye(2), np.zeros(3), np.eye(3))

    def test_from_features_separates_distributions(self, rng):
        real = rng.normal(size=(300, 8))
        close = rng.normal(size=(300, 8)) * 1.05
        far = rng.normal(loc=5.0, size=(300, 8))
        assert frechet_distance_from_features(real, close) < frechet_distance_from_features(
            real, far
        )

    def test_gaussian_statistics_validation(self, rng):
        with pytest.raises(ValueError):
            gaussian_statistics(rng.normal(size=(1, 4)))
        with pytest.raises(ValueError):
            gaussian_statistics(rng.normal(size=8))


class TestModeCoverage:
    def test_full_coverage(self):
        probs = np.eye(5)[np.arange(25) % 5]
        covered, histogram = mode_coverage(probs)
        assert covered == 5
        np.testing.assert_array_equal(histogram, [5, 5, 5, 5, 5])

    def test_collapse_detected(self):
        probs = np.zeros((20, 5))
        probs[:, 2] = 1.0
        covered, histogram = mode_coverage(probs)
        assert covered == 1
        assert histogram[2] == 20

    def test_unconfident_predictions_do_not_count(self):
        probs = np.full((10, 4), 0.25)
        covered, _ = mode_coverage(probs, threshold=0.5)
        assert covered == 0

"""Unit tests for the GAN architecture zoo."""

import numpy as np
import pytest

from repro.models import (
    ARCHITECTURES,
    GANFactory,
    build_architecture,
    build_celeba_cnn_gan,
    build_cifar10_cnn_gan,
    build_mnist_cnn_gan,
    build_mnist_mlp_gan,
    build_toy_gan,
    conv_channel_schedule,
    generator_input,
    one_hot,
)


class TestHelpers:
    def test_one_hot_values(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_validation(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([[0, 1]]), 3)

    def test_generator_input_concatenates(self, rng):
        noise = rng.normal(size=(4, 6))
        labels = np.array([0, 1, 2, 0])
        combined = generator_input(noise, labels, 3)
        assert combined.shape == (4, 9)
        np.testing.assert_array_equal(combined[:, :6], noise)

    def test_generator_input_unconditional(self, rng):
        noise = rng.normal(size=(4, 6))
        assert generator_input(noise, None, 3) is noise

    def test_conv_channel_schedule(self):
        assert conv_channel_schedule(1.0) == [16, 32, 64, 128, 256, 512]
        assert conv_channel_schedule(0.25) == [4, 8, 16, 32, 64, 128]
        assert conv_channel_schedule(0.001) == [1, 1, 1, 1, 1, 1]


class TestFactoryContract:
    @pytest.mark.parametrize(
        "name, kwargs",
        [
            ("mnist-mlp", dict(image_shape=(1, 16, 16))),
            ("mnist-cnn", dict(image_shape=(1, 16, 16), width_factor=0.125)),
            ("cifar10-cnn", dict(image_shape=(3, 16, 16), width_factor=0.125)),
            ("celeba-cnn", dict(image_shape=(3, 16, 16), width_factor=0.125)),
            ("toy-ring", dict()),
        ],
    )
    def test_generator_discriminator_shapes(self, name, kwargs, rng):
        factory = build_architecture(name, **kwargs)
        generator = factory.make_generator(rng)
        discriminator = factory.make_discriminator(rng)
        z = rng.normal(size=(3, factory.generator_input_dim))
        images = generator.forward(z)
        assert images.shape == (3,) + factory.image_shape
        assert np.all(images >= -1.0) and np.all(images <= 1.0)  # tanh output
        outputs = discriminator.forward(images)
        assert outputs.shape == (3, factory.discriminator_output_dim)

    def test_registry_contains_all(self):
        assert set(ARCHITECTURES) == {
            "mnist-mlp",
            "mnist-cnn",
            "cifar10-cnn",
            "celeba-cnn",
            "toy-ring",
        }
        with pytest.raises(ValueError):
            build_architecture("resnet-gan")

    def test_conditional_flag_changes_dimensions(self):
        cond = build_mnist_mlp_gan(image_shape=(1, 16, 16), conditional=True)
        uncond = build_mnist_mlp_gan(image_shape=(1, 16, 16), conditional=False)
        assert cond.generator_input_dim == cond.latent_dim + 10
        assert uncond.generator_input_dim == uncond.latent_dim
        assert cond.discriminator_output_dim == 11
        assert uncond.discriminator_output_dim == 1

    def test_object_size(self):
        factory = build_cifar10_cnn_gan(image_shape=(3, 32, 32), width_factor=0.25)
        assert factory.object_size == 3072

    def test_fresh_models_have_independent_parameters(self, rng):
        factory = build_toy_gan()
        d1 = factory.make_discriminator(np.random.default_rng(1))
        d2 = factory.make_discriminator(np.random.default_rng(2))
        assert not np.array_equal(d1.get_parameters(), d2.get_parameters())
        assert d1.num_parameters == d2.num_parameters


class TestPaperParameterCounts:
    def test_mlp_generator_matches_paper_exactly(self):
        # The paper reports 716,560 generator parameters for the MNIST MLP
        # (three dense layers of 512, 512 and 784 neurons with latent 100).
        factory = build_mnist_mlp_gan(conditional=False)
        counts = factory.parameter_counts()
        assert counts["generator"] == 716_560

    def test_mlp_discriminator_close_to_paper(self):
        # ACGAN head (11 outputs): the paper reports 670,219; our count
        # differs only by the first-layer bias convention (within 0.1%).
        factory = build_mnist_mlp_gan(conditional=True)
        counts = factory.parameter_counts()
        assert abs(counts["discriminator"] - 670_219) / 670_219 < 0.001

    def test_width_factor_shrinks_models(self):
        wide = build_mnist_cnn_gan(image_shape=(1, 16, 16), width_factor=0.5)
        narrow = build_mnist_cnn_gan(image_shape=(1, 16, 16), width_factor=0.125)
        assert (
            narrow.parameter_counts()["discriminator"]
            < wide.parameter_counts()["discriminator"]
        )


class TestGeometryValidation:
    def test_cnn_requires_divisible_sizes(self):
        with pytest.raises(ValueError, match="divisible by 4"):
            build_mnist_cnn_gan(image_shape=(1, 18, 18))
        with pytest.raises(ValueError, match="divisible by 8"):
            build_cifar10_cnn_gan(image_shape=(3, 20, 20))
        with pytest.raises(ValueError, match="divisible by 4"):
            build_celeba_cnn_gan(image_shape=(3, 18, 18))

    def test_builder_shape_mismatch_detected(self, rng):
        # A factory whose builder produces the wrong output shape must fail fast.
        from repro.nn import Dense, Reshape, Tanh

        bad = GANFactory(
            name="bad",
            latent_dim=4,
            image_shape=(1, 4, 4),
            num_classes=2,
            conditional=False,
            generator_builder=lambda f: [Dense(8), Tanh(), Reshape((1, 2, 4))],
            discriminator_builder=lambda f: [Dense(1)],
        )
        with pytest.raises(ValueError):
            bad.make_generator(rng)

"""Tests for the Table II computation/memory complexity model."""

import pytest

from repro.analysis import ComplexityInputs, table2_complexities, worker_reduction_factor


@pytest.fixture()
def paper_mlp_inputs():
    """MNIST MLP instantiation used throughout the paper's tables."""
    return ComplexityInputs(
        generator_params=716_560,
        discriminator_params=670_219,
        object_size=784,
        batch_size=10,
        num_workers=10,
        num_batches=2,
        iterations=50_000,
        local_dataset_size=6_000,
        epochs_per_round=1.0,
    )


class TestValidation:
    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            ComplexityInputs(0, 1, 1, 1, 1, 1, 1, 1)

    def test_rejects_k_greater_than_n(self):
        with pytest.raises(ValueError, match="k <= N"):
            ComplexityInputs(10, 10, 10, 1, 2, 5, 1, 1)


class TestFormulas:
    def test_worker_formulas_match_paper_expressions(self, paper_mlp_inputs):
        table = table2_complexities(paper_mlp_inputs)
        i, b = 50_000, 10
        w, theta = 716_560, 670_219
        assert table["computation_worker"]["fl-gan"] == pytest.approx(i * b * (w + theta))
        assert table["computation_worker"]["md-gan"] == pytest.approx(i * b * theta)
        assert table["memory_worker"]["fl-gan"] == pytest.approx(w + theta)
        assert table["memory_worker"]["md-gan"] == pytest.approx(theta)

    def test_server_formulas_match_paper_expressions(self, paper_mlp_inputs):
        table = table2_complexities(paper_mlp_inputs)
        i, b, n, k, d = 50_000, 10, 10, 2, 784
        w, theta = 716_560, 670_219
        m, e = 6_000, 1.0
        assert table["computation_server"]["fl-gan"] == pytest.approx(
            i * b * n * (w + theta) / (m * e)
        )
        assert table["computation_server"]["md-gan"] == pytest.approx(
            i * b * (d * n + k * w)
        )
        assert table["memory_server"]["fl-gan"] == pytest.approx(n * (w + theta))
        assert table["memory_server"]["md-gan"] == pytest.approx(b * (d * n + k * w))

    def test_worker_reduction_close_to_two_for_mlp(self, paper_mlp_inputs):
        reduction = worker_reduction_factor(paper_mlp_inputs)
        # |w| ~ |theta| for the MLP, so the factor is close to 2 (paper's claim).
        assert 1.9 < reduction["computation"] < 2.2
        assert reduction["computation"] == pytest.approx(reduction["memory"])

    def test_mdgan_always_cheaper_on_workers(self, paper_mlp_inputs):
        table = table2_complexities(paper_mlp_inputs)
        assert table["computation_worker"]["md-gan"] < table["computation_worker"]["fl-gan"]
        assert table["memory_worker"]["md-gan"] < table["memory_worker"]["fl-gan"]

    def test_mdgan_more_expensive_on_server(self, paper_mlp_inputs):
        # The price of removing generators from the workers is a busier server.
        table = table2_complexities(paper_mlp_inputs)
        assert table["computation_server"]["md-gan"] > table["computation_server"]["fl-gan"]

"""Tests for the Table III/IV and Figure 2 communication model."""

import pytest

from repro.analysis import (
    MEGABYTE,
    CommunicationInputs,
    crossover_batch_size,
    ingress_traffic_per_iteration,
    ingress_traffic_sweep,
    table3_communication,
    table4_costs,
)


@pytest.fixture()
def cifar_inputs():
    """The paper's Table IV setting: CIFAR10 CNN, N=10, I=50,000."""
    return CommunicationInputs(
        generator_params=628_110,
        discriminator_params=100_203,
        object_size=3_072,
        batch_size=10,
        num_workers=10,
        iterations=50_000,
        local_dataset_size=5_000,
        epochs_per_round=1.0,
    )


class TestTable3:
    def test_flgan_rows_depend_only_on_model_size(self, cifar_inputs):
        table = table3_communication(cifar_inputs)
        model = 628_110 + 100_203
        assert table["server_to_worker_at_worker"]["fl-gan"] == model
        assert table["worker_to_server_at_server"]["fl-gan"] == 10 * model
        assert table["worker_to_worker_at_worker"]["fl-gan"] == 0

    def test_mdgan_rows_depend_on_batch_and_object_size(self, cifar_inputs):
        table = table3_communication(cifar_inputs)
        assert table["worker_to_server_at_worker"]["md-gan"] == 10 * 3072
        assert table["server_to_worker_at_worker"]["md-gan"] == 2 * 10 * 3072
        assert table["worker_to_worker_at_worker"]["md-gan"] == 100_203

    def test_round_counts(self, cifar_inputs):
        table = table3_communication(cifar_inputs)
        assert table["num_server_worker_rounds"]["md-gan"] == 50_000
        assert table["num_server_worker_rounds"]["fl-gan"] == pytest.approx(
            50_000 * 10 / 5_000
        )
        assert table["num_worker_worker_rounds"]["md-gan"] == pytest.approx(
            50_000 * 10 / 5_000
        )

    def test_single_batch_accounting_option(self, cifar_inputs):
        both = table3_communication(cifar_inputs, count_both_generated_batches=True)
        single = table3_communication(cifar_inputs, count_both_generated_batches=False)
        assert both["server_to_worker_at_worker"]["md-gan"] == 2 * (
            single["server_to_worker_at_worker"]["md-gan"]
        )


class TestTable4:
    def test_matches_paper_mdgan_costs(self, cifar_inputs):
        """The paper reports 2.30 MB server egress and 0.23 MB per worker at b=10."""
        costs = table4_costs(cifar_inputs)
        assert costs["server_to_worker_at_server"]["md-gan"] == pytest.approx(2.34, abs=0.1)
        assert costs["server_to_worker_at_worker"]["md-gan"] == pytest.approx(0.234, abs=0.01)

    def test_b100_scales_mdgan_costs_tenfold(self, cifar_inputs):
        b100 = CommunicationInputs(
            generator_params=cifar_inputs.generator_params,
            discriminator_params=cifar_inputs.discriminator_params,
            object_size=cifar_inputs.object_size,
            batch_size=100,
            num_workers=10,
            iterations=50_000,
            local_dataset_size=5_000,
        )
        costs10 = table4_costs(cifar_inputs)
        costs100 = table4_costs(b100)
        assert costs100["server_to_worker_at_server"]["md-gan"] == pytest.approx(
            10 * costs10["server_to_worker_at_server"]["md-gan"]
        )
        # FL-GAN costs do not depend on the batch size.
        assert costs100["server_to_worker_at_server"]["fl-gan"] == pytest.approx(
            costs10["server_to_worker_at_server"]["fl-gan"]
        )

    def test_round_rows_not_converted_to_mb(self, cifar_inputs):
        costs = table4_costs(cifar_inputs)
        assert costs["num_server_worker_rounds"]["md-gan"] == 50_000


class TestFigure2:
    def test_flgan_curves_are_flat_in_batch_size(self, cifar_inputs):
        rows = ingress_traffic_sweep(cifar_inputs, [1, 10, 100, 1000])
        flgan_worker = {row["flgan_worker"] for row in rows}
        flgan_server = {row["flgan_server"] for row in rows}
        assert len(flgan_worker) == 1 and len(flgan_server) == 1

    def test_mdgan_curves_grow_linearly(self, cifar_inputs):
        rows = ingress_traffic_sweep(cifar_inputs, [10, 100])
        growth = rows[1]["mdgan_server"] / rows[0]["mdgan_server"]
        assert growth == pytest.approx(10.0)

    def test_crossover_in_the_hundreds_for_paper_gans(self, cifar_inputs):
        mnist_inputs = CommunicationInputs(
            generator_params=716_560,
            discriminator_params=670_219,
            object_size=784,
            batch_size=10,
            num_workers=10,
            iterations=50_000,
            local_dataset_size=6_000,
        )
        assert 50 <= crossover_batch_size(cifar_inputs) <= 600
        assert 100 <= crossover_batch_size(mnist_inputs) <= 1000
        # Below the crossover MD-GAN is cheaper per communication at a worker.
        b = int(crossover_batch_size(cifar_inputs) / 2)
        traffic = ingress_traffic_per_iteration(
            CommunicationInputs(
                generator_params=cifar_inputs.generator_params,
                discriminator_params=cifar_inputs.discriminator_params,
                object_size=cifar_inputs.object_size,
                batch_size=b,
                num_workers=10,
                iterations=50_000,
                local_dataset_size=5_000,
            )
        )
        assert traffic["worker"]["md-gan"] < traffic["worker"]["fl-gan"]

    def test_sweep_rejects_invalid_batch_size(self, cifar_inputs):
        with pytest.raises(ValueError):
            ingress_traffic_sweep(cifar_inputs, [0])

    def test_megabyte_constant_is_binary(self):
        assert MEGABYTE == 2**20

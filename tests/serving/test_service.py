"""Tests for :class:`repro.serving.GeneratorService` (the request path).

Pins the serving contracts: concurrent requests are bitwise identical to
``fan_out_generation`` from the same draws; the versioned param cache ships
zero bytes for an unchanged generator and exactly one re-ship per slot after
``update_generator()``; a killed slot fail-stops every request of the
in-flight group and the service refuses traffic afterwards; and
``from_trainer()`` serves off a trainer's warm pool without owning it.
"""

from __future__ import annotations

import copy
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.runtime import TransportError, create_backend, fan_out_generation
from repro.serving import GeneratorService, ServiceClosed


def _config(**overrides) -> TrainingConfig:
    base = dict(batch_size=8, seed=11, backend="resident", max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


def _draw_requests(factory, dtype, batch_size, k, seed):
    """Replicate ``fan_out_generation``'s draw order: per batch, noise then labels."""
    rng = np.random.default_rng(seed)
    draws = []
    for _ in range(k):
        noise = rng.normal(0.0, 1.0, size=(batch_size, factory.latent_dim))
        noise = noise.astype(dtype, copy=False)
        labels = (
            rng.integers(0, factory.num_classes, size=batch_size)
            if factory.conditional
            else None
        )
        draws.append((noise, labels))
    return draws


class TestBitwiseContract:
    def test_concurrent_requests_match_fan_out(self, ring_setup):
        # N client threads racing submit() must produce, per request, exactly
        # the batch a serial fan_out_generation produces from the same draws.
        _, factory = ring_setup
        k, batch_size = 6, 8
        reference = factory.make_generator(np.random.default_rng(0))
        backend = create_backend("thread", max_workers=2)
        try:
            expected = fan_out_generation(
                backend, reference, factory, batch_size, k, np.random.default_rng(123)
            )
        finally:
            backend.close()
        assert expected is not None

        served = factory.make_generator(np.random.default_rng(0))
        draws = _draw_requests(factory, served.dtype, batch_size, k, seed=123)
        with GeneratorService(served, factory, _config()) as service:
            with ThreadPoolExecutor(max_workers=k) as pool:
                futures = [
                    pool.submit(service.serve, noise=noise, labels=labels)
                    for noise, labels in draws
                ]
                batches = [future.result(timeout=60) for future in futures]
            summary = service.stats.summary()
        assert summary["requests"] == k
        assert summary["failures"] == 0
        for batch, reference_batch in zip(batches, expected):
            assert np.array_equal(batch.images, reference_batch.images)
            assert np.array_equal(batch.noise, reference_batch.noise)
            if factory.conditional:
                assert np.array_equal(batch.labels, reference_batch.labels)

    def test_seeded_requests_are_repeatable_and_backend_independent(self, ring_setup):
        # A per-request seed pins the draws, so the same request answered by
        # the warm pool and by the serial inline path is bitwise identical.
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        with GeneratorService(copy.deepcopy(generator), factory, _config()) as resident:
            resident.warmup()
            first = resident.serve(seed=5)
            again = resident.serve(seed=5)
        serial_config = _config(backend="serial")
        with GeneratorService(copy.deepcopy(generator), factory, serial_config) as serial:
            reference = serial.serve(seed=5)
        assert np.array_equal(first.images, again.images)
        assert np.array_equal(first.images, reference.images)
        assert first.latency_seconds > 0.0


class TestParamCache:
    def test_zero_bytes_when_unchanged_one_reship_per_slot_on_update(self, ring_setup):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        with GeneratorService(generator, factory, _config()) as service:
            service.warmup()  # install + param-cache every slot deterministically
            backend = service.executor
            baseline = backend.param_bytes_sent
            for i in range(5):
                service.serve(seed=i)
            assert backend.param_bytes_sent == baseline, (
                "an unchanged generator must ship zero parameter bytes"
            )

            params = service.generator.get_parameters()
            nbytes = params.nbytes
            service.update_generator((params * 0.5).astype(params.dtype))
            service.warmup()  # touches both slots: exactly one re-ship each
            assert backend.param_bytes_sent == baseline + 2 * nbytes

            baseline = backend.param_bytes_sent
            served = service.serve(seed=123)
            assert backend.param_bytes_sent == baseline

            # The cache skip must serve the *new* weights, not stale copies.
            reference_service = GeneratorService(
                copy.deepcopy(service.generator), factory, _config(backend="serial")
            )
            with reference_service:
                reference = reference_service.serve(seed=123)
            assert np.array_equal(served.images, reference.images)


class TestFailStop:
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_killed_slot_fail_stops_all_requests(self, ring_setup, transport):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        config = _config(batch_size=4, transport=transport)
        service = GeneratorService(generator, factory, config)
        try:
            service.warmup()
            victim = service.executor._transport._processes[0]
            victim.kill()
            victim.join()
            # warmup() enqueues one atomic 2-request group, so both requests
            # are in flight when the dead slot surfaces: the error must be
            # a TransportError naming the slot, broadcast to the whole group.
            with pytest.raises(TransportError) as excinfo:
                service.warmup()
            # Slot indices follow accept order over tcp, so the victim may
            # serve either slot — but the error must name one.
            assert excinfo.value.slot_index in (0, 1)
            assert service.stats.summary()["failures"] == 2
            # Fail-stop: the service refuses further requests, it never
            # silently re-runs lost ones.
            with pytest.raises(ServiceClosed, match="fail-stopped"):
                service.serve(seed=1)
        finally:
            service.close()


class TestLifecycle:
    def test_from_trainer_serves_warm_pool_unowned(self, ring_setup):
        shards, factory = ring_setup
        config = _config(iterations=4)
        trainer = MDGANTrainer(factory, shards, config)
        try:
            trainer.train()
            pool = trainer.executor
            service = GeneratorService.from_trainer(trainer)
            assert service.executor is pool

            # Training bumped the shared handle after its last generation, so
            # the first request may re-ship once; after that the slots are
            # provably current and repeat requests ship zero bytes.
            first = service.serve(seed=7)
            baseline = pool.param_bytes_sent
            second = service.serve(seed=7)
            assert np.array_equal(first.images, second.images)
            assert pool.param_bytes_sent == baseline

            # Closing the service must leave the trainer's pool running: the
            # backend was adopted unowned.
            service.close()
            assert trainer._backend is pool
            trainer.train_iteration(config.iterations + 1)
        finally:
            trainer.close()

    def test_closed_service_refuses_requests(self, ring_setup):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        service = GeneratorService(generator, factory, _config(backend="serial"))
        assert service.serve(seed=1).images.shape[0] == 8
        service.close()
        with pytest.raises(ServiceClosed, match="closed"):
            service.submit(seed=2)
        service.close()  # idempotent

    def test_constructor_and_request_validation(self, ring_setup):
        _, factory = ring_setup

        class Unbuilt:
            built = False

        with pytest.raises(ValueError, match="built generator"):
            GeneratorService(Unbuilt(), factory, _config(backend="serial"))
        generator = factory.make_generator(np.random.default_rng(0))
        with pytest.raises(ValueError, match="max_coalesce"):
            GeneratorService(generator, factory, _config(backend="serial"), max_coalesce=0)
        with GeneratorService(generator, factory, _config(backend="serial")) as service:
            with pytest.raises(ValueError, match="batch_size"):
                service.submit(batch_size=0)


class TestStats:
    def test_summary_counts_and_percentile_order(self, ring_setup):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        with GeneratorService(generator, factory, _config(backend="serial")) as service:
            for i in range(3):
                service.serve(seed=i, batch_size=4)
            summary = service.stats.summary()
        assert summary["requests"] == 3
        assert summary["samples"] == 12
        assert summary["failures"] == 0
        assert summary["mean_coalesce"] >= 1.0
        assert (
            summary["latency_p50_ms"]
            <= summary["latency_p95_ms"]
            <= summary["latency_p99_ms"]
        )
        assert summary["requests_per_second"] > 0

"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan


@pytest.fixture(scope="module")
def ring_setup():
    """A tiny ring dataset split over 4 workers, plus a matched toy GAN."""
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory

"""Checkpoint/restore round-trips for the serving layer and the trainer.

The claim under test is the resident recovery story: a warm pool holds
nothing that cannot be rebuilt from the owner's authoritative objects, so a
checkpoint of those objects survives a process restart — the restored
service answers requests bitwise-identically, and a restored mid-epoch
trainer continues training bitwise-identically to the original.
"""

from __future__ import annotations

import copy
import pickle

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.serving import (
    GeneratorService,
    load_checkpoint,
    restore_service,
    restore_trainer,
    save_checkpoint,
    service_checkpoint,
    trainer_checkpoint,
)


def _config(**overrides) -> TrainingConfig:
    base = dict(batch_size=8, seed=11, backend="resident", max_workers=2)
    base.update(overrides)
    return TrainingConfig(**base)


class TestServiceCheckpoint:
    def test_roundtrip_through_file_is_bitwise(self, ring_setup, tmp_path):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        with GeneratorService(generator, factory, _config()) as service:
            service.warmup()
            params = service.generator.get_parameters()
            service.update_generator((params * 0.75).astype(params.dtype))
            path = save_checkpoint(
                service_checkpoint(service), tmp_path / "service.ckpt"
            )
            expected = service.serve(seed=21)
        restored = restore_service(load_checkpoint(path))
        with restored:
            assert restored.handle.version == 0  # fresh handle on a cold pool
            got = restored.serve(seed=21)
        assert np.array_equal(got.images, expected.images)
        assert np.array_equal(got.noise, expected.noise)

    def test_restore_onto_other_backend_is_bitwise(self, ring_setup):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(1))
        with GeneratorService(generator, factory, _config(backend="serial")) as service:
            checkpoint = service_checkpoint(service)
            expected = service.serve(seed=33).images
        # Restore the serial-backend snapshot onto a warm resident pool.
        with restore_service(checkpoint, config=_config()) as restored:
            assert np.array_equal(restored.serve(seed=33).images, expected)

    def test_envelope_validation(self, ring_setup, tmp_path):
        _, factory = ring_setup
        generator = factory.make_generator(np.random.default_rng(0))
        with GeneratorService(generator, factory, _config(backend="serial")) as service:
            checkpoint = service_checkpoint(service)
        with pytest.raises(ValueError, match="mdgan-trainer"):
            restore_trainer(object(), checkpoint)  # wrong kind
        with pytest.raises(ValueError, match="version"):
            restore_service(dict(checkpoint, version=99))
        junk = tmp_path / "junk.ckpt"
        junk.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="repro-checkpoint"):
            load_checkpoint(junk)


class TestTrainerCheckpoint:
    def test_mid_epoch_roundtrip_continues_bitwise(self, ring_setup, tmp_path):
        # Train 4 of 8 iterations (mid-epoch: 5 batches per shard epoch),
        # checkpoint through a file, restore into a fresh same-config trainer,
        # and continue both — generator, discriminators and worker RNGs must
        # stay bitwise identical.
        shards, factory = ring_setup
        config = _config(iterations=8)
        with MDGANTrainer(factory, shards, config) as original:
            for iteration in range(1, 5):
                original.train_iteration(iteration)
            path = save_checkpoint(
                trainer_checkpoint(original), tmp_path / "trainer.ckpt"
            )
            with MDGANTrainer(factory, shards, config) as resumed:
                restore_trainer(resumed, load_checkpoint(path))
                for iteration in range(5, 9):
                    original.train_iteration(iteration)
                    resumed.train_iteration(iteration)
                original.sync_worker_state()
                resumed.sync_worker_state()
                assert np.array_equal(
                    original.generator.get_parameters(),
                    resumed.generator.get_parameters(),
                )
                for worker_a, worker_b in zip(original.workers, resumed.workers):
                    assert np.array_equal(
                        worker_a.discriminator.get_parameters(),
                        worker_b.discriminator.get_parameters(),
                    )
                    assert (
                        worker_a.rng.bit_generator.state
                        == worker_b.rng.bit_generator.state
                    )
                    assert (
                        worker_a.sampler.samples_drawn
                        == worker_b.sampler.samples_drawn
                    )

    def test_restored_snapshot_is_isolated_from_further_training(
        self, ring_setup, tmp_path
    ):
        # The checkpoint deep-copies: training past the snapshot must not
        # change what a later restore reproduces.
        shards, factory = ring_setup
        config = _config(iterations=4)
        with MDGANTrainer(factory, shards, config) as trainer:
            trainer.train_iteration(1)
            checkpoint = trainer_checkpoint(trainer)
            frozen = copy.deepcopy(checkpoint["state"]["generator"].get_parameters())
            trainer.train_iteration(2)
            assert np.array_equal(
                checkpoint["state"]["generator"].get_parameters(), frozen
            )
            with MDGANTrainer(factory, shards, config) as resumed:
                restore_trainer(resumed, checkpoint)
                assert np.array_equal(resumed.generator.get_parameters(), frozen)

    def test_worker_count_mismatch_raises(self, ring_setup):
        shards, factory = ring_setup
        config = _config(iterations=2)
        with MDGANTrainer(factory, shards, config) as trainer:
            checkpoint = trainer_checkpoint(trainer)
        with MDGANTrainer(factory, shards[:2], config) as other:
            with pytest.raises(ValueError, match="workers"):
                restore_trainer(other, checkpoint)

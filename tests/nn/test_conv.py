"""Unit tests for convolution layers and the im2col primitives."""

import numpy as np
import pytest

from repro.nn import AvgPool2D, Conv2D, Conv2DTranspose, MaxPool2D
from repro.nn.tensor_ops import (
    col2im,
    conv2d_forward,
    conv2d_input_grad,
    conv2d_weight_grad,
    conv_output_size,
    conv_transpose_output_size,
    im2col,
)


class TestGeometry:
    def test_conv_output_size(self):
        assert conv_output_size(28, 3, 1, 1) == 28
        assert conv_output_size(28, 3, 2, 1) == 14
        assert conv_output_size(32, 5, 2, 2) == 16

    def test_conv_output_size_invalid(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_transpose_output_size_inverts_conv(self):
        # 28 -> (stride 2, k 5, pad 2) -> 14 -> transpose with output_padding 1 -> 28
        assert conv_output_size(28, 5, 2, 2) == 14
        assert conv_transpose_output_size(14, 5, 2, 2, 1) == 28

    def test_transpose_output_size_invalid(self):
        with pytest.raises(ValueError):
            conv_transpose_output_size(1, 1, 1, 3, 0)


class TestIm2Col:
    def test_roundtrip_adjoint_property(self, rng):
        # <im2col(x), c> == <x, col2im(c)> for all c: check on random vectors.
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 3, stride=2, pad=1)
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, 3, 3, stride=2, pad=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_identity_kernel_convolution(self, rng):
        # Convolving with a 1x1 identity kernel reproduces the input channel.
        x = rng.normal(size=(2, 1, 5, 5))
        w = np.ones((1, 1, 1, 1))
        np.testing.assert_allclose(conv2d_forward(x, w), x)

    def test_known_small_convolution(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 2, 2))
        w[0, 0, 0, 0] = 1.0  # picks the top-left value of each window
        out = conv2d_forward(x, w, stride=1, pad=0)
        np.testing.assert_array_equal(out[0, 0], [[0, 1, 2], [4, 5, 6], [8, 9, 10]])

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="Channel mismatch"):
            conv2d_forward(rng.normal(size=(1, 2, 4, 4)), np.zeros((3, 1, 3, 3)))


class TestConvGradientsNumerically:
    def _numeric_grad(self, f, x, eps=1e-6):
        grad = np.zeros_like(x)
        flat = x.ravel()
        gflat = grad.ravel()
        for i in range(flat.size):
            old = flat[i]
            flat[i] = old + eps
            up = f()
            flat[i] = old - eps
            down = f()
            flat[i] = old
            gflat[i] = (up - down) / (2 * eps)
        return grad

    def test_input_grad_matches_numeric(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        target = rng.normal(size=conv2d_forward(x, w, 2, 1).shape)

        def loss():
            return 0.5 * float(np.sum((conv2d_forward(x, w, 2, 1) - target) ** 2))

        grad_out = conv2d_forward(x, w, 2, 1) - target
        analytic = conv2d_input_grad(grad_out, w, (5, 5), 2, 1)
        numeric = self._numeric_grad(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_weight_grad_matches_numeric(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        target = rng.normal(size=conv2d_forward(x, w, 1, 1).shape)

        def loss():
            return 0.5 * float(np.sum((conv2d_forward(x, w, 1, 1) - target) ** 2))

        grad_out = conv2d_forward(x, w, 1, 1) - target
        analytic = conv2d_weight_grad(x, grad_out, (3, 3), 1, 1)
        numeric = self._numeric_grad(loss, w)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestConv2DLayer:
    def test_output_shape_same_padding(self, rng):
        layer = Conv2D(8, 3, stride=1, padding="same")
        layer.build((3, 10, 10), rng)
        assert layer.output_shape == (8, 10, 10)

    def test_strided_shape(self, rng):
        layer = Conv2D(4, 3, stride=2, padding=1)
        layer.build((1, 16, 16), rng)
        assert layer.output_shape == (4, 8, 8)

    def test_forward_backward_shapes(self, rng):
        layer = Conv2D(4, 3, stride=2, padding=1)
        layer.build((2, 8, 8), rng)
        x = rng.normal(size=(5, 2, 8, 8))
        out = layer.forward(x)
        assert out.shape == (5, 4, 4, 4)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.grads["W"].shape == layer.params["W"].shape

    def test_bias_added_per_channel(self, rng):
        layer = Conv2D(2, 1, use_bias=True)
        layer.build((1, 3, 3), rng)
        layer.params["W"][...] = 0.0
        layer.params["b"][...] = np.array([1.0, -2.0])
        out = layer.forward(np.zeros((1, 1, 3, 3)))
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Conv2D(0, 3)
        with pytest.raises(ValueError, match="odd kernel"):
            Conv2D(4, 2, padding="same")


class TestConv2DTransposeLayer:
    def test_upsamples_spatially(self, rng):
        layer = Conv2DTranspose(3, 5, stride=2, padding=2, output_padding=1)
        layer.build((8, 7, 7), rng)
        assert layer.output_shape == (3, 14, 14)

    def test_forward_backward_shapes(self, rng):
        layer = Conv2DTranspose(2, 5, stride=2, padding=2, output_padding=1)
        layer.build((4, 4, 4), rng)
        x = rng.normal(size=(3, 4, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 2, 8, 8)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_adjoint_of_conv2d(self, rng):
        # conv_transpose(x; W) is the adjoint of conv(x; W):
        # <conv(a), b> == <a, conv_transpose(b)> when biases are zero.
        conv = Conv2D(3, 3, stride=2, padding=1, use_bias=False)
        conv.build((2, 8, 8), rng)
        tconv = Conv2DTranspose(2, 3, stride=2, padding=1, output_padding=1, use_bias=False)
        tconv.build((3, 4, 4), rng)
        tconv.params["W"][...] = conv.params["W"]
        a = rng.normal(size=(1, 2, 8, 8))
        b = rng.normal(size=(1, 3, 4, 4))
        lhs = float((conv.forward(a) * b).sum())
        rhs = float((a * tconv.forward(b)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_output_padding_validation(self):
        with pytest.raises(ValueError, match="output_padding"):
            Conv2DTranspose(2, 3, stride=2, output_padding=2)


class TestPooling:
    def test_maxpool_picks_maximum(self, rng):
        layer = MaxPool2D(2)
        layer.build((1, 4, 4), rng)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_max(self, rng):
        layer = MaxPool2D(2)
        layer.build((1, 2, 2), rng)
        x = np.array([[[[1.0, 5.0], [2.0, 3.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[1.0]]]]))
        np.testing.assert_array_equal(grad, [[[[0.0, 1.0], [0.0, 0.0]]]])

    def test_avgpool_values_and_grad(self, rng):
        layer = AvgPool2D(2)
        layer.build((1, 2, 2), rng)
        x = np.array([[[[1.0, 3.0], [5.0, 7.0]]]])
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[[[4.0]]]])
        grad = layer.backward(np.array([[[[8.0]]]]))
        np.testing.assert_allclose(grad, 2.0)

    def test_pooling_requires_divisible_dims(self, rng):
        layer = MaxPool2D(3)
        with pytest.raises(ValueError):
            layer.build((1, 4, 4), rng)

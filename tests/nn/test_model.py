"""Unit tests for the Sequential container and parameter serialisation."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Sequential,
    Tanh,
    precision_scope,
    average_parameters,
    copy_parameters,
    parameter_bytes,
    vector_bytes,
    weighted_average_parameters,
)


def small_model(rng, out=3):
    return Sequential(
        [Dense(8), ReLU(), Dense(out)], input_shape=(5,), rng=rng, name="small"
    )


class TestBuildAndShapes:
    def test_shapes_propagate(self, rng):
        model = Sequential(
            [Dense(12), ReLU(), Reshape((3, 2, 2)), Flatten(), Dense(4)],
            input_shape=(6,),
            rng=rng,
        )
        assert model.output_shape == (4,)
        assert model.forward(rng.normal(size=(7, 6))).shape == (7, 4)

    def test_unbuilt_model_raises(self):
        model = Sequential([Dense(3)])
        with pytest.raises(RuntimeError, match="must be built"):
            model.forward(np.zeros((1, 2)))

    def test_num_parameters(self, rng):
        model = small_model(rng)
        assert model.num_parameters == (5 * 8 + 8) + (8 * 3 + 3)


class TestParameterVector:
    def test_get_set_roundtrip(self, rng):
        model = small_model(rng)
        flat = model.get_parameters()
        model.set_parameters(np.zeros_like(flat))
        assert np.all(model.get_parameters() == 0)
        model.set_parameters(flat)
        np.testing.assert_array_equal(model.get_parameters(), flat)

    def test_set_parameters_is_in_place(self, rng):
        model = small_model(rng)
        before_ids = [id(p) for _, p in model.named_parameters()]
        model.set_parameters(model.get_parameters() * 2)
        after_ids = [id(p) for _, p in model.named_parameters()]
        assert before_ids == after_ids

    def test_set_parameters_wrong_size(self, rng):
        model = small_model(rng)
        with pytest.raises(ValueError, match="expects"):
            model.set_parameters(np.zeros(3))

    def test_parameters_affect_output(self, rng):
        model = small_model(rng)
        x = rng.normal(size=(4, 5))
        out1 = model.forward(x)
        model.set_parameters(model.get_parameters() * 0.0)
        out2 = model.forward(x)
        assert not np.allclose(out1, out2)
        np.testing.assert_allclose(out2, 0.0)

    def test_gradients_roundtrip(self, rng):
        model = small_model(rng)
        x = rng.normal(size=(4, 5))
        model.zero_grad()
        model.forward(x)
        model.backward(np.ones((4, 3)))
        grads = model.get_gradients()
        assert grads.shape == (model.num_parameters,)
        model.set_gradients(np.ones_like(grads))
        np.testing.assert_array_equal(model.get_gradients(), 1.0)

    def test_identical_seeds_identical_parameters(self):
        a = small_model(np.random.default_rng(42))
        b = small_model(np.random.default_rng(42))
        np.testing.assert_array_equal(a.get_parameters(), b.get_parameters())


class TestBackward:
    def test_backward_returns_input_gradient(self, rng):
        # Numeric check against central differences: float64 opt-in.
        with precision_scope("float64"):
            model = small_model(rng, out=1)
        x = rng.normal(size=(6, 5))
        out = model.forward(x)
        model.zero_grad()
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        # Numeric check on one input coordinate.
        eps = 1e-6
        i, j = 2, 3
        xp = x.copy()
        xp[i, j] += eps
        xm = x.copy()
        xm[i, j] -= eps
        numeric = (model.forward(xp).sum() - model.forward(xm).sum()) / (2 * eps)
        assert grad_in[i, j] == pytest.approx(numeric, rel=1e-5, abs=1e-8)

    def test_zero_grad_resets(self, rng):
        model = small_model(rng)
        x = rng.normal(size=(4, 5))
        model.zero_grad()
        model.forward(x)
        model.backward(np.ones((4, 3)))
        assert np.any(model.get_gradients() != 0)
        model.zero_grad()
        np.testing.assert_array_equal(model.get_gradients(), 0.0)

    def test_predict_uses_eval_mode(self, rng):
        from repro.nn import Dropout

        model = Sequential(
            [Dense(16), Dropout(0.9), Dense(2)], input_shape=(4,), rng=rng
        )
        x = rng.normal(size=(3, 4))
        # Evaluation mode is deterministic.
        np.testing.assert_array_equal(model.predict(x), model.predict(x))


class TestCloneAndSummary:
    def test_clone_architecture_is_independent(self, rng):
        model = small_model(rng)
        clone = model.clone_architecture()
        clone.build((5,), np.random.default_rng(99))
        assert clone.num_parameters == model.num_parameters
        clone.set_parameters(np.zeros(clone.num_parameters))
        assert np.any(model.get_parameters() != 0)

    def test_summary_mentions_all_layers(self, rng):
        model = Sequential(
            [Dense(4, name="first"), Tanh(name="act"), Dense(2, name="second")],
            input_shape=(3,),
            rng=rng,
        )
        text = model.summary()
        assert "first" in text and "second" in text
        assert "Total parameters" in text


class TestSerializeHelpers:
    def test_parameter_and_vector_bytes(self, rng):
        model = small_model(rng)
        assert parameter_bytes(model) == 4 * model.num_parameters
        assert vector_bytes(np.zeros((10, 3))) == 120

    def test_average_parameters(self):
        avg = average_parameters([np.zeros(4), np.ones(4) * 2])
        np.testing.assert_allclose(avg, 1.0)

    def test_average_parameters_validation(self):
        with pytest.raises(ValueError):
            average_parameters([])
        with pytest.raises(ValueError, match="inconsistent"):
            average_parameters([np.zeros(3), np.zeros(4)])

    def test_weighted_average(self):
        avg = weighted_average_parameters([np.zeros(2), np.ones(2)], [1.0, 3.0])
        np.testing.assert_allclose(avg, 0.75)
        with pytest.raises(ValueError):
            weighted_average_parameters([np.zeros(2)], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_average_parameters([np.zeros(2), np.ones(2)], [0.0, 0.0])

    def test_copy_parameters(self, rng):
        a = small_model(rng)
        b = small_model(np.random.default_rng(77))
        copy_parameters(a, b)
        np.testing.assert_array_equal(a.get_parameters(), b.get_parameters())


class TestLeakyArchitectureIntegration:
    def test_deep_stack_trains_one_step(self, rng):
        from repro.nn import Adam

        model = Sequential(
            [Dense(32), LeakyReLU(0.2), Dense(32), LeakyReLU(0.2), Dense(1)],
            input_shape=(10,),
            rng=rng,
        )
        opt = Adam(learning_rate=1e-3)
        x = rng.normal(size=(16, 10))
        y = rng.normal(size=(16, 1))

        def loss():
            pred = model.forward(x)
            return 0.5 * float(np.sum((pred - y) ** 2)), pred

        first, pred = loss()
        for _ in range(50):
            value, pred = loss()
            model.zero_grad()
            model.backward(pred - y)
            opt.step(model)
        final, _ = loss()
        assert final < first

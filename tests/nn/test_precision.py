"""Tests for the precision policy subsystem (``repro.nn.precision``).

The policy's contract: float32 is the process-wide default, float64 is an
explicit opt-in, and once a model is built under a policy every parameter,
activation, gradient and optimizer moment stays in that dtype — no hidden
float64 upcasts on the forward/backward/update path.
"""

import numpy as np
import pytest

from repro.nn import (
    FLOAT32,
    FLOAT64,
    Adam,
    BatchNorm,
    Conv2D,
    Conv2DTranspose,
    Dense,
    Dropout,
    Flatten,
    GaussianNoise,
    LeakyReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Tanh,
    bce_with_logits,
    get_default_precision,
    precision_scope,
    resolve_precision,
    set_default_precision,
    softmax_cross_entropy,
)
from repro.nn.precision import as_dtype, resolve_dtype


class TestPolicyResolution:
    def test_default_is_float32(self):
        assert get_default_precision() is FLOAT32
        assert resolve_dtype(None) == np.float32

    def test_resolve_accepts_many_spellings(self):
        for spec in ("float64", np.float64, np.dtype(np.float64), FLOAT64):
            assert resolve_precision(spec) is FLOAT64

    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError, match="Unsupported precision"):
            resolve_precision("float16")
        with pytest.raises(ValueError):
            resolve_precision(object())

    def test_scope_restores_previous_policy(self):
        assert get_default_precision() is FLOAT32
        with precision_scope("float64"):
            assert get_default_precision() is FLOAT64
            with precision_scope("float32"):
                assert get_default_precision() is FLOAT32
            assert get_default_precision() is FLOAT64
        assert get_default_precision() is FLOAT32

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with precision_scope("float64"):
                raise RuntimeError("boom")
        assert get_default_precision() is FLOAT32

    def test_set_default_precision_roundtrip(self):
        try:
            assert set_default_precision("float64") is FLOAT64
            assert get_default_precision() is FLOAT64
        finally:
            set_default_precision("float32")

    def test_as_dtype_avoids_copies(self):
        x = np.ones(4, dtype=np.float32)
        assert as_dtype(x, np.dtype(np.float32)) is x
        y = as_dtype(x, np.dtype(np.float64))
        assert y.dtype == np.float64 and y is not x


def _stack(dtype=None):
    return Sequential(
        [
            Dense(16),
            BatchNorm(),
            LeakyReLU(0.2),
            Dropout(0.25),
            Reshape((1, 4, 4)),
            Conv2D(4, 3, padding="same"),
            Tanh(),
            Conv2DTranspose(2, 3, stride=1, padding="same"),
            GaussianNoise(0.05),
            Flatten(),
            Dense(3),
            Sigmoid(),
        ],
        input_shape=(6,),
        rng=np.random.default_rng(0),
        dtype=dtype,
    )


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestModelDtypePreservation:
    def test_parameters_and_grads_built_in_policy_dtype(self, dtype):
        model = _stack(dtype)
        assert model.dtype == np.dtype(dtype)
        for _, param, grad in model.named_parameters_and_grads():
            assert param.dtype == np.dtype(dtype)
            assert grad.dtype == np.dtype(dtype)

    def test_forward_backward_stay_in_policy_dtype(self, dtype):
        model = _stack(dtype)
        x = np.random.default_rng(1).normal(size=(5, 6))  # float64 input
        out = model.forward(x, training=True)
        assert out.dtype == np.dtype(dtype)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.dtype == np.dtype(dtype)
        for _, _, grad in model.named_parameters_and_grads():
            assert grad.dtype == np.dtype(dtype)

    def test_parameter_roundtrip_preserves_dtype(self, dtype):
        model = _stack(dtype)
        flat = model.get_parameters()
        assert flat.dtype == np.dtype(dtype)
        model.set_parameters(flat.astype(np.float64))  # wire may be f64
        for _, param in model.named_parameters():
            assert param.dtype == np.dtype(dtype)
        assert model.get_gradients().dtype == np.dtype(dtype)

    def test_optimizer_state_follows_policy(self, dtype):
        model = _stack(dtype)
        opt = Adam(learning_rate=1e-3)
        x = np.random.default_rng(2).normal(size=(4, 6))
        out = model.forward(x, training=True)
        model.zero_grad()
        model.backward(np.ones_like(out))
        opt.step(model)
        assert all(m.dtype == np.dtype(dtype) for m in opt._m.values())
        assert all(v.dtype == np.dtype(dtype) for v in opt._v.values())
        for _, param in model.named_parameters():
            assert param.dtype == np.dtype(dtype)

    def test_loss_gradients_match_logit_dtype(self, dtype):
        logits = np.random.default_rng(3).normal(size=(6, 1)).astype(dtype)
        _, grad = bce_with_logits(logits, np.zeros_like(logits))
        assert grad.dtype == np.dtype(dtype)
        cls_logits = np.random.default_rng(4).normal(size=(6, 5)).astype(dtype)
        labels = np.arange(6) % 5
        _, grad_cls = softmax_cross_entropy(cls_logits, labels)
        assert grad_cls.dtype == np.dtype(dtype)

    def test_clone_architecture_keeps_policy(self, dtype):
        model = _stack(dtype)
        clone = model.clone_architecture()
        clone.build((6,), np.random.default_rng(5))
        assert clone.dtype == np.dtype(dtype)
        assert clone.get_parameters().dtype == np.dtype(dtype)


class TestPolicySelectsModelDtype:
    def test_scope_governs_unannotated_models(self):
        with precision_scope("float64"):
            model = Sequential([Dense(3)], input_shape=(2,))
        assert model.dtype == np.float64
        model32 = Sequential([Dense(3)], input_shape=(2,))
        assert model32.dtype == np.float32

    def test_float32_halves_parameter_memory(self):
        m32 = Sequential([Dense(64)], input_shape=(32,), dtype=np.float32)
        m64 = Sequential([Dense(64)], input_shape=(32,), dtype=np.float64)
        bytes32 = sum(p.nbytes for _, p in m32.named_parameters())
        bytes64 = sum(p.nbytes for _, p in m64.named_parameters())
        assert bytes64 == 2 * bytes32

"""Unit tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, Dense, SGD, Sequential, make_optimizer


def quadratic_model(rng, dim=4):
    """One-layer linear model used as an optimisation test bed."""
    model = Sequential([Dense(1, use_bias=False)], input_shape=(dim,), rng=rng)
    return model


def quadratic_step(model, x, y):
    """Set gradients of 0.5 * ||x w - y||^2 on the model."""
    pred = model.forward(x)
    model.zero_grad()
    model.backward(pred - y)
    return float(0.5 * np.sum((pred - y) ** 2))


class TestSGD:
    def test_plain_sgd_descends(self, rng):
        model = quadratic_model(rng)
        x = rng.normal(size=(32, 4))
        y = x @ rng.normal(size=(4, 1))
        opt = SGD(learning_rate=0.01)
        losses = [quadratic_step(model, x, y)]
        for _ in range(200):
            quadratic_step(model, x, y)
            opt.step(model)
        losses.append(quadratic_step(model, x, y))
        assert losses[-1] < 0.05 * losses[0]

    def test_momentum_accelerates_with_small_learning_rate(self, rng):
        # With a deliberately small learning rate, momentum's ~1/(1-mu)
        # effective step size reaches a lower loss in the same number of steps.
        x = rng.normal(size=(32, 4))
        y = x @ rng.normal(size=(4, 1))

        def run(momentum):
            model = quadratic_model(np.random.default_rng(0))
            opt = SGD(learning_rate=5e-4, momentum=momentum)
            for _ in range(40):
                quadratic_step(model, x, y)
                opt.step(model)
            return quadratic_step(model, x, y)

        assert run(0.9) < run(0.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=-1)
        with pytest.raises(ValueError):
            SGD(momentum=1.5)

    def test_reset_clears_velocity(self, rng):
        model = quadratic_model(rng)
        x = rng.normal(size=(8, 4))
        y = rng.normal(size=(8, 1))
        opt = SGD(learning_rate=0.01, momentum=0.9)
        quadratic_step(model, x, y)
        opt.step(model)
        assert opt._velocity
        opt.reset()
        assert not opt._velocity and opt.iterations == 0

    def test_raises_on_state_shape_mismatch(self, rng):
        # Applying the same optimizer to a differently-shaped model under
        # matching parameter keys indicates a wiring bug (e.g. a swap against
        # the wrong architecture) and must not silently reset the momenta.
        opt = SGD(learning_rate=0.01, momentum=0.9)
        model = quadratic_model(np.random.default_rng(0), dim=4)
        x = rng.normal(size=(8, 4))
        y = rng.normal(size=(8, 1))
        quadratic_step(model, x, y)
        opt.step(model)
        other = quadratic_model(np.random.default_rng(1), dim=5)
        quadratic_step(other, rng.normal(size=(8, 5)), y)
        with pytest.raises(ValueError, match="SGD state .* shape"):
            opt.step(other)
        # reset() is the documented way to reuse the optimizer.
        opt.reset()
        opt.step(other)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        model = quadratic_model(rng)
        x = rng.normal(size=(64, 4))
        y = x @ rng.normal(size=(4, 1))
        opt = Adam(learning_rate=0.05)
        initial = quadratic_step(model, x, y)
        for _ in range(300):
            quadratic_step(model, x, y)
            opt.step(model)
        assert quadratic_step(model, x, y) < 0.01 * initial

    def test_first_step_size_close_to_learning_rate(self, rng):
        # Bias correction makes the first Adam step approximately lr * sign(grad).
        model = quadratic_model(rng, dim=2)
        model.set_parameters(np.array([1.0, 1.0]))
        x = np.eye(2)
        y = np.zeros((2, 1))
        opt = Adam(learning_rate=0.1)
        quadratic_step(model, x, y)
        before = model.get_parameters()
        opt.step(model)
        after = model.get_parameters()
        np.testing.assert_allclose(np.abs(after - before), 0.1, rtol=1e-5)

    def test_raises_on_state_shape_mismatch(self, rng):
        # Silent moment resets after a bad discriminator swap masked wiring
        # bugs; a shape change under a known key must now raise.
        opt = Adam(learning_rate=0.01)
        model = quadratic_model(np.random.default_rng(0), dim=4)
        x = rng.normal(size=(8, 4))
        y = rng.normal(size=(8, 1))
        quadratic_step(model, x, y)
        opt.step(model)
        other = quadratic_model(np.random.default_rng(1), dim=5)
        quadratic_step(other, rng.normal(size=(8, 5)), y)
        with pytest.raises(ValueError, match="Adam state .* shape"):
            opt.step(other)
        opt.reset()
        opt.step(other)

    def test_state_tracks_parameters_across_set_parameters(self, rng):
        # set_parameters writes in place, so Adam's per-key state stays valid.
        model = quadratic_model(rng)
        x = rng.normal(size=(16, 4))
        y = rng.normal(size=(16, 1))
        opt = Adam(learning_rate=0.01)
        quadratic_step(model, x, y)
        opt.step(model)
        model.set_parameters(model.get_parameters() * 0.5)
        quadratic_step(model, x, y)
        opt.step(model)  # must not raise and must keep one state per key
        assert len(opt._m) == 1

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)

    def test_state_dict_contents(self):
        opt = Adam(learning_rate=0.002, beta1=0.4)
        state = opt.state_dict()
        assert state["learning_rate"] == 0.002
        assert state["beta1"] == 0.4


class TestFactory:
    def test_make_optimizer(self):
        assert isinstance(make_optimizer("adam"), Adam)
        assert isinstance(make_optimizer("sgd", learning_rate=0.1), SGD)
        with pytest.raises(ValueError):
            make_optimizer("lbfgs")

"""Numerical gradient checks across full layer stacks.

These tests validate the backward pass of every layer family in composition,
including the input-gradient path MD-GAN's error feedback relies on.  Smooth
activations (Tanh) are used so that finite differences are well behaved, and
the whole module opts into the float64 precision policy — central differences
with ``eps=1e-6`` need more headroom than the float32 default provides.
"""

import numpy as np
import pytest

from repro.nn import precision_scope

from repro.nn import (
    BatchNorm,
    Conv2D,
    Conv2DTranspose,
    Dense,
    Flatten,
    LayerNorm,
    MinibatchDiscrimination,
    Reshape,
    Sequential,
    Tanh,
    UpSampling2D,
)


def check_parameter_gradients(model, x, target, samples, rng, tol=2e-4):
    """Compare analytic parameter gradients against central differences."""

    def loss_of(flat):
        model.set_parameters(flat)
        out = model.forward(x)
        return 0.5 * float(np.sum((out - target) ** 2))

    flat0 = model.get_parameters()
    model.set_parameters(flat0)
    model.zero_grad()
    out = model.forward(x)
    model.backward(out - target)
    analytic = model.get_gradients()

    eps = 1e-6
    indices = rng.choice(flat0.size, size=min(samples, flat0.size), replace=False)
    for i in indices:
        up = flat0.copy()
        up[i] += eps
        down = flat0.copy()
        down[i] -= eps
        numeric = (loss_of(up) - loss_of(down)) / (2 * eps)
        denom = abs(numeric) + abs(analytic[i]) + 1e-8
        assert abs(numeric - analytic[i]) / denom < tol, (
            f"parameter {i}: numeric {numeric} vs analytic {analytic[i]}"
        )
    model.set_parameters(flat0)


def check_input_gradients(model, x, target, samples, rng, tol=2e-4):
    """Compare the analytic input gradient against central differences."""
    model.zero_grad()
    out = model.forward(x)
    grad_in = model.backward(out - target)

    def loss_of_input(xflat):
        out = model.forward(xflat.reshape(x.shape))
        return 0.5 * float(np.sum((out - target) ** 2))

    eps = 1e-6
    flat = x.ravel()
    indices = rng.choice(flat.size, size=min(samples, flat.size), replace=False)
    for i in indices:
        up = flat.copy()
        up[i] += eps
        down = flat.copy()
        down[i] -= eps
        numeric = (loss_of_input(up) - loss_of_input(down)) / (2 * eps)
        analytic = grad_in.ravel()[i]
        denom = abs(numeric) + abs(analytic) + 1e-8
        assert abs(numeric - analytic) / denom < tol, (
            f"input {i}: numeric {numeric} vs analytic {analytic}"
        )


@pytest.fixture(autouse=True)
def _float64_policy():
    """Finite-difference checks use the documented float64 opt-in."""
    with precision_scope("float64"):
        yield


@pytest.fixture()
def grad_rng():
    return np.random.default_rng(2024)


def test_dense_tanh_stack(grad_rng):
    model = Sequential(
        [Dense(10), Tanh(), Dense(6), Tanh(), Dense(2)],
        input_shape=(5,),
        rng=grad_rng,
    )
    x = grad_rng.normal(size=(4, 5))
    target = grad_rng.normal(size=(4, 2))
    check_parameter_gradients(model, x, target, samples=40, rng=grad_rng)
    check_input_gradients(model, x, target, samples=15, rng=grad_rng)


def test_conv_discriminator_stack(grad_rng):
    model = Sequential(
        [
            Conv2D(4, 3, stride=2, padding=1),
            Tanh(),
            Conv2D(6, 3, stride=1, padding=1),
            Tanh(),
            Flatten(),
            Dense(1),
        ],
        input_shape=(2, 8, 8),
        rng=grad_rng,
    )
    x = grad_rng.normal(size=(3, 2, 8, 8))
    target = grad_rng.normal(size=(3, 1))
    check_parameter_gradients(model, x, target, samples=30, rng=grad_rng)
    check_input_gradients(model, x, target, samples=15, rng=grad_rng)


def test_transposed_conv_generator_stack(grad_rng):
    model = Sequential(
        [
            Dense(3 * 4 * 4),
            Tanh(),
            Reshape((3, 4, 4)),
            Conv2DTranspose(2, 5, stride=2, padding=2, output_padding=1),
            Tanh(),
        ],
        input_shape=(6,),
        rng=grad_rng,
    )
    x = grad_rng.normal(size=(3, 6))
    target = grad_rng.normal(size=(3, 2, 8, 8))
    check_parameter_gradients(model, x, target, samples=30, rng=grad_rng)
    check_input_gradients(model, x, target, samples=12, rng=grad_rng)


def test_batchnorm_layernorm_stack(grad_rng):
    model = Sequential(
        [Dense(8), BatchNorm(), Tanh(), Dense(8), LayerNorm(), Dense(3)],
        input_shape=(5,),
        rng=grad_rng,
    )
    x = grad_rng.normal(size=(6, 5))
    target = grad_rng.normal(size=(6, 3))
    check_parameter_gradients(model, x, target, samples=30, rng=grad_rng, tol=5e-4)
    check_input_gradients(model, x, target, samples=12, rng=grad_rng, tol=5e-4)


def test_minibatch_discrimination_stack(grad_rng):
    model = Sequential(
        [Dense(6), Tanh(), MinibatchDiscrimination(3, 2), Dense(1)],
        input_shape=(4,),
        rng=grad_rng,
    )
    x = grad_rng.normal(size=(5, 4))
    target = grad_rng.normal(size=(5, 1))
    check_parameter_gradients(model, x, target, samples=30, rng=grad_rng)
    check_input_gradients(model, x, target, samples=12, rng=grad_rng)


def test_upsampling_stack(grad_rng):
    model = Sequential(
        [
            Dense(2 * 3 * 3),
            Tanh(),
            Reshape((2, 3, 3)),
            UpSampling2D(2),
            Conv2D(1, 3, padding=1),
            Tanh(),
        ],
        input_shape=(4,),
        rng=grad_rng,
    )
    x = grad_rng.normal(size=(2, 4))
    target = grad_rng.normal(size=(2, 1, 6, 6))
    check_parameter_gradients(model, x, target, samples=25, rng=grad_rng)
    check_input_gradients(model, x, target, samples=8, rng=grad_rng)

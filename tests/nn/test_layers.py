"""Unit tests for the core (non-convolutional) layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Dense,
    Dropout,
    Flatten,
    GaussianNoise,
    LayerNorm,
    LeakyReLU,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    UpSampling2D,
)


def build(layer, shape, rng):
    layer.build(shape, rng)
    return layer


class TestDense:
    def test_output_shape_and_params(self, rng):
        layer = build(Dense(7), (5,), rng)
        assert layer.output_shape == (7,)
        assert layer.params["W"].shape == (5, 7)
        assert layer.params["b"].shape == (7,)
        assert layer.num_params == 5 * 7 + 7

    def test_forward_matches_matmul(self, rng):
        layer = build(Dense(3), (4,), rng)
        x = rng.normal(size=(6, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.params["W"] + layer.params["b"]
        )

    def test_backward_shapes_and_accumulation(self, rng):
        layer = build(Dense(3), (4,), rng)
        x = rng.normal(size=(6, 4))
        layer.forward(x)
        grad_in = layer.backward(np.ones((6, 3)))
        assert grad_in.shape == x.shape
        first = layer.grads["W"].copy()
        layer.forward(x)
        layer.backward(np.ones((6, 3)))
        np.testing.assert_allclose(layer.grads["W"], 2 * first)

    def test_no_bias(self, rng):
        layer = build(Dense(3, use_bias=False), (4,), rng)
        assert "b" not in layer.params

    def test_rejects_non_flat_input(self, rng):
        with pytest.raises(ValueError, match="flat inputs"):
            build(Dense(3), (4, 5), rng)

    def test_rejects_nonpositive_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_backward_before_forward_raises(self, rng):
        layer = build(Dense(3), (4,), rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 3)))


class TestShapes:
    def test_flatten_roundtrip(self, rng):
        layer = build(Flatten(), (2, 3, 4), rng)
        x = rng.normal(size=(5, 2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (5, 24)
        assert layer.backward(out).shape == x.shape

    def test_reshape_roundtrip(self, rng):
        layer = build(Reshape((2, 3, 4)), (24,), rng)
        x = rng.normal(size=(5, 24))
        out = layer.forward(x)
        assert out.shape == (5, 2, 3, 4)
        np.testing.assert_array_equal(layer.backward(out), x)

    def test_reshape_size_mismatch(self, rng):
        with pytest.raises(ValueError, match="Cannot reshape"):
            build(Reshape((2, 3)), (24,), rng)


class TestActivations:
    def test_relu_values_and_grad(self, rng):
        layer = build(ReLU(), (4,), rng)
        x = np.array([[-1.0, 0.0, 2.0, -3.0]])
        out = layer.forward(x)
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0, 0.0]])
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 0.0, 1.0, 0.0]])

    def test_leaky_relu(self, rng):
        layer = build(LeakyReLU(0.1), (2,), rng)
        x = np.array([[-2.0, 4.0]])
        np.testing.assert_allclose(layer.forward(x), [[-0.2, 4.0]])
        np.testing.assert_allclose(layer.backward(np.ones_like(x)), [[0.1, 1.0]])

    def test_sigmoid_range_and_extremes(self, rng):
        layer = build(Sigmoid(), (3,), rng)
        x = np.array([[-1000.0, 0.0, 1000.0]])
        out = layer.forward(x)
        assert np.all((out >= 0) & (out <= 1))
        np.testing.assert_allclose(out[0, 1], 0.5)
        assert np.isfinite(layer.backward(np.ones_like(x))).all()

    def test_tanh_matches_numpy(self, rng):
        layer = build(Tanh(), (5,), rng)
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(layer.forward(x), np.tanh(x))

    def test_softmax_rows_sum_to_one(self, rng):
        layer = build(Softmax(), (6,), rng)
        out = layer.forward(rng.normal(size=(4, 6)) * 50)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))

    def test_softmax_backward_orthogonal_to_constant(self, rng):
        # Adding a constant to the upstream gradient must not change the
        # input gradient (softmax is invariant to constant logit shifts).
        layer = build(Softmax(), (5,), rng)
        x = rng.normal(size=(3, 5))
        layer.forward(x)
        g = rng.normal(size=(3, 5))
        base = layer.backward(g)
        layer.forward(x)
        shifted = layer.backward(g + 10.0)
        np.testing.assert_allclose(base, shifted, atol=1e-10)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = build(Dropout(0.5), (10,), rng)
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_mode_scales_surviving_units(self, rng):
        layer = build(Dropout(0.5), (1000,), rng)
        x = np.ones((2, 1000))
        out = layer.forward(x, training=True)
        kept = out != 0
        np.testing.assert_allclose(out[kept], 2.0)
        # Expected keep fraction around 0.5.
        assert 0.4 < kept.mean() < 0.6

    def test_backward_uses_same_mask(self, rng):
        layer = build(Dropout(0.3), (50,), rng)
        x = np.ones((3, 50))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalises_features_2d(self, rng):
        layer = build(BatchNorm(), (6,), rng)
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_normalises_channels_4d(self, rng):
        layer = build(BatchNorm(), (3, 5, 5), rng)
        x = rng.normal(loc=-1.0, scale=4.0, size=(8, 3, 5, 5))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_running_statistics_used_at_eval(self, rng):
        layer = build(BatchNorm(momentum=0.0), (4,), rng)
        x = rng.normal(loc=5.0, size=(32, 4))
        layer.forward(x, training=True)
        # With momentum 0 the running stats equal the last batch stats, so
        # evaluating the same batch gives (nearly) normalised outputs.
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_backward_shape(self, rng):
        layer = build(BatchNorm(), (3, 4, 4), rng)
        x = rng.normal(size=(6, 3, 4, 4))
        layer.forward(x, training=True)
        grad = layer.backward(rng.normal(size=x.shape))
        assert grad.shape == x.shape
        assert layer.grads["gamma"].shape == (3,)


class TestLayerNorm:
    def test_normalises_per_sample(self, rng):
        layer = build(LayerNorm(), (10,), rng)
        x = rng.normal(loc=2.0, scale=3.0, size=(7, 10))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-7)

    def test_backward_shape(self, rng):
        layer = build(LayerNorm(), (4, 3, 3), rng)
        x = rng.normal(size=(5, 4, 3, 3))
        layer.forward(x)
        assert layer.backward(np.ones_like(x)).shape == x.shape


class TestUpSampling:
    def test_forward_repeats_pixels(self, rng):
        layer = build(UpSampling2D(2), (1, 2, 2), rng)
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        out = layer.forward(x)
        assert out.shape == (1, 1, 4, 4)
        # Each input pixel becomes a 2x2 block of its own value.
        np.testing.assert_array_equal(out[0, 0, :2, :2], 0.0)
        np.testing.assert_array_equal(out[0, 0, :2, 2:], 1.0)
        np.testing.assert_array_equal(out[0, 0, 2:, :2], 2.0)
        np.testing.assert_array_equal(out[0, 0, 2:, 2:], 3.0)

    def test_backward_sums_gradient(self, rng):
        layer = build(UpSampling2D(2), (1, 2, 2), rng)
        x = rng.normal(size=(3, 1, 2, 2))
        layer.forward(x)
        grad = layer.backward(np.ones((3, 1, 4, 4)))
        np.testing.assert_allclose(grad, 4.0)


class TestGaussianNoise:
    def test_eval_identity_and_training_perturbs(self, rng):
        layer = build(GaussianNoise(0.5), (20,), rng)
        x = np.zeros((4, 20))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)
        assert np.any(layer.forward(x, training=True) != 0)

    def test_backward_passthrough(self, rng):
        layer = build(GaussianNoise(0.5), (20,), rng)
        layer.forward(np.zeros((4, 20)), training=True)
        g = rng.normal(size=(4, 20))
        np.testing.assert_array_equal(layer.backward(g), g)

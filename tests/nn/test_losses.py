"""Unit tests for loss functions and GAN objectives."""

import numpy as np
import pytest

from repro.nn import (
    ACGANLoss,
    GANLoss,
    bce_with_logits,
    mse_loss,
    sigmoid,
    softmax_cross_entropy,
)


class TestBCE:
    def test_known_value_at_zero_logit(self):
        loss, grad = bce_with_logits(np.zeros((4, 1)), np.ones((4, 1)))
        assert loss == pytest.approx(np.log(2.0))
        np.testing.assert_allclose(grad, (0.5 - 1.0) / 4)

    def test_extreme_logits_are_stable(self):
        loss, grad = bce_with_logits(
            np.array([[1000.0], [-1000.0]]), np.array([[1.0], [0.0]])
        )
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(5, 1))
        targets = rng.integers(0, 2, size=(5, 1)).astype(float)
        _, grad = bce_with_logits(logits, targets)
        eps = 1e-6
        for i in range(5):
            up = logits.copy()
            up[i] += eps
            down = logits.copy()
            down[i] -= eps
            numeric = (bce_with_logits(up, targets)[0] - bce_with_logits(down, targets)[0]) / (
                2 * eps
            )
            assert grad[i, 0] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros((3, 1)), np.zeros((4, 1)))


class TestSoftmaxCE:
    def test_uniform_logits(self):
        loss, grad = softmax_cross_entropy(np.zeros((2, 4)), np.array([0, 3]))
        assert loss == pytest.approx(np.log(4.0))
        assert grad.shape == (2, 4)

    def test_perfect_prediction_has_small_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        i, j = 1, 2
        up = logits.copy()
        up[i, j] += eps
        down = logits.copy()
        down[i, j] -= eps
        numeric = (
            softmax_cross_entropy(up, labels)[0] - softmax_cross_entropy(down, labels)[0]
        ) / (2 * eps)
        assert grad[i, j] == pytest.approx(numeric, rel=1e-5, abs=1e-9)


class TestMSE:
    def test_zero_loss_for_equal_inputs(self, rng):
        x = rng.normal(size=(4, 3))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_known_value(self):
        loss, grad = mse_loss(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(4.0)
        assert grad[0, 0] == pytest.approx(4.0)


class TestSigmoid:
    def test_extremes(self):
        out = sigmoid(np.array([-1e4, 0.0, 1e4]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)


class TestGANLoss:
    def test_discriminator_prefers_correct_classification(self):
        loss = GANLoss()
        confident_correct, _, _ = loss.discriminator_loss(
            real_logits=np.full((8, 1), 5.0), fake_logits=np.full((8, 1), -5.0)
        )
        confident_wrong, _, _ = loss.discriminator_loss(
            real_logits=np.full((8, 1), -5.0), fake_logits=np.full((8, 1), 5.0)
        )
        assert confident_correct < confident_wrong

    def test_generator_nonsaturating_gradient_sign(self):
        # For the non-saturating loss the generator wants D's logits on fake
        # data to increase, so the gradient w.r.t. the logits is negative.
        loss = GANLoss(non_saturating=True)
        _, grad = loss.generator_loss(np.zeros((4, 1)))
        assert np.all(grad < 0)

    def test_generator_saturating_matches_paper_objective(self):
        # Saturating form: J_gen = mean log(1 - D(G(z))); at logit 0 this is log(1/2).
        loss = GANLoss(non_saturating=False)
        value, grad = loss.generator_loss(np.zeros((4, 1)))
        assert value == pytest.approx(-np.log(2.0))
        assert np.all(grad < 0)

    def test_label_smoothing_changes_real_target(self):
        smooth = GANLoss(label_smoothing=0.9)
        hard = GANLoss(label_smoothing=1.0)
        loss_smooth, _, _ = smooth.discriminator_loss(
            np.full((4, 1), 10.0), np.full((4, 1), -10.0)
        )
        loss_hard, _, _ = hard.discriminator_loss(
            np.full((4, 1), 10.0), np.full((4, 1), -10.0)
        )
        assert loss_smooth > loss_hard


class TestACGANLoss:
    def test_output_split_shapes(self):
        loss = ACGANLoss(num_classes=10)
        adv, cls = loss.split(np.zeros((4, 11)))
        assert adv.shape == (4, 1) and cls.shape == (4, 10)

    def test_split_validates_width(self):
        loss = ACGANLoss(num_classes=10)
        with pytest.raises(ValueError):
            loss.split(np.zeros((4, 10)))

    def test_discriminator_loss_includes_classification(self, rng):
        loss = ACGANLoss(num_classes=3, aux_weight=1.0)
        real = rng.normal(size=(6, 4))
        fake = rng.normal(size=(6, 4))
        labels = rng.integers(0, 3, size=6)
        total, grad_real, grad_fake = loss.discriminator_loss(real, labels, fake, labels)
        assert grad_real.shape == real.shape
        assert grad_fake.shape == fake.shape
        # With aux_weight = 0 the classification part vanishes.
        adv_only = ACGANLoss(num_classes=3, aux_weight=0.0)
        total_adv, _, _ = adv_only.discriminator_loss(real, labels, fake, labels)
        assert total > total_adv

    def test_generator_loss_gradient_shape(self, rng):
        loss = ACGANLoss(num_classes=5)
        outputs = rng.normal(size=(7, 6))
        labels = rng.integers(0, 5, size=7)
        value, grad = loss.generator_loss(outputs, labels)
        assert np.isfinite(value)
        assert grad.shape == outputs.shape

"""Unit tests for parameter initializers."""

import numpy as np
import pytest

from repro.nn import initializers as init


def test_compute_fans_dense():
    assert init.compute_fans((20, 30)) == (20, 30)


def test_compute_fans_conv():
    # (c_out, c_in, kh, kw): receptive field multiplies both fans.
    assert init.compute_fans((16, 8, 3, 3)) == (8 * 9, 16 * 9)


def test_compute_fans_bias_and_scalar():
    assert init.compute_fans((7,)) == (7, 7)
    assert init.compute_fans(()) == (1, 1)


def test_zeros_and_ones(rng):
    z = init.zeros((3, 4), rng)
    o = init.ones((5,), rng)
    assert np.all(z == 0) and z.shape == (3, 4)
    assert np.all(o == 1) and o.shape == (5,)


def test_constant(rng):
    c = init.constant(2.5)((2, 2), rng)
    assert np.all(c == 2.5)


def test_normal_statistics(rng):
    values = init.normal(stddev=0.02)((200, 200), rng)
    assert abs(values.mean()) < 0.005
    assert abs(values.std() - 0.02) < 0.005


def test_uniform_bounds(rng):
    values = init.uniform(limit=0.1)((1000,), rng)
    assert values.min() >= -0.1 and values.max() <= 0.1


def test_glorot_uniform_bounds(rng):
    shape = (100, 50)
    limit = np.sqrt(6.0 / (100 + 50))
    values = init.glorot_uniform(shape, rng)
    assert values.min() >= -limit and values.max() <= limit


def test_glorot_normal_std(rng):
    shape = (300, 300)
    values = init.glorot_normal(shape, rng)
    expected = np.sqrt(2.0 / 600)
    assert abs(values.std() - expected) / expected < 0.1


def test_he_initializers_scale_with_fan_in(rng):
    small = init.he_normal((10, 10), rng).std()
    large = init.he_normal((1000, 10), rng).std()
    assert small > large


def test_get_initializer_by_name_and_callable():
    fn = init.get_initializer("glorot_uniform")
    assert fn is init.glorot_uniform
    custom = init.constant(1.0)
    assert init.get_initializer(custom) is custom


def test_get_initializer_unknown_raises():
    with pytest.raises(ValueError, match="Unknown initializer"):
        init.get_initializer("does-not-exist")


def test_initializers_are_deterministic_per_seed():
    a = init.glorot_uniform((4, 4), np.random.default_rng(0))
    b = init.glorot_uniform((4, 4), np.random.default_rng(0))
    np.testing.assert_array_equal(a, b)

"""Property-based tests (hypothesis) for the neural-network substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import (
    Dense,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    average_parameters,
    bce_with_logits,
    sigmoid,
    softmax_cross_entropy,
)

finite_floats = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


def arrays(shape_strategy, elements=finite_floats):
    return shape_strategy.flatmap(
        lambda shape: st.lists(
            elements, min_size=int(np.prod(shape)), max_size=int(np.prod(shape))
        ).map(lambda vals: np.array(vals, dtype=np.float64).reshape(shape))
    )


batch_matrix = arrays(st.tuples(st.integers(1, 6), st.integers(1, 8)))


@settings(max_examples=30, deadline=None)
@given(batch_matrix)
def test_sigmoid_bounded_and_monotone(x):
    out = sigmoid(x)
    assert np.all((out >= 0) & (out <= 1))
    # Monotonicity along any coordinate.
    shifted = sigmoid(x + 1.0)
    assert np.all(shifted >= out - 1e-12)


@settings(max_examples=30, deadline=None)
@given(batch_matrix)
def test_bce_non_negative_and_finite(logits):
    targets = (logits > 0).astype(float)
    loss, grad = bce_with_logits(logits, targets)
    assert loss >= 0.0
    assert np.isfinite(loss)
    assert np.isfinite(grad).all()


@settings(max_examples=30, deadline=None)
@given(
    arrays(st.tuples(st.integers(2, 6), st.integers(2, 6))),
    st.integers(0, 5),
)
def test_softmax_ce_invariant_to_logit_shift(logits, shift_seed):
    labels = np.arange(logits.shape[0]) % logits.shape[1]
    base, _ = softmax_cross_entropy(logits, labels)
    shifted, _ = softmax_cross_entropy(logits + float(shift_seed), labels)
    assert abs(base - shifted) < 1e-8


@settings(max_examples=25, deadline=None)
@given(batch_matrix, st.sampled_from([ReLU, LeakyReLU, Tanh, Sigmoid, Softmax]))
def test_activation_output_and_gradient_shapes(x, activation_cls):
    layer = activation_cls()
    layer.build((x.shape[1],), np.random.default_rng(0))
    out = layer.forward(x)
    assert out.shape == x.shape
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape
    assert np.isfinite(grad).all()


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 6),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(0, 2**31 - 1),
)
def test_dense_linearity(batch, in_dim, out_dim, seed):
    """Dense layers are linear: f(a + b) == f(a) + f(b) - f(0)."""
    rng = np.random.default_rng(seed)
    layer = Dense(out_dim)
    layer.build((in_dim,), rng)
    a = rng.normal(size=(batch, in_dim))
    b = rng.normal(size=(batch, in_dim))
    zero = np.zeros((batch, in_dim))
    lhs = layer.forward(a + b)
    rhs = layer.forward(a) + layer.forward(b) - layer.forward(zero)
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 5))
def test_parameter_roundtrip_preserves_outputs(seed, batch):
    """set_parameters(get_parameters()) leaves the model function unchanged."""
    rng = np.random.default_rng(seed)
    model = Sequential(
        [Dense(7), Tanh(), Dense(3)], input_shape=(4,), rng=rng, name="prop"
    )
    x = rng.normal(size=(batch, 4))
    before = model.forward(x)
    model.set_parameters(model.get_parameters())
    after = model.forward(x)
    np.testing.assert_array_equal(before, after)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.lists(finite_floats, min_size=6, max_size=6),
        min_size=1,
        max_size=5,
    )
)
def test_average_parameters_within_bounds(vectors):
    """The average of parameter vectors is bounded by the elementwise min/max."""
    arrays_ = [np.array(v) for v in vectors]
    avg = average_parameters(arrays_)
    stacked = np.stack(arrays_)
    assert np.all(avg >= stacked.min(axis=0) - 1e-12)
    assert np.all(avg <= stacked.max(axis=0) + 1e-12)

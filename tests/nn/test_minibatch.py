"""Unit tests for the minibatch-discrimination layer."""

import numpy as np
import pytest

from repro.nn import MinibatchDiscrimination, precision_scope


def build_layer(rng, features=6, num_kernels=4, kernel_dim=3):
    layer = MinibatchDiscrimination(num_kernels=num_kernels, kernel_dim=kernel_dim)
    layer.build((features,), rng)
    return layer


def test_output_shape_appends_kernels(rng):
    layer = build_layer(rng)
    x = rng.normal(size=(5, 6))
    out = layer.forward(x)
    assert out.shape == (5, 6 + 4)
    # The original features pass through unchanged.
    np.testing.assert_array_equal(out[:, :6], x)


def test_identical_samples_maximise_similarity(rng):
    layer = build_layer(rng)
    identical = np.tile(rng.normal(size=(1, 6)), (4, 1))
    diverse = rng.normal(size=(4, 6)) * 5.0
    out_identical = layer.forward(identical)[:, 6:]
    out_diverse = layer.forward(diverse)[:, 6:]
    # For identical samples the L1 distances are 0, so each similarity term is
    # exp(0) summed over the other batch members: exactly batch_size - 1.
    np.testing.assert_allclose(out_identical, 3.0, atol=1e-10)
    assert out_diverse.mean() < out_identical.mean()


def test_single_sample_batch_has_zero_statistic(rng):
    layer = build_layer(rng)
    out = layer.forward(rng.normal(size=(1, 6)))
    np.testing.assert_allclose(out[:, 6:], 0.0, atol=1e-12)


def test_backward_shapes(rng):
    layer = build_layer(rng)
    x = rng.normal(size=(5, 6))
    out = layer.forward(x)
    layer.zero_grad()
    grad_in = layer.backward(np.ones_like(out))
    assert grad_in.shape == x.shape
    assert layer.grads["T"].shape == layer.params["T"].shape


def test_gradients_match_numeric(rng):
    # Finite differences need the float64 opt-in of the precision policy.
    with precision_scope("float64"):
        layer = build_layer(rng, features=4, num_kernels=2, kernel_dim=2)
    x = rng.normal(size=(3, 4))
    target = rng.normal(size=(3, 6))

    def loss_value():
        return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

    out = layer.forward(x)
    layer.zero_grad()
    grad_in = layer.backward(out - target)

    # Parameter gradient check on a few coordinates.
    eps = 1e-6
    t = layer.params["T"]
    for idx in [(0, 0), (1, 2), (3, 3)]:
        old = t[idx]
        t[idx] = old + eps
        up = loss_value()
        t[idx] = old - eps
        down = loss_value()
        t[idx] = old
        numeric = (up - down) / (2 * eps)
        assert layer.grads["T"][idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    # Input gradient check.
    for idx in [(0, 1), (2, 3)]:
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        numeric = (
            0.5 * np.sum((layer.forward(xp) - target) ** 2)
            - 0.5 * np.sum((layer.forward(xm) - target) ** 2)
        ) / (2 * eps)
        assert grad_in[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


def test_rejects_image_inputs(rng):
    layer = MinibatchDiscrimination(4, 3)
    with pytest.raises(ValueError, match="flat inputs"):
        layer.build((3, 8, 8), rng)


def test_rejects_invalid_sizes():
    with pytest.raises(ValueError):
        MinibatchDiscrimination(0, 3)

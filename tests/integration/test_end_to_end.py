"""End-to-end integration tests on the ring dataset.

These tests train for a few hundred iterations (seconds on CPU) and assert
the *qualitative* properties the paper relies on: GAN training improves the
generated distribution, MD-GAN matches the single-machine mathematics, and
the system survives crashes.
"""

import numpy as np
import pytest

from repro.core import (
    FLGANTrainer,
    MDGANTrainer,
    StandaloneGANTrainer,
    TrainingConfig,
)
from repro.simulation import CrashSchedule, worker_name


@pytest.fixture(scope="module")
def training_config():
    return TrainingConfig(
        iterations=250,
        batch_size=16,
        disc_steps=1,
        epochs_per_swap=1.0,
        eval_every=250,
        eval_sample_size=120,
        seed=17,
    )


def initial_fid(evaluator, trainer):
    """FID of the untrained generator."""
    return evaluator.evaluate(trainer.sample_images, iteration=0).fid


@pytest.mark.slow
class TestLearningImprovesGeneration:
    def test_standalone_improves_fid(self, ring_dataset, toy_factory, ring_evaluator, training_config):
        train, _ = ring_dataset
        trainer = StandaloneGANTrainer(
            toy_factory, train, training_config, evaluator=ring_evaluator
        )
        before = initial_fid(ring_evaluator, trainer)
        history = trainer.train()
        assert history.final_evaluation.fid < before

    def test_mdgan_improves_fid(self, ring_dataset, ring_shards, toy_factory, ring_evaluator, training_config):
        trainer = MDGANTrainer(
            toy_factory, ring_shards, training_config, evaluator=ring_evaluator
        )
        before = initial_fid(ring_evaluator, trainer)
        history = trainer.train()
        assert history.final_evaluation.fid < before

    def test_flgan_improves_fid(self, ring_dataset, ring_shards, toy_factory, ring_evaluator, training_config):
        trainer = FLGANTrainer(
            toy_factory, ring_shards, training_config, evaluator=ring_evaluator
        )
        before = initial_fid(ring_evaluator, trainer)
        history = trainer.train()
        assert history.final_evaluation.fid < before


@pytest.mark.slow
class TestMDGANSystemProperties:
    def test_single_worker_mdgan_tracks_standalone_closely(
        self, ring_dataset, toy_factory, ring_evaluator
    ):
        """With N=1, k=1 and no swaps, MD-GAN is algorithmically a standalone GAN.

        The runs are not bit-identical (different RNG consumption order), but
        both must land in a similar FID range after the same number of
        iterations.
        """
        train, _ = ring_dataset
        config = TrainingConfig(
            iterations=200, batch_size=16, eval_every=200, eval_sample_size=120, seed=3
        )
        standalone = StandaloneGANTrainer(
            toy_factory, train, config, evaluator=ring_evaluator
        )
        h_standalone = standalone.train()
        mdgan = MDGANTrainer(
            toy_factory, [train], config.with_overrides(num_batches=1),
            evaluator=ring_evaluator,
        )
        h_mdgan = mdgan.train()
        fid_a = h_standalone.final_evaluation.fid
        fid_b = h_mdgan.final_evaluation.fid
        assert fid_b < 3.0 * fid_a + 10.0

    def test_crash_run_completes_and_degrades_gracefully(
        self, ring_dataset, ring_shards, toy_factory, ring_evaluator
    ):
        config = TrainingConfig(
            iterations=200, batch_size=16, eval_every=100, eval_sample_size=120, seed=9
        )
        schedule = CrashSchedule.uniform(
            [worker_name(i) for i in range(len(ring_shards))], 200
        )
        trainer = MDGANTrainer(
            toy_factory,
            ring_shards,
            config,
            evaluator=ring_evaluator,
            crash_schedule=schedule,
        )
        before = initial_fid(ring_evaluator, trainer)
        history = trainer.train()
        # All workers eventually crash; training must have kept going until
        # the last one disappeared and still improved over the untrained state.
        assert len(history.events_of_kind("crash")) == len(ring_shards)
        assert history.final_evaluation.fid < before

    def test_swap_changes_discriminator_assignment_but_not_count(
        self, ring_shards, toy_factory
    ):
        config = TrainingConfig(iterations=60, batch_size=32, epochs_per_swap=1.0, seed=5)
        trainer = MDGANTrainer(toy_factory, ring_shards, config)
        initial_params = [w.discriminator.get_parameters() for w in trainer.workers]
        trainer.train()
        assert len(trainer.workers) == len(ring_shards)
        assert len(trainer.history.events_of_kind("swap")) >= 1
        # At least one worker ended up with a different discriminator history
        # than it started with (parameters evolved and moved around).
        final_params = [w.discriminator.get_parameters() for w in trainer.workers]
        assert any(
            not np.array_equal(a, b) for a, b in zip(initial_params, final_params)
        )


@pytest.mark.slow
class TestTrafficConsistency:
    def test_mdgan_traffic_scales_linearly_with_iterations(
        self, ring_shards, toy_factory
    ):
        def run(iterations):
            config = TrainingConfig(iterations=iterations, batch_size=8, seed=2)
            trainer = MDGANTrainer(toy_factory, ring_shards, config)
            trainer.train()
            return trainer.cluster.meter.total_bytes()

        short, long = run(10), run(20)
        assert long == pytest.approx(2 * short, rel=0.2)

    def test_flgan_traffic_independent_of_batch_size(self, ring_shards, toy_factory):
        def run(batch_size):
            # Keep the number of rounds identical: iterations = 2 rounds.
            m = min(len(s) for s in ring_shards)
            iterations = 2 * max(1, int(round(m / batch_size)))
            config = TrainingConfig(iterations=iterations, batch_size=batch_size, seed=2)
            trainer = FLGANTrainer(toy_factory, ring_shards, config)
            trainer.train()
            return trainer.cluster.meter.total_bytes()

        assert run(8) == run(16)

"""Bounded-staleness asynchronous aggregation tests.

Three layers of contract:

* the :class:`BoundedStalenessScheduler` unit semantics — gate, blocking
  dispatch, whole-buffer flushes, the staleness accounting;
* ``TrainingConfig(aggregation="async")`` validation;
* end-to-end async runs of both trainers on every backend, pinning the
  headline invariant — no applied contribution is ever older than
  ``max_staleness`` global updates (checked against the per-worker record in
  :attr:`TrainingHistory.worker_staleness`) — plus the serial degenerate
  cases: deterministic round-robin, and FL-GAN's all-fresh flush reproducing
  the synchronous FedAvg bitwise.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import FLGANTrainer, MDGANTrainer, TrainingConfig
from repro.core.async_aggregation import BoundedStalenessScheduler, staleness_weights
from repro.core.extensions import AsyncMDGANTrainer
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.simulation import CrashSchedule, worker_name

BACKENDS = ("serial", "thread", "process", "resident")


@pytest.fixture(scope="module")
def small_shards_and_factory():
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    return shards, factory


def _config(**overrides) -> TrainingConfig:
    base = dict(
        iterations=6,
        batch_size=8,
        seed=11,
        aggregation="async",
        max_staleness=2,
        max_workers=2,
    )
    base.update(overrides)
    return TrainingConfig(**base)


# -- scheduler unit semantics ------------------------------------------------------


class TestScheduler:
    def test_dispatch_completion_flush_cycle(self):
        sched = BoundedStalenessScheduler(max_staleness=2)
        sched.note_dispatch(0)
        sched.note_dispatch(1)
        assert sched.in_flight == 2
        contribution = sched.note_completion(0, "payload-0")
        assert contribution.dispatched_at == 0
        assert sched.buffered == 1
        assert sched.tracked_keys() == {0, 1}  # buffered 0 still not idle
        taken = sched.take_buffered()
        assert [c.key for c in taken] == [0]
        assert sched.staleness_of(taken[0]) == 0
        sched.note_applied()
        assert sched.updates == 1
        assert sched.tracked_keys() == {1}

    def test_duplicate_dispatch_rejected(self):
        sched = BoundedStalenessScheduler(max_staleness=1)
        sched.note_dispatch(0)
        with pytest.raises(RuntimeError, match="already in flight"):
            sched.note_dispatch(0)

    def test_gate_blocks_when_bound_would_be_crossed(self):
        # max_staleness=0: any in-flight worker closes the gate (one more
        # update would make its eventual contribution age 1 > 0).
        sched = BoundedStalenessScheduler(max_staleness=0)
        assert sched.gate_open  # vacuously: nothing in flight
        sched.note_dispatch(0)
        assert not sched.gate_open
        sched.note_completion(0, None)
        assert sched.gate_open

    def test_gate_opens_within_bound(self):
        sched = BoundedStalenessScheduler(max_staleness=2)
        sched.note_dispatch(0)
        # Simulate two updates carried by other workers.
        for _ in range(2):
            sched.note_dispatch(9)
            sched.note_completion(9, None)
            assert sched.gate_open
            sched.take_buffered()
            sched.note_applied()
        # Worker 0's mark is now 2 updates old: a third would cross the bound.
        assert not sched.gate_open
        sched.note_completion(0, None)
        assert sched.gate_open
        assert sched.staleness_of(sched.take_buffered()[0]) == 2

    def test_note_applied_raises_on_violation(self):
        # Applying without consulting the gate is a programming error the
        # scheduler turns into a loud failure instead of silent staleness.
        sched = BoundedStalenessScheduler(max_staleness=0)
        sched.note_dispatch(0)
        with pytest.raises(RuntimeError, match="staleness bound 0 violated"):
            sched.note_applied()

    def test_backdated_dispatch_mark_ages_against_gate(self):
        # The lookahead store dispatches units generated *before* the
        # current update count; their backdated mark must age against the
        # gate exactly like a fresh dispatch at that earlier point.
        sched = BoundedStalenessScheduler(max_staleness=1)
        sched.note_dispatch(0, mark=0)
        sched.note_dispatch(9)
        sched.note_completion(9, None)
        sched.take_buffered()
        sched.note_applied()
        # Worker 0's backdated unit is now 1 update old: one more update
        # would cross the bound, so the gate closes until it completes.
        assert not sched.gate_open
        sched.note_completion(0, None)
        assert sched.gate_open
        assert sched.staleness_of(sched.take_buffered()[0]) == 1

    def test_dispatch_mark_outside_update_range_rejected(self):
        sched = BoundedStalenessScheduler(max_staleness=1)
        with pytest.raises(ValueError, match="dispatch mark"):
            sched.note_dispatch(0, mark=1)  # from the future
        with pytest.raises(ValueError, match="dispatch mark"):
            sched.note_dispatch(0, mark=-1)
        sched.note_dispatch(0, mark=0)  # mark == updates is a fresh dispatch
        assert sched.in_flight == 1

    def test_discard_removes_in_flight_mark(self):
        sched = BoundedStalenessScheduler(max_staleness=0)
        sched.note_dispatch(0)
        sched.discard(0)
        assert sched.gate_open
        assert sched.tracked_keys() == set()
        sched.discard(0)  # idempotent

    def test_staleness_weights_fresh_is_uniform(self):
        assert staleness_weights([0, 0, 0]) == pytest.approx([1 / 3] * 3)

    def test_staleness_weights_decay_and_normalise(self):
        weights = staleness_weights([0, 1, 3])
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[1] > weights[2]
        assert weights[0] / weights[1] == pytest.approx(2.0)  # 1 vs 1/2


# -- config validation -------------------------------------------------------------


class TestAsyncConfigValidation:
    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError, match="aggregation"):
            TrainingConfig(aggregation="eventual")

    def test_negative_max_staleness_rejected(self):
        with pytest.raises(ValueError, match="max_staleness"):
            TrainingConfig(max_staleness=-1)

    def test_async_composes_with_pipelining(self):
        # Once mutually exclusive; the execution engine's lookahead store
        # (backdated dispatch marks) made the combination legal.
        config = TrainingConfig(aggregation="async", pipeline_depth=2)
        assert config.pipeline_depth == 2

    def test_async_allows_partial_participation(self):
        # Once required full participation; the engine discards deselected
        # in-flight units through the scheduler instead.
        config = TrainingConfig(aggregation="async", participation_fraction=0.5)
        assert config.participation_fraction == 0.5

    def test_async_excludes_per_feedback_updates(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        with pytest.raises(ValueError, match="per-feedback"):
            AsyncMDGANTrainer(factory, shards, _config())

    def test_sync_default_unchanged(self):
        config = TrainingConfig()
        assert config.aggregation == "sync"
        assert config.max_staleness == 2


# -- MD-GAN end-to-end -------------------------------------------------------------


class TestMDGANAsync:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bound_holds_on_every_backend(self, backend, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        config = _config(backend=backend, max_staleness=1)
        with MDGANTrainer(factory, shards, config) as trainer:
            history = trainer.train()
        # Exactly the synchronous number of generator updates, each recorded
        # with its flush's max contribution staleness.
        assert len(history.iterations) == config.iterations
        assert len(history.staleness) == config.iterations
        assert history.max_worker_staleness() <= config.max_staleness
        assert history.worker_staleness  # async runs record per-worker ages
        assert history.config["aggregation"] == "async"
        assert history.overlap["p95_staleness"] <= config.max_staleness
        assert history.overlap["iterations"] == float(config.iterations)

    def test_serial_async_is_deterministic(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        runs = []
        for _ in range(2):
            with MDGANTrainer(factory, shards, _config()) as trainer:
                history = trainer.train()
            runs.append(
                (
                    history.generator_loss,
                    history.discriminator_loss,
                    trainer.generator.get_parameters().tobytes(),
                )
            )
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]
        assert runs[0][2] == runs[1][2]

    def test_swaps_still_fire_under_async(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        # swap_period = round(m * E / b) = round(40 * 0.5 / 8) = 3 updates.
        config = _config(epochs_per_swap=0.5)
        with MDGANTrainer(factory, shards, config) as trainer:
            history = trainer.train()
        assert history.events_of_kind("swap")

    def test_crashed_workers_are_discarded(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        schedule = CrashSchedule(
            {2: [worker_name(0)], 4: [worker_name(1), worker_name(2), worker_name(3)]}
        )
        config = _config(backend="thread", iterations=8)
        with MDGANTrainer(
            factory, shards, config, crash_schedule=schedule
        ) as trainer:
            history = trainer.train()
        assert len(history.events_of_kind("crash")) == 4
        assert history.events_of_kind("all_workers_crashed")
        assert history.max_worker_staleness() <= config.max_staleness
        # Updates recorded before the fleet died, none after.
        assert history.iterations
        assert len(history.iterations) < 8

    def test_straggler_contributions_stay_bounded(self, small_shards_and_factory):
        # A 10x-slowed worker must not stall the fleet (other workers keep
        # flushing) yet its contributions still obey the bound — the seam
        # used here is the one the straggler benchmark injects through.
        shards, factory = small_shards_and_factory
        from repro.runtime.tasks import run_mdgan_worker_task

        class StragglerTrainer(MDGANTrainer):
            def _async_worker_fn(self, worker):
                if worker.index == 0:
                    def slow(task):
                        time.sleep(0.05)
                        return run_mdgan_worker_task(task)

                    return slow
                return run_mdgan_worker_task

        config = _config(backend="thread", max_workers=4, max_staleness=3)
        with StragglerTrainer(factory, shards, config) as trainer:
            history = trainer.train()
        assert len(history.iterations) == config.iterations
        assert history.max_worker_staleness() <= 3


# -- FL-GAN end-to-end -------------------------------------------------------------


class TestFLGANAsync:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bound_holds_on_every_backend(self, backend, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        # round_length = E * m / b = 0.5 * 40 / 8 = 2.5 -> 2 iterations.
        config = _config(backend=backend, max_staleness=1, epochs_per_swap=0.5)
        with FLGANTrainer(factory, shards, config) as trainer:
            history = trainer.train()
        rounds = history.events_of_kind("federated_round")
        assert rounds  # merges happened
        assert len(history.iterations) == len(rounds)
        assert history.max_worker_staleness() <= config.max_staleness
        assert history.config["aggregation"] == "async"
        assert history.traffic["rounds"] == float(len(rounds))

    def test_fresh_serial_flush_matches_sync_fedavg(self, small_shards_and_factory):
        # max_staleness=0 on the serial backend degenerates to a
        # completion-order barrier with uniform-decay weights: the final
        # server model must equal the synchronous FedAvg run bitwise.
        shards, factory = small_shards_and_factory

        def final_params(aggregation):
            config = _config(
                backend="serial",
                aggregation=aggregation,
                max_staleness=0,
                epochs_per_swap=0.5,
            )
            with FLGANTrainer(factory, shards, config) as trainer:
                trainer.train()
                return (
                    trainer.server_generator.get_parameters(),
                    trainer.server_discriminator.get_parameters(),
                )

        sync_gen, sync_disc = final_params("sync")
        async_gen, async_disc = final_params("async")
        np.testing.assert_array_equal(sync_gen, async_gen)
        np.testing.assert_array_equal(sync_disc, async_disc)

    def test_partial_final_round_is_not_merged(self, small_shards_and_factory):
        shards, factory = small_shards_and_factory
        # round_length 2 with 5 iterations: the trailing odd iteration forms
        # a partial round that must be discarded, exactly like sync.
        config = _config(iterations=5, epochs_per_swap=0.5)
        with FLGANTrainer(factory, shards, config) as trainer:
            history = trainer.train()
        per_worker_merges = {
            worker: len(series) for worker, series in history.worker_staleness.items()
        }
        assert all(count == 2 for count in per_worker_merges.values())

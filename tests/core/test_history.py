"""Unit tests for the training history container."""

import numpy as np
import pytest

from repro.core import TrainingHistory
from repro.metrics import EvaluationResult


def make_history():
    history = TrainingHistory(algorithm="md-gan", config={"batch_size": 10})
    for i in range(1, 6):
        history.record_losses(i, gen_loss=1.0 / i, disc_loss=2.0 / i)
    history.record_evaluation(EvaluationResult(2, score=1.5, score_std=0.1, fid=30.0, modes_covered=3))
    history.record_evaluation(EvaluationResult(4, score=2.5, score_std=0.1, fid=20.0, modes_covered=5))
    history.record_event(3, "swap", exchanged=4)
    history.record_event(4, "crash", worker="worker-1")
    return history


def test_loss_series_lengths():
    history = make_history()
    assert len(history.iterations) == 5
    assert history.generator_loss[0] == 1.0
    assert history.discriminator_loss[-1] == 2.0 / 5


def test_score_series_and_final_evaluation():
    history = make_history()
    series = history.score_series
    assert series["iteration"] == [2, 4]
    assert series["fid"] == [30.0, 20.0]
    assert history.final_evaluation.iteration == 4


def test_best_score_and_fid():
    history = make_history()
    assert history.best_score() == 2.5
    assert history.best_fid() == 20.0


def test_best_scores_empty_history():
    history = TrainingHistory(algorithm="x")
    assert np.isnan(history.best_score())
    assert np.isnan(history.best_fid())
    assert history.final_evaluation is None


def test_mean_generator_loss_window():
    history = make_history()
    assert history.mean_generator_loss(last=1) == 1.0 / 5
    assert history.mean_generator_loss() > history.mean_generator_loss(last=1)


def test_events_of_kind():
    history = make_history()
    assert len(history.events_of_kind("swap")) == 1
    assert history.events_of_kind("crash")[0]["worker"] == "worker-1"


def test_as_dict_is_json_like():
    import json

    history = make_history()
    history.traffic = {"total_bytes": 100.0}
    payload = history.as_dict()
    text = json.dumps(payload)
    assert "md-gan" in text
    assert payload["evaluations"][0]["fid"] == 30.0


def test_as_dict_schema_is_stable():
    # Downstream report writers (and cross-PR benchmark JSON diffs) key on
    # these names; growing the schema is fine, renaming/removing is not.
    payload = make_history().as_dict()
    assert set(payload) == {
        "algorithm",
        "config",
        "iterations",
        "generator_loss",
        "discriminator_loss",
        "evaluations",
        "events",
        "traffic",
        "compute",
        "staleness",
        "worker_staleness",
        "overlap",
        "membership",
    }
    # Synchronous runs serialise the pipeline fields as empty, not absent.
    assert payload["staleness"] == []
    assert payload["worker_staleness"] == {}
    assert payload["overlap"] == {}
    # Fail-stop runs serialise the membership counters as empty, not absent.
    assert payload["membership"] == {}


def test_record_staleness_tracks_iterations():
    history = TrainingHistory(algorithm="md-gan")
    history.record_losses(1, 0.5, 0.6)
    history.record_staleness(1, 0)
    history.record_losses(2, 0.4, 0.5)
    history.record_staleness(2, 1)
    assert history.staleness == [0, 1]
    assert history.mean_staleness() == 0.5


def test_record_staleness_without_losses_raises():
    history = TrainingHistory(algorithm="md-gan")
    with pytest.raises(ValueError, match="must follow record_losses"):
        history.record_staleness(1, 0)
    history.record_losses(1, 0.5, 0.6)
    history.record_staleness(1, 2)
    with pytest.raises(ValueError, match="must follow record_losses"):
        history.record_staleness(1, 2)


def test_mean_staleness_empty_is_zero():
    assert TrainingHistory(algorithm="x").mean_staleness() == 0.0


def test_json_round_trip_preserves_pipeline_fields():
    import json

    history = make_history()
    history.staleness = [0, 1, 1, 2, 2]
    history.record_worker_staleness(0, 0)
    history.record_worker_staleness(0, 2)
    history.record_worker_staleness(3, 1)
    history.overlap = {
        "pipeline_depth": 2.0,
        "mean_staleness": 1.2,
        "p95_staleness": 2.0,
        "iterations": 5.0,
    }
    history.traffic = {"total_bytes": 100.0}
    history.compute = {"server_flops": 5.0}

    restored = TrainingHistory.from_dict(json.loads(json.dumps(history.as_dict())))
    assert restored.algorithm == history.algorithm
    assert restored.iterations == history.iterations
    assert restored.generator_loss == history.generator_loss
    assert restored.discriminator_loss == history.discriminator_loss
    assert restored.staleness == history.staleness
    # JSON stringifies dict keys; from_dict restores the int worker indices.
    assert restored.worker_staleness == {0: [0, 2], 3: [1]}
    assert restored.max_worker_staleness() == 2
    assert restored.overlap == history.overlap
    assert restored.traffic == history.traffic
    assert restored.compute == history.compute
    assert restored.events == history.events
    assert [e.as_dict() for e in restored.evaluations] == [
        e.as_dict() for e in history.evaluations
    ]
    # Round-tripping again is a fixed point.
    assert restored.as_dict() == history.as_dict()


def test_from_dict_accepts_legacy_payloads():
    # Histories serialised before the pipeline fields existed load cleanly.
    payload = make_history().as_dict()
    del payload["staleness"]
    del payload["worker_staleness"]
    del payload["overlap"]
    restored = TrainingHistory.from_dict(payload)
    assert restored.staleness == []
    assert restored.worker_staleness == {}
    assert restored.overlap == {}


def test_worker_staleness_recording_and_max():
    history = TrainingHistory(algorithm="md-gan")
    assert history.max_worker_staleness() == 0
    history.record_worker_staleness(1, 0)
    history.record_worker_staleness(1, 3)
    history.record_worker_staleness(2, 1)
    assert history.worker_staleness == {1: [0, 3], 2: [1]}
    assert history.max_worker_staleness() == 3

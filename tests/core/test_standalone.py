"""Tests for the standalone (single-server) GAN trainer."""

import numpy as np

from repro.core import StandaloneGANTrainer, TrainingConfig


def test_history_records_every_iteration(ring_dataset, toy_factory, tiny_config):
    train, _ = ring_dataset
    trainer = StandaloneGANTrainer(toy_factory, train, tiny_config)
    history = trainer.train()
    assert history.algorithm == "standalone"
    assert history.iterations == list(range(1, tiny_config.iterations + 1))
    assert all(np.isfinite(history.generator_loss))
    assert all(np.isfinite(history.discriminator_loss))


def test_parameters_change_during_training(ring_dataset, toy_factory, tiny_config):
    train, _ = ring_dataset
    trainer = StandaloneGANTrainer(toy_factory, train, tiny_config)
    g_before = trainer.generator.get_parameters()
    d_before = trainer.discriminator.get_parameters()
    trainer.train()
    assert not np.array_equal(g_before, trainer.generator.get_parameters())
    assert not np.array_equal(d_before, trainer.discriminator.get_parameters())


def test_sample_images_shape_and_range(ring_dataset, toy_factory, tiny_config, rng):
    train, _ = ring_dataset
    trainer = StandaloneGANTrainer(toy_factory, train, tiny_config)
    images = trainer.sample_images(9, rng)
    assert images.shape == (9,) + toy_factory.image_shape
    assert images.min() >= -1.0 and images.max() <= 1.0


def test_evaluation_hook_called(ring_dataset, toy_factory, ring_evaluator):
    train, _ = ring_dataset
    config = TrainingConfig(iterations=10, batch_size=8, eval_every=5, seed=2)
    trainer = StandaloneGANTrainer(toy_factory, train, config, evaluator=ring_evaluator)
    history = trainer.train()
    assert [e.iteration for e in history.evaluations] == [5, 10]


def test_disc_steps_multiplies_discriminator_updates(ring_dataset, toy_factory):
    train, _ = ring_dataset
    config = TrainingConfig(iterations=4, batch_size=8, disc_steps=3, seed=2)
    trainer = StandaloneGANTrainer(toy_factory, train, config)
    history = trainer.train()
    # Each iteration draws disc_steps real batches of size b.
    assert trainer._sampler.samples_drawn == 4 * 3 * 8
    assert len(history.iterations) == 4


def test_deterministic_given_seed(ring_dataset, toy_factory):
    train, _ = ring_dataset
    config = TrainingConfig(iterations=6, batch_size=8, seed=123)
    a = StandaloneGANTrainer(toy_factory, train, config).train()
    b = StandaloneGANTrainer(toy_factory, train, config).train()
    np.testing.assert_allclose(a.generator_loss, b.generator_loss)
    np.testing.assert_allclose(a.discriminator_loss, b.discriminator_loss)

"""Tests for the MD-GAN trainer (Algorithm 1)."""

import math

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.nn.serialize import FLOAT_BYTES
from repro.simulation import CrashSchedule, MessageKind, SERVER_NAME, worker_name


def make_trainer(factory, shards, **overrides):
    defaults = dict(iterations=10, batch_size=8, epochs_per_swap=1.0, seed=21)
    defaults.update(overrides)
    config = TrainingConfig(**defaults)
    return MDGANTrainer(factory, shards, config)


class TestSetup:
    def test_requires_shards(self, toy_factory, tiny_config):
        with pytest.raises(ValueError):
            MDGANTrainer(toy_factory, [], tiny_config)

    def test_one_discriminator_per_worker_and_single_generator(
        self, ring_shards, toy_factory
    ):
        trainer = make_trainer(toy_factory, ring_shards)
        assert len(trainer.workers) == len(ring_shards)
        # Discriminators are independently initialised objects.
        ids = {id(w.discriminator) for w in trainer.workers}
        assert len(ids) == len(ring_shards)

    def test_k_defaults_to_floor_log_n(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, num_batches=None)
        assert trainer.num_batches == max(1, int(math.floor(math.log(len(ring_shards)))))

    def test_swap_period_is_m_e_over_b(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, batch_size=10, epochs_per_swap=2.0)
        m = min(len(s) for s in ring_shards)
        assert trainer.swap_period == round(m * 2.0 / 10)

    def test_swap_disabled_gives_zero_period(self, ring_shards, toy_factory):
        config = TrainingConfig(iterations=5, batch_size=8, epochs_per_swap=math.inf)
        trainer = MDGANTrainer(toy_factory, ring_shards, config)
        assert trainer.swap_period == 0

    def test_precision_opt_in_reaches_models_and_shards(self, ring_shards, toy_factory):
        # An explicit float64 config must govern the whole pipeline — the
        # worker shards included, not just model parameters.
        config = TrainingConfig(iterations=1, batch_size=8, precision="float64")
        trainer = MDGANTrainer(toy_factory, ring_shards, config)
        assert trainer.generator.dtype == np.float64
        assert all(w.discriminator.dtype == np.float64 for w in trainer.workers)
        assert all(w.dataset.images.dtype == np.float64 for w in trainer.workers)
        real_images, _ = trainer.workers[0].sampler.next_batch()
        assert real_images.dtype == np.float64
        # The shared fixture's shards stay float32 (astype copies).
        assert all(s.images.dtype == np.float32 for s in ring_shards)


class TestTrainingLoop:
    def test_history_and_losses(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, iterations=8)
        history = trainer.train()
        assert history.algorithm == "md-gan"
        assert len(history.iterations) == 8
        assert all(np.isfinite(history.generator_loss))
        assert history.config["num_workers"] == len(ring_shards)

    def test_generator_parameters_update_each_iteration(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, iterations=1)
        before = trainer.generator.get_parameters()
        trainer.train()
        assert not np.array_equal(before, trainer.generator.get_parameters())

    def test_deterministic_given_seed(self, ring_shards, toy_factory):
        a = make_trainer(toy_factory, ring_shards, iterations=5).train()
        b = make_trainer(toy_factory, ring_shards, iterations=5).train()
        np.testing.assert_allclose(a.generator_loss, b.generator_loss)

    def test_evaluation_hook(self, ring_shards, toy_factory, ring_evaluator):
        config = TrainingConfig(iterations=6, batch_size=8, eval_every=3, seed=2)
        trainer = MDGANTrainer(toy_factory, ring_shards, config, evaluator=ring_evaluator)
        history = trainer.train()
        assert [e.iteration for e in history.evaluations] == [3, 6]

    def test_sample_images(self, ring_shards, toy_factory, rng):
        trainer = make_trainer(toy_factory, ring_shards)
        images = trainer.sample_images(5, rng)
        assert images.shape == (5,) + toy_factory.image_shape


class TestCommunicationPattern:
    def test_each_worker_receives_two_batches_per_iteration(
        self, ring_shards, toy_factory
    ):
        trainer = make_trainer(toy_factory, ring_shards, iterations=3, batch_size=8)
        trainer.train()
        meter = trainer.cluster.meter
        d = toy_factory.object_size
        expected = 3 * len(ring_shards) * 2 * 8 * d * FLOAT_BYTES
        assert meter.total_bytes(MessageKind.GENERATED_BATCHES) == expected

    def test_feedback_bytes_match_bd_per_worker(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, iterations=3, batch_size=8)
        trainer.train()
        meter = trainer.cluster.meter
        d = toy_factory.object_size
        expected = 3 * len(ring_shards) * 8 * d * FLOAT_BYTES
        assert meter.total_bytes(MessageKind.ERROR_FEEDBACK) == expected
        assert meter.node_ingress(SERVER_NAME, MessageKind.ERROR_FEEDBACK) == expected

    def test_generated_batch_memory_charged_at_object_size(
        self, ring_shards, toy_factory
    ):
        # Section IV-B3 cost model: generating a batch costs O(b |w|) ops,
        # but *holding* k batches takes k*b*d floats (d = object size) — the
        # same convention _aggregate_feedback uses — not k*b*|w|.
        trainer = make_trainer(toy_factory, ring_shards, iterations=1, batch_size=8)
        k = 3
        trainer._generate_batches(k)
        ledger = trainer.cluster.server.compute
        assert ledger.peak_memory_floats == k * 8 * toy_factory.object_size
        # The regression is meaningful: the old |w|-based figure differs.
        assert toy_factory.object_size != trainer.generator.num_parameters

    def test_k_controls_distinct_batches(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, num_batches=1, iterations=1)
        batches = trainer._generate_batches(trainer.num_batches)
        assert len(batches) == 1
        trainer2 = make_trainer(toy_factory, ring_shards, num_batches=4, iterations=1)
        batches2 = trainer2._generate_batches(trainer2.num_batches)
        assert len(batches2) == 4

    def test_assignment_uses_round_robin(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, num_batches=2, iterations=1)
        batches = trainer._generate_batches(2)
        assignment = trainer._distribute_batches(1, batches, trainer.workers)
        for worker in trainer.workers:
            assert assignment[worker.index]["g"] == worker.index % 2
            assert assignment[worker.index]["d"] == (worker.index + 1) % 2

    def test_assignment_keyed_on_worker_index_not_enumeration_order(
        self, ring_shards, toy_factory
    ):
        # The paper's X_n^(g) = X^(n mod k) uses the worker index n, so a
        # worker keeps its batch assignment when peers crash or sit out an
        # iteration (partial participation must not reshuffle assignments).
        trainer = make_trainer(toy_factory, ring_shards, num_batches=2, iterations=1)
        batches = trainer._generate_batches(2)
        subset = [trainer.workers[1], trainer.workers[3]]
        assignment = trainer._distribute_batches(1, batches, subset)
        full = trainer._distribute_batches(2, batches, trainer.workers)
        assert set(assignment) == {1, 3}
        for index in (1, 3):
            assert assignment[index] == full[index]
            assert assignment[index]["g"] == index % 2
            assert assignment[index]["d"] == (index + 1) % 2


class TestFeedbackAggregation:
    def test_averaged_path_applies_one_generator_step(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, iterations=1)
        trainer.train_iteration(1)
        # All worker feedbacks are averaged into a single Adam step.
        assert trainer._gen_opt.iterations == 1

    def test_per_feedback_path_applies_one_step_per_feedback(
        self, ring_shards, toy_factory
    ):
        config = TrainingConfig(iterations=1, batch_size=8, seed=21)
        trainer = MDGANTrainer(
            toy_factory, ring_shards, config, per_feedback_updates=True
        )
        trainer.train_iteration(1)
        assert trainer._gen_opt.iterations == len(ring_shards)

    def test_averaged_gradient_is_mean_of_individual_feedback_gradients(
        self, ring_shards, toy_factory
    ):
        trainer = make_trainer(toy_factory, ring_shards, iterations=1)
        participants = trainer._participating_workers()
        k = min(trainer.num_batches, len(participants))
        batches = trainer._generate_batches(k)
        trainer._distribute_batches(1, batches, participants)
        # Run steps 2-3 through the backend protocol (build -> compute ->
        # merge), the same path train_iteration uses.
        from repro.runtime import run_mdgan_worker_task

        tasks = [trainer._build_worker_task(worker) for worker in participants]
        results = trainer.executor.map_ordered(
            run_mdgan_worker_task, [t for t in tasks if t is not None]
        )
        for worker, result in zip(participants, results):
            trainer._merge_worker_result(1, worker, result)
        messages = trainer.cluster.server.receive(MessageKind.ERROR_FEEDBACK)
        assert len(messages) == len(participants)

        individual = []
        for message in messages:
            batch = batches[message.metadata["batch_index"]]
            trainer.generator.zero_grad()
            from repro.core.gan_ops import apply_feedback_to_generator

            apply_feedback_to_generator(
                trainer.generator,
                trainer.factory,
                [batch],
                [message.payload],
                weights=[1.0],
            )
            individual.append(trainer.generator.get_gradients().astype(np.float64))

        trainer.generator.zero_grad()
        apply_feedback_to_generator(
            trainer.generator,
            trainer.factory,
            [batches[m.metadata["batch_index"]] for m in messages],
            [m.payload for m in messages],
        )
        averaged = trainer.generator.get_gradients().astype(np.float64)
        np.testing.assert_allclose(
            averaged, np.mean(individual, axis=0), rtol=5e-5, atol=1e-7
        )


class TestSwap:
    def test_swap_preserves_parameter_multiset(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, iterations=1)
        before = sorted(
            float(w.discriminator.get_parameters().sum()) for w in trainer.workers
        )
        trainer._swap_discriminators(iteration=1)
        after = sorted(
            float(w.discriminator.get_parameters().sum()) for w in trainer.workers
        )
        np.testing.assert_allclose(before, after)

    def test_swap_events_logged_at_expected_period(self, ring_shards, toy_factory):
        trainer = make_trainer(toy_factory, ring_shards, iterations=10, batch_size=50)
        # swap period = m / b; with shards of ~200 samples and b=50 -> every 4.
        history = trainer.train()
        period = trainer.swap_period
        expected_swaps = 10 // period
        swap_messages = trainer.cluster.meter.total_messages(
            MessageKind.DISCRIMINATOR_SWAP
        )
        # Each swap event exchanges at most N discriminators.
        assert swap_messages <= expected_swaps * len(ring_shards)
        assert len(history.events_of_kind("swap")) <= expected_swaps

    def test_no_swaps_when_disabled(self, ring_shards, toy_factory):
        config = TrainingConfig(iterations=10, batch_size=50, epochs_per_swap=1.0)
        trainer = MDGANTrainer(toy_factory, ring_shards, config, swap_enabled=False)
        trainer.train()
        assert trainer.cluster.meter.total_messages(MessageKind.DISCRIMINATOR_SWAP) == 0


class TestCrashes:
    def test_crashed_workers_stop_participating(self, ring_shards, toy_factory):
        schedule = CrashSchedule({2: [worker_name(0)], 4: [worker_name(1)]})
        config = TrainingConfig(iterations=6, batch_size=8, seed=3)
        trainer = MDGANTrainer(
            toy_factory, ring_shards, config, crash_schedule=schedule
        )
        history = trainer.train()
        assert len(trainer._alive_workers()) == len(ring_shards) - 2
        assert len(history.events_of_kind("crash")) == 2
        # Training continued to the end despite the crashes.
        assert history.iterations[-1] == 6

    def test_all_workers_crashing_stops_training(self, ring_shards, toy_factory):
        schedule = CrashSchedule({1: [worker_name(i) for i in range(len(ring_shards))]})
        config = TrainingConfig(iterations=10, batch_size=8, seed=3)
        trainer = MDGANTrainer(
            toy_factory, ring_shards, config, crash_schedule=schedule
        )
        history = trainer.train()
        assert len(history.iterations) < 10
        assert history.events_of_kind("all_workers_crashed")

    def test_k_shrinks_with_alive_workers(self, ring_shards, toy_factory):
        schedule = CrashSchedule({1: [worker_name(0), worker_name(1), worker_name(2)]})
        config = TrainingConfig(iterations=3, batch_size=8, num_batches=4, seed=3)
        trainer = MDGANTrainer(
            toy_factory, ring_shards, config, crash_schedule=schedule
        )
        history = trainer.train()
        # Only one worker remains; training still records losses.
        assert len(history.iterations) == 3


class TestParticipation:
    def test_partial_participation_reduces_traffic(self, ring_shards, toy_factory):
        full = make_trainer(toy_factory, ring_shards, iterations=6)
        full.train()
        partial_config = TrainingConfig(
            iterations=6, batch_size=8, participation_fraction=0.5, seed=21
        )
        partial = MDGANTrainer(toy_factory, ring_shards, partial_config)
        partial.train()
        assert (
            partial.cluster.meter.total_bytes(MessageKind.GENERATED_BATCHES)
            < full.cluster.meter.total_bytes(MessageKind.GENERATED_BATCHES)
        )

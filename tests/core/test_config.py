"""Unit tests for training configuration objects."""

import math

import pytest

from repro.core import OptimizerConfig, TrainingConfig, resolve_num_batches
from repro.nn import Adam


class TestOptimizerConfig:
    def test_build_creates_adam(self):
        opt = OptimizerConfig(learning_rate=0.01, beta1=0.3).build()
        assert isinstance(opt, Adam)
        assert opt.learning_rate == 0.01
        assert opt.beta1 == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimizerConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            OptimizerConfig(beta1=1.0)


class TestTrainingConfig:
    def test_defaults_are_valid(self):
        config = TrainingConfig()
        assert config.iterations > 0
        assert config.batch_size > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(iterations=0),
            dict(batch_size=0),
            dict(disc_steps=0),
            dict(epochs_per_swap=0),
            dict(num_batches=0),
            dict(participation_fraction=0.0),
            dict(participation_fraction=1.5),
            dict(eval_every=-1),
            dict(backend="gpu"),
            dict(max_workers=0),
            dict(pipeline_depth=-1),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    def test_pipeline_depth_defaults_to_synchronous(self):
        assert TrainingConfig().pipeline_depth == 0
        assert TrainingConfig(pipeline_depth=3).pipeline_depth == 3

    def test_build_backend_follows_config(self):
        from repro.runtime import SerialBackend, ThreadBackend

        assert isinstance(TrainingConfig().build_backend(), SerialBackend)
        backend = TrainingConfig(backend="thread", max_workers=3).build_backend()
        assert isinstance(backend, ThreadBackend)
        assert backend.max_workers == 3
        backend.close()

    def test_infinite_epochs_allowed(self):
        config = TrainingConfig(epochs_per_swap=math.inf)
        assert math.isinf(config.epochs_per_swap)

    def test_with_overrides_returns_new_object(self):
        config = TrainingConfig(iterations=10)
        other = config.with_overrides(batch_size=99)
        assert other.batch_size == 99
        assert other.iterations == 10
        assert config.batch_size != 99


class TestResolveNumBatches:
    def test_default_is_floor_log_n(self):
        config = TrainingConfig(num_batches=None)
        assert resolve_num_batches(config, 1) == 1
        assert resolve_num_batches(config, 10) == 2  # floor(ln 10) = 2
        assert resolve_num_batches(config, 25) == 3
        assert resolve_num_batches(config, 50) == 3

    def test_explicit_value_clamped_to_worker_count(self):
        config = TrainingConfig(num_batches=8)
        assert resolve_num_batches(config, 4) == 4
        assert resolve_num_batches(config, 16) == 8

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            resolve_num_batches(TrainingConfig(), 0)

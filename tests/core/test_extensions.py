"""Tests for the Section VII extensions (async updates, worker sampling)."""

import numpy as np

from repro.core import AsyncMDGANTrainer, SampledMDGANTrainer, TrainingConfig
from repro.simulation import MessageKind


def test_async_trainer_applies_per_feedback_updates(ring_shards, toy_factory, tiny_config):
    trainer = AsyncMDGANTrainer(toy_factory, ring_shards, tiny_config)
    assert trainer.per_feedback_updates
    history = trainer.train()
    assert history.algorithm == "md-gan-async"
    # One Adam step per worker feedback per iteration (vs one per iteration
    # for the synchronous variant).
    assert trainer._gen_opt.iterations == tiny_config.iterations * len(ring_shards)


def test_sync_trainer_applies_one_update_per_iteration(ring_shards, toy_factory, tiny_config):
    from repro.core import MDGANTrainer

    trainer = MDGANTrainer(toy_factory, ring_shards, tiny_config)
    trainer.train()
    assert trainer._gen_opt.iterations == tiny_config.iterations


def test_async_and_sync_produce_different_generators(ring_shards, toy_factory, tiny_config):
    from repro.core import MDGANTrainer

    sync = MDGANTrainer(toy_factory, ring_shards, tiny_config)
    sync.train()
    async_trainer = AsyncMDGANTrainer(toy_factory, ring_shards, tiny_config)
    async_trainer.train()
    assert not np.allclose(
        sync.generator.get_parameters(), async_trainer.generator.get_parameters()
    )


def test_sampled_trainer_limits_participants(ring_shards, toy_factory):
    config = TrainingConfig(iterations=8, batch_size=8, seed=5)
    trainer = SampledMDGANTrainer(
        toy_factory, ring_shards, config, participation_fraction=0.5
    )
    history = trainer.train()
    assert history.algorithm == "md-gan-sampled"
    assert trainer.config.participation_fraction == 0.5
    # With 4 workers and fraction 0.5, each iteration ships batches to 2 workers.
    per_iteration_messages = (
        trainer.cluster.meter.total_messages(MessageKind.GENERATED_BATCHES) / 8
    )
    assert per_iteration_messages == 2


def test_sampled_trainer_still_trains_generator(ring_shards, toy_factory):
    config = TrainingConfig(iterations=5, batch_size=8, seed=5)
    trainer = SampledMDGANTrainer(
        toy_factory, ring_shards, config, participation_fraction=0.5
    )
    before = trainer.generator.get_parameters()
    trainer.train()
    assert not np.array_equal(before, trainer.generator.get_parameters())

"""Unit tests for the shared GAN training steps.

The critical property tested here is the *split-update equivalence*: chaining
a worker's error feedback through the server's generator must produce exactly
the same generator gradients as backpropagating end-to-end through
discriminator-then-generator on one machine.  This is the mathematical core
of MD-GAN (Section IV-B2).
"""

import numpy as np
import pytest

from repro.core import (
    GANObjective,
    apply_feedback_to_generator,
    discriminator_update,
    generator_feedback,
    sample_generator_images,
)
from repro.models import build_toy_gan
from repro.models.base import generator_input
from repro.nn import Adam, precision_scope


@pytest.fixture()
def setup(rng):
    factory = build_toy_gan(latent_dim=10, num_classes=4, hidden=32)
    generator = factory.make_generator(rng)
    discriminator = factory.make_discriminator(rng)
    objective = GANObjective(factory)
    return factory, generator, discriminator, objective


class TestSampling:
    def test_sample_generator_images_shapes(self, setup, rng):
        factory, generator, _, _ = setup
        batch = sample_generator_images(generator, factory, 6, rng)
        assert batch.images.shape == (6,) + factory.image_shape
        assert batch.noise.shape == (6, factory.latent_dim)
        assert batch.labels.shape == (6,)

    def test_unconditional_sampling_has_no_labels(self, rng):
        factory = build_toy_gan(conditional=False)
        generator = factory.make_generator(rng)
        batch = sample_generator_images(generator, factory, 4, rng)
        assert batch.labels is None


class TestObjective:
    def test_real_and_fake_terms_sum_to_joint_loss(self, setup, rng):
        factory, generator, discriminator, objective = setup
        batch = sample_generator_images(generator, factory, 8, rng)
        real_images = rng.uniform(-1, 1, size=(8,) + factory.image_shape)
        real_labels = rng.integers(0, factory.num_classes, size=8)
        real_out = discriminator.forward(real_images, training=False)
        fake_out = discriminator.forward(batch.images, training=False)
        joint, _, _ = objective.discriminator_loss(
            real_out, real_labels, fake_out, batch.labels
        )
        loss_r, _ = objective.discriminator_real_term(real_out, real_labels)
        loss_f, _ = objective.discriminator_fake_term(fake_out, batch.labels)
        assert joint == pytest.approx(loss_r + loss_f, rel=1e-10)

    def test_unconditional_objective_paths(self, rng):
        factory = build_toy_gan(conditional=False)
        objective = GANObjective(factory)
        outputs = rng.normal(size=(5, 1))
        loss, grad = objective.generator_loss(outputs, None)
        assert np.isfinite(loss) and grad.shape == outputs.shape


class TestDiscriminatorUpdate:
    def test_loss_decreases_on_fixed_batches(self, setup, rng):
        factory, generator, discriminator, objective = setup
        optimizer = Adam(learning_rate=5e-3)
        real_images = rng.uniform(-1, 1, size=(16,) + factory.image_shape)
        real_labels = rng.integers(0, factory.num_classes, size=16)
        batch = sample_generator_images(generator, factory, 16, rng)
        losses = []
        for _ in range(30):
            losses.append(
                discriminator_update(
                    discriminator,
                    objective,
                    optimizer,
                    real_images,
                    real_labels,
                    batch.images,
                    batch.labels,
                )
            )
        assert losses[-1] < losses[0]

    def test_gradients_are_consumed_not_leaked(self, setup, rng):
        factory, generator, discriminator, objective = setup
        optimizer = Adam(learning_rate=1e-3)
        real_images = rng.uniform(-1, 1, size=(4,) + factory.image_shape)
        real_labels = rng.integers(0, factory.num_classes, size=4)
        batch = sample_generator_images(generator, factory, 4, rng)
        before = discriminator.get_parameters()
        discriminator_update(
            discriminator, objective, optimizer, real_images, real_labels,
            batch.images, batch.labels,
        )
        after = discriminator.get_parameters()
        assert not np.array_equal(before, after)


class TestFeedback:
    def test_feedback_matches_numeric_image_gradient(self, setup, rng):
        factory, _, _, objective = setup
        # Finite differences need the float64 opt-in of the precision policy.
        with precision_scope("float64"):
            generator = factory.make_generator(rng)
            discriminator = factory.make_discriminator(rng)
        batch = sample_generator_images(generator, factory, 3, rng)
        loss, feedback = generator_feedback(discriminator, objective, batch)
        assert feedback.shape == batch.images.shape

        def loss_of_images(images):
            out = discriminator.forward(images, training=True)
            value, _ = objective.generator_loss(out, batch.labels)
            return value

        eps = 1e-6
        flat = batch.images.copy()
        for idx in [(0, 0, 1, 1), (1, 0, 3, 2), (2, 0, 5, 7)]:
            up = flat.copy()
            up[idx] += eps
            down = flat.copy()
            down[idx] -= eps
            numeric = (loss_of_images(up) - loss_of_images(down)) / (2 * eps)
            assert feedback[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_feedback_does_not_touch_discriminator_parameters(self, setup, rng):
        factory, generator, discriminator, objective = setup
        batch = sample_generator_images(generator, factory, 4, rng)
        before = discriminator.get_parameters()
        generator_feedback(discriminator, objective, batch)
        np.testing.assert_array_equal(before, discriminator.get_parameters())
        np.testing.assert_array_equal(discriminator.get_gradients(), 0.0)


class TestSplitUpdateEquivalence:
    def test_single_worker_feedback_equals_direct_backprop(self, setup, rng):
        """Server-side chaining of F_n reproduces end-to-end generator gradients."""
        factory, generator, discriminator, objective = setup
        batch = sample_generator_images(generator, factory, 6, rng)

        # Split update: worker computes feedback, server replays and chains.
        _, feedback = generator_feedback(discriminator, objective, batch)
        generator.zero_grad()
        apply_feedback_to_generator(generator, factory, [batch], [feedback])
        split_grads = generator.get_gradients()

        # Direct update: backprop through D then G in one pass.
        g_input = generator_input(batch.noise, batch.labels, factory.num_classes)
        images = generator.forward(g_input, training=True)
        outputs = discriminator.forward(images, training=True)
        _, grad_outputs = objective.generator_loss(outputs, batch.labels)
        discriminator.zero_grad()
        grad_images = discriminator.backward(grad_outputs)
        generator.zero_grad()
        generator.backward(grad_images)
        direct_grads = generator.get_gradients()

        np.testing.assert_allclose(split_grads, direct_grads, rtol=1e-9, atol=1e-12)

    def test_multiple_feedbacks_are_averaged(self, setup, rng):
        factory, generator, discriminator, objective = setup
        batch = sample_generator_images(generator, factory, 5, rng)
        _, feedback = generator_feedback(discriminator, objective, batch)

        generator.zero_grad()
        apply_feedback_to_generator(generator, factory, [batch], [feedback])
        single = generator.get_gradients()

        generator.zero_grad()
        apply_feedback_to_generator(
            generator, factory, [batch, batch], [feedback, feedback]
        )
        doubled_then_averaged = generator.get_gradients()
        np.testing.assert_allclose(single, doubled_then_averaged, rtol=1e-9)

    def test_validation_errors(self, setup, rng):
        factory, generator, discriminator, objective = setup
        batch = sample_generator_images(generator, factory, 4, rng)
        _, feedback = generator_feedback(discriminator, objective, batch)
        with pytest.raises(ValueError, match="batches but"):
            apply_feedback_to_generator(generator, factory, [batch], [])
        with pytest.raises(ValueError, match="weights"):
            apply_feedback_to_generator(
                generator, factory, [batch], [feedback], weights=[1.0, 2.0]
            )
        with pytest.raises(ValueError, match="Feedback shape"):
            apply_feedback_to_generator(
                generator, factory, [batch], [feedback[:, :, :2, :2]]
            )
        # Empty call is a no-op.
        apply_feedback_to_generator(generator, factory, [], [])

"""Execution-engine contract tests: the capability matrix and hook defaults.

The engine (:mod:`repro.core.engine`) is the single owner of the
dispatch → collect → merge schedule; these tests pin its public composition
contract — which mode combinations construct, which fail at config time
naming :data:`~repro.core.engine.CAPABILITY_MATRIX` — and the inertness of
the default :class:`~repro.core.engine.EngineHooks`.
"""

from __future__ import annotations

import pytest

from repro.core import TrainingConfig
from repro.core.engine import CAPABILITY_MATRIX, AsyncContext, EngineHooks, check_composition

pytestmark = pytest.mark.composition


class TestCapabilityMatrix:
    def test_elastic_on_serial_backend_names_the_matrix(self):
        with pytest.raises(ValueError, match="CAPABILITY_MATRIX"):
            TrainingConfig(backend="serial", on_slot_loss="degrade")

    def test_wait_on_thread_backend_rejected(self):
        with pytest.raises(ValueError, match="elastic x non-resident backend"):
            TrainingConfig(backend="thread", on_slot_loss="wait")

    def test_lifted_compositions_construct(self):
        # Each of these raised "mutually exclusive" before the engine
        # unified the schedules; they are now supported compositions.
        TrainingConfig(aggregation="async", pipeline_depth=3)
        TrainingConfig(aggregation="async", participation_fraction=0.5)
        TrainingConfig(
            aggregation="async", backend="resident", on_slot_loss="wait"
        )
        TrainingConfig(
            backend="resident", on_slot_loss="degrade", pipeline_depth=2
        )
        TrainingConfig(
            aggregation="async",
            backend="resident",
            on_slot_loss="degrade",
            pipeline_depth=1,
            participation_fraction=0.75,
        )

    def test_check_composition_passes_defaults(self):
        check_composition(TrainingConfig())

    def test_matrix_documents_every_axis_and_refusal(self):
        assert set(CAPABILITY_MATRIX["axes"]) == {
            "aggregation",
            "pipeline_depth",
            "on_slot_loss",
            "participation_fraction",
            "backend",
        }
        assert CAPABILITY_MATRIX["supported"]
        # Every unsupported combination carries a human-readable reason.
        for reason in CAPABILITY_MATRIX["unsupported"].values():
            assert isinstance(reason, str) and reason


class TestEngineHooksDefaults:
    def test_optional_hooks_are_inert(self):
        hooks = EngineHooks()
        ctx = object()
        assert hooks._sync_should_continue(1) is True
        assert hooks._async_begin(ctx) is None
        assert hooks._async_dispatch(ctx) is None
        assert hooks._async_after_update(ctx, 1) is None
        assert hooks._async_barrier(ctx) is None
        assert hooks._async_finish(ctx) is None

    def test_required_hooks_raise(self):
        hooks = EngineHooks()
        ctx = object()
        with pytest.raises(NotImplementedError):
            hooks._sync_schedule(None)
        with pytest.raises(NotImplementedError):
            hooks._async_active(ctx)
        with pytest.raises(NotImplementedError):
            hooks._async_collect(ctx)
        with pytest.raises(NotImplementedError):
            hooks._async_apply(ctx)
        with pytest.raises(NotImplementedError):
            hooks._async_generate_unit(ctx)

    def test_context_accepts_trainer_specific_state(self):
        # AsyncContext is deliberately not slotted: trainers hang their
        # per-run extras (FL-GAN round progress, MD-GAN batch store) on it.
        from repro.core.async_aggregation import BoundedStalenessScheduler
        from repro.runtime.pipeline import PipelineStats

        ctx = AsyncContext(
            sched=BoundedStalenessScheduler(1),
            stats=PipelineStats(depth=0),
            collector=None,
        )
        ctx.batch_store = {}
        assert ctx.participants is None
        assert ctx.lookahead == []

"""Tests for the FL-GAN (federated averaging) trainer."""

import math

import numpy as np
import pytest

from repro.core import FLGANTrainer, TrainingConfig
from repro.simulation import MessageKind, SERVER_NAME


def test_requires_at_least_one_shard(toy_factory, tiny_config):
    with pytest.raises(ValueError):
        FLGANTrainer(toy_factory, [], tiny_config)


def test_worker_state_requires_rng(ring_shards, toy_factory, tiny_config):
    # FLGANWorkerState.rng is a required field: a worker without its own
    # random stream must be a construction-time error, not a latent None
    # that reaches sampling code mid-round.
    from repro.core.flgan import FLGANWorkerState

    with pytest.raises(TypeError):
        FLGANWorkerState(
            index=0,
            generator=None,
            discriminator=None,
            gen_opt=None,
            disc_opt=None,
            sampler=None,
            dataset=None,
        )
    trainer = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    assert all(isinstance(w.rng, np.random.Generator) for w in trainer.workers)


def test_workers_start_from_identical_models(ring_shards, toy_factory, tiny_config):
    trainer = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    reference_g = trainer.server_generator.get_parameters()
    reference_d = trainer.server_discriminator.get_parameters()
    for worker in trainer.workers:
        np.testing.assert_array_equal(worker.generator.get_parameters(), reference_g)
        np.testing.assert_array_equal(worker.discriminator.get_parameters(), reference_d)


def test_fanout_path_matches_resident_path(ring_shards, toy_factory, tiny_config):
    # The full-snapshot fan-out (serial/thread/process tasks) and the
    # resident delta protocol execute the same compute core; one local
    # iteration must stay in bitwise lockstep between the two.
    from repro.runtime import run_flgan_local_task

    fanned = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    tasks = [fanned._build_local_task(worker) for worker in fanned.workers]
    results = fanned.executor.map_ordered(run_flgan_local_task, tasks)
    losses = [
        fanned._merge_local_result(worker, result)
        for worker, result in zip(fanned.workers, results)
    ]
    assert all(np.isfinite(g) and np.isfinite(d) for g, d in losses)
    assert all(
        w.sampler.samples_drawn == tiny_config.batch_size * tiny_config.disc_steps
        for w in fanned.workers
    )

    resident_config = tiny_config.with_overrides(backend="resident", max_workers=2)
    resident = FLGANTrainer(toy_factory, ring_shards, resident_config)
    backend = resident.executor
    items = [
        (worker.index, lambda w=worker: resident._resident_state(w), None)
        for worker in resident.workers
    ]
    step_results = backend.run_steps("flgan", items)
    resident_losses = [
        resident._merge_local_result(worker, result)
        for worker, result in zip(resident.workers, step_results)
    ]
    assert resident_losses == losses
    resident.sync_worker_state()
    resident.close_backend()
    for fanned_worker, resident_worker in zip(fanned.workers, resident.workers):
        np.testing.assert_array_equal(
            fanned_worker.generator.get_parameters(),
            resident_worker.generator.get_parameters(),
        )


def test_federated_round_weights_by_shard_size(ring_dataset, toy_factory):
    # FedAvg must weight each worker by its shard size m_n / sum(m): with
    # 3:1 shards the average is 0.75*w_0 + 0.25*w_1, not the uniform mean.
    train, _ = ring_dataset
    shards = [train.subset(np.arange(30)), train.subset(np.arange(30, 40))]
    config = TrainingConfig(iterations=1, batch_size=5, seed=0)
    trainer = FLGANTrainer(toy_factory, shards, config)
    gen_size = trainer.server_generator.num_parameters
    disc_size = trainer.server_discriminator.num_parameters
    trainer.workers[0].generator.set_parameters(np.full(gen_size, 1.0))
    trainer.workers[1].generator.set_parameters(np.full(gen_size, 5.0))
    trainer.workers[0].discriminator.set_parameters(np.full(disc_size, 2.0))
    trainer.workers[1].discriminator.set_parameters(np.full(disc_size, 6.0))
    trainer._federated_round(1)
    # Weighted means: 0.75*1 + 0.25*5 = 2.0 and 0.75*2 + 0.25*6 = 3.0
    # (an unweighted mean would give 3.0 and 4.0).
    np.testing.assert_allclose(
        trainer.server_generator.get_parameters(), 2.0, rtol=1e-6
    )
    np.testing.assert_allclose(
        trainer.server_discriminator.get_parameters(), 3.0, rtol=1e-6
    )
    for worker in trainer.workers:
        np.testing.assert_allclose(worker.generator.get_parameters(), 2.0, rtol=1e-6)


def test_federated_round_weights_follow_replace_dataset(ring_dataset, toy_factory):
    # FedAvg weights must track the sampler's *live* shard, not the shard the
    # worker was constructed with: after replace_dataset equalises the shard
    # sizes, the 3:1 weighting must become uniform.
    train, _ = ring_dataset
    shards = [train.subset(np.arange(30)), train.subset(np.arange(30, 40))]
    config = TrainingConfig(iterations=1, batch_size=5, seed=0)
    trainer = FLGANTrainer(toy_factory, shards, config)
    trainer.workers[1].sampler.replace_dataset(train.subset(np.arange(40, 70)))
    gen_size = trainer.server_generator.num_parameters
    trainer.workers[0].generator.set_parameters(np.full(gen_size, 1.0))
    trainer.workers[1].generator.set_parameters(np.full(gen_size, 5.0))
    trainer._federated_round(1)
    # Both shards now hold 30 samples -> uniform mean 3.0 (the stale 3:1
    # weighting would give 2.0).
    np.testing.assert_allclose(
        trainer.server_generator.get_parameters(), 3.0, rtol=1e-6
    )


def test_round_length_follows_e_m_over_b(ring_shards, toy_factory):
    config = TrainingConfig(iterations=10, batch_size=10, epochs_per_swap=2.0)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    m = min(len(s) for s in ring_shards)
    assert trainer.iterations_per_round == round(2.0 * m / 10)


def test_federated_round_averages_and_synchronises(ring_shards, toy_factory):
    # Choose iteration count = one round so exactly one aggregation happens.
    m = min(len(s) for s in ring_shards)
    batch = 10
    iterations = max(1, int(round(m / batch)))
    config = TrainingConfig(iterations=iterations, batch_size=batch, epochs_per_swap=1.0, seed=4)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    history = trainer.train()
    rounds = history.events_of_kind("federated_round")
    assert len(rounds) == 1
    # After the round every worker holds the server's averaged parameters.
    server_params = trainer.server_generator.get_parameters()
    for worker in trainer.workers:
        np.testing.assert_allclose(worker.generator.get_parameters(), server_params)


def test_traffic_counts_model_transfers(ring_shards, toy_factory):
    m = min(len(s) for s in ring_shards)
    batch = 10
    iterations = int(round(m / batch)) * 2  # exactly two rounds
    config = TrainingConfig(iterations=iterations, batch_size=batch, seed=4)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    trainer.train()
    meter = trainer.cluster.meter
    model_floats = (
        trainer.server_generator.num_parameters
        + trainer.server_discriminator.num_parameters
    )
    expected_per_round = len(ring_shards) * model_floats * 4
    assert meter.total_bytes(MessageKind.MODEL_UPDATE) == 2 * expected_per_round
    assert meter.total_bytes(MessageKind.MODEL_BROADCAST) == 2 * expected_per_round
    assert meter.node_ingress(SERVER_NAME) == 2 * expected_per_round


def test_no_round_when_epochs_infinite(ring_shards, toy_factory):
    config = TrainingConfig(iterations=8, batch_size=8, epochs_per_swap=math.inf)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    history = trainer.train()
    assert history.events_of_kind("federated_round") == []
    assert trainer.cluster.meter.total_messages() == 0


def test_evaluation_uses_server_generator(ring_shards, toy_factory, ring_evaluator):
    config = TrainingConfig(iterations=6, batch_size=8, eval_every=3, seed=1)
    trainer = FLGANTrainer(toy_factory, ring_shards, config, evaluator=ring_evaluator)
    history = trainer.train()
    assert len(history.evaluations) == 2
    assert history.traffic["rounds"] >= 0


def test_losses_recorded_every_iteration(ring_shards, toy_factory, tiny_config):
    trainer = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    history = trainer.train()
    assert len(history.iterations) == tiny_config.iterations
    assert all(np.isfinite(history.generator_loss))

"""Tests for the FL-GAN (federated averaging) trainer."""

import math

import numpy as np
import pytest

from repro.core import FLGANTrainer, TrainingConfig
from repro.simulation import MessageKind, SERVER_NAME


def test_requires_at_least_one_shard(toy_factory, tiny_config):
    with pytest.raises(ValueError):
        FLGANTrainer(toy_factory, [], tiny_config)


def test_worker_state_requires_rng(ring_shards, toy_factory, tiny_config):
    # FLGANWorkerState.rng is a required field: a worker without its own
    # random stream must be a construction-time error, not a latent None
    # that reaches sampling code mid-round.
    from repro.core.flgan import FLGANWorkerState

    with pytest.raises(TypeError):
        FLGANWorkerState(
            index=0,
            generator=None,
            discriminator=None,
            gen_opt=None,
            disc_opt=None,
            sampler=None,
            dataset=None,
        )
    trainer = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    assert all(isinstance(w.rng, np.random.Generator) for w in trainer.workers)


def test_workers_start_from_identical_models(ring_shards, toy_factory, tiny_config):
    trainer = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    reference_g = trainer.server_generator.get_parameters()
    reference_d = trainer.server_discriminator.get_parameters()
    for worker in trainer.workers:
        np.testing.assert_array_equal(worker.generator.get_parameters(), reference_g)
        np.testing.assert_array_equal(worker.discriminator.get_parameters(), reference_d)


def test_local_iteration_matches_backend_path(ring_shards, toy_factory, tiny_config):
    # _local_iteration is the documented inline equivalent of the trainer's
    # build -> compute -> merge fan-out; the two paths must stay in lockstep.
    inline = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    losses = [inline._local_iteration(worker) for worker in inline.workers]
    assert all(np.isfinite(g) and np.isfinite(d) for g, d in losses)
    assert all(
        w.sampler.samples_drawn == tiny_config.batch_size * tiny_config.disc_steps
        for w in inline.workers
    )

    fanned = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    tasks = [fanned._build_local_task(worker) for worker in fanned.workers]
    from repro.runtime import run_flgan_local_task

    results = fanned.executor.map_ordered(run_flgan_local_task, tasks)
    fanned_losses = [
        fanned._merge_local_result(worker, result)
        for worker, result in zip(fanned.workers, results)
    ]
    assert fanned_losses == losses
    for inline_worker, fanned_worker in zip(inline.workers, fanned.workers):
        np.testing.assert_array_equal(
            inline_worker.generator.get_parameters(),
            fanned_worker.generator.get_parameters(),
        )


def test_round_length_follows_e_m_over_b(ring_shards, toy_factory):
    config = TrainingConfig(iterations=10, batch_size=10, epochs_per_swap=2.0)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    m = min(len(s) for s in ring_shards)
    assert trainer.iterations_per_round == round(2.0 * m / 10)


def test_federated_round_averages_and_synchronises(ring_shards, toy_factory):
    # Choose iteration count = one round so exactly one aggregation happens.
    m = min(len(s) for s in ring_shards)
    batch = 10
    iterations = max(1, int(round(m / batch)))
    config = TrainingConfig(iterations=iterations, batch_size=batch, epochs_per_swap=1.0, seed=4)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    history = trainer.train()
    rounds = history.events_of_kind("federated_round")
    assert len(rounds) == 1
    # After the round every worker holds the server's averaged parameters.
    server_params = trainer.server_generator.get_parameters()
    for worker in trainer.workers:
        np.testing.assert_allclose(worker.generator.get_parameters(), server_params)


def test_traffic_counts_model_transfers(ring_shards, toy_factory):
    m = min(len(s) for s in ring_shards)
    batch = 10
    iterations = int(round(m / batch)) * 2  # exactly two rounds
    config = TrainingConfig(iterations=iterations, batch_size=batch, seed=4)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    trainer.train()
    meter = trainer.cluster.meter
    model_floats = (
        trainer.server_generator.num_parameters
        + trainer.server_discriminator.num_parameters
    )
    expected_per_round = len(ring_shards) * model_floats * 4
    assert meter.total_bytes(MessageKind.MODEL_UPDATE) == 2 * expected_per_round
    assert meter.total_bytes(MessageKind.MODEL_BROADCAST) == 2 * expected_per_round
    assert meter.node_ingress(SERVER_NAME) == 2 * expected_per_round


def test_no_round_when_epochs_infinite(ring_shards, toy_factory):
    config = TrainingConfig(iterations=8, batch_size=8, epochs_per_swap=math.inf)
    trainer = FLGANTrainer(toy_factory, ring_shards, config)
    history = trainer.train()
    assert history.events_of_kind("federated_round") == []
    assert trainer.cluster.meter.total_messages() == 0


def test_evaluation_uses_server_generator(ring_shards, toy_factory, ring_evaluator):
    config = TrainingConfig(iterations=6, batch_size=8, eval_every=3, seed=1)
    trainer = FLGANTrainer(toy_factory, ring_shards, config, evaluator=ring_evaluator)
    history = trainer.train()
    assert len(history.evaluations) == 2
    assert history.traffic["rounds"] >= 0


def test_losses_recorded_every_iteration(ring_shards, toy_factory, tiny_config):
    trainer = FLGANTrainer(toy_factory, ring_shards, tiny_config)
    history = trainer.train()
    assert len(history.iterations) == tiny_config.iterations
    assert all(np.isfinite(history.generator_loss))

"""Unit tests for the dataset container and spec."""

import numpy as np
import pytest

from repro.datasets import DatasetSpec, ImageDataset


@pytest.fixture()
def spec():
    return DatasetSpec(
        name="tiny", channels=1, height=4, width=4, num_classes=3,
        train_size=100, test_size=20,
    )


@pytest.fixture()
def dataset(spec, rng):
    images = rng.uniform(-1, 1, size=(30, 1, 4, 4))
    labels = rng.integers(0, 3, size=30)
    return ImageDataset(images, labels, spec)


class TestSpec:
    def test_shape_and_object_size(self, spec):
        assert spec.shape == (1, 4, 4)
        assert spec.object_size == 16


class TestValidation:
    def test_rejects_wrong_rank(self, spec):
        with pytest.raises(ValueError, match="4-D"):
            ImageDataset(np.zeros((5, 16)), np.zeros(5), spec)

    def test_rejects_length_mismatch(self, spec):
        with pytest.raises(ValueError, match="disagree"):
            ImageDataset(np.zeros((5, 1, 4, 4)), np.zeros(4), spec)

    def test_rejects_geometry_mismatch(self, spec):
        with pytest.raises(ValueError, match="per-sample shape"):
            ImageDataset(np.zeros((5, 1, 8, 8)), np.zeros(5), spec)


class TestDtype:
    def test_images_default_to_policy_dtype(self, dataset):
        assert dataset.images.dtype == np.float32

    def test_explicit_dtype_overrides_policy(self, spec, rng):
        images = rng.uniform(-1, 1, size=(10, 1, 4, 4))
        labels = rng.integers(0, 3, size=10)
        ds = ImageDataset(images, labels, spec, dtype=np.float64)
        assert ds.images.dtype == np.float64
        # subset() must not silently re-quantize to the process default.
        assert ds.subset(np.arange(4)).images.dtype == np.float64

    def test_astype_roundtrip(self, dataset):
        ds64 = dataset.astype(np.float64)
        assert ds64.images.dtype == np.float64
        assert dataset.astype(np.float32) is dataset
        np.testing.assert_allclose(ds64.images, dataset.images)


class TestAccess:
    def test_len_and_properties(self, dataset):
        assert len(dataset) == 30
        assert dataset.num_classes == 3
        assert dataset.object_size == 16

    def test_subset(self, dataset):
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[1], dataset.images[2])

    def test_subset_out_of_range(self, dataset):
        with pytest.raises(IndexError):
            dataset.subset(np.array([100]))

    def test_subset_copies_data(self, dataset):
        sub = dataset.subset(np.array([0]))
        sub.images[0] = 99.0
        assert dataset.images[0, 0, 0, 0] != 99.0

    def test_sample_batch_shapes(self, dataset, rng):
        x, y = dataset.sample_batch(7, rng)
        assert x.shape == (7, 1, 4, 4)
        assert y.shape == (7,)

    def test_sample_batch_empty_dataset(self, spec, rng):
        empty = ImageDataset(np.zeros((0, 1, 4, 4)), np.zeros(0), spec)
        with pytest.raises(ValueError):
            empty.sample_batch(2, rng)

    def test_iter_batches_covers_everything(self, dataset):
        seen = 0
        for x, y in dataset.iter_batches(8):
            seen += x.shape[0]
        assert seen == len(dataset)

    def test_iter_batches_drop_last(self, dataset):
        sizes = [x.shape[0] for x, _ in dataset.iter_batches(8, drop_last=True)]
        assert all(s == 8 for s in sizes)

    def test_iter_batches_shuffles_with_rng(self, dataset, rng):
        first = next(iter(dataset.iter_batches(30)))[1]
        shuffled = next(iter(dataset.iter_batches(30, rng=rng)))[1]
        assert not np.array_equal(first, shuffled)

    def test_class_counts(self, dataset):
        counts = dataset.class_counts()
        assert counts.sum() == len(dataset)
        assert counts.shape == (3,)

"""Property-based tests for dataset partitioning and sampling invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    EpochSampler,
    make_gaussian_ring,
    merge_shards,
    partition_dirichlet,
    partition_iid,
)


@settings(max_examples=20, deadline=None)
@given(
    n_samples=st.integers(20, 120),
    num_workers=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_iid_partition_preserves_and_balances(n_samples, num_workers, seed):
    """Sharding never loses samples and keeps sizes within one of each other."""
    train, _ = make_gaussian_ring(n_train=n_samples, n_test=4, seed=seed % 1000)
    num_workers = min(num_workers, len(train))
    shards = partition_iid(train, num_workers, np.random.default_rng(seed))
    sizes = [len(s) for s in shards]
    assert sum(sizes) == len(train)
    assert max(sizes) - min(sizes) <= 1
    merged = merge_shards(shards)
    assert len(merged) == len(train)
    # Label multiset is preserved exactly.
    np.testing.assert_array_equal(
        np.sort(merged.labels), np.sort(train.labels)
    )


@settings(max_examples=15, deadline=None)
@given(
    num_workers=st.integers(2, 6),
    alpha=st.floats(0.05, 50.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)
def test_dirichlet_partition_preserves_samples(num_workers, alpha, seed):
    train, _ = make_gaussian_ring(n_train=80, n_test=4, seed=11)
    shards = partition_dirichlet(train, num_workers, alpha, np.random.default_rng(seed))
    assert sum(len(s) for s in shards) == len(train)
    merged = merge_shards(shards)
    np.testing.assert_array_equal(np.sort(merged.labels), np.sort(train.labels))


@settings(max_examples=15, deadline=None)
@given(
    batch_size=st.integers(1, 20),
    draws=st.integers(1, 30),
    seed=st.integers(0, 2**31 - 1),
)
def test_epoch_sampler_accounting(batch_size, draws, seed):
    """samples_drawn and epochs_completed stay consistent for any batch size."""
    train, _ = make_gaussian_ring(n_train=37, n_test=4, seed=5)
    sampler = EpochSampler(train, batch_size, np.random.default_rng(seed))
    for _ in range(draws):
        x, y = sampler.next_batch()
        assert x.shape[0] == batch_size
        assert y.shape[0] == batch_size
    assert sampler.samples_drawn == batch_size * draws
    assert sampler.epochs_completed == (batch_size * draws) // len(train)


@settings(max_examples=15, deadline=None)
@given(
    n_train=st.integers(30, 90),
    image_size=st.sampled_from([8, 12, 16]),
    seed=st.integers(0, 1000),
)
def test_ring_dataset_value_range_and_shapes(n_train, image_size, seed):
    train, test = make_gaussian_ring(
        n_train=n_train, n_test=10, image_size=image_size, seed=seed
    )
    assert train.images.shape == (n_train, 1, image_size, image_size)
    assert train.images.min() >= -1.0 - 1e-9
    assert train.images.max() <= 1.0 + 1e-9
    assert test.spec.shape == train.spec.shape

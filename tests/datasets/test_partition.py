"""Unit tests for dataset partitioning across workers."""

import numpy as np
import pytest

from repro.datasets import (
    make_mnist_like,
    merge_shards,
    partition_by_label,
    partition_dirichlet,
    partition_iid,
)


@pytest.fixture(scope="module")
def dataset():
    train, _ = make_mnist_like(n_train=300, n_test=10, image_size=16, seed=5)
    return train


class TestIID:
    def test_shards_cover_dataset_exactly(self, dataset, rng):
        shards = partition_iid(dataset, 7, rng)
        assert sum(len(s) for s in shards) == len(dataset)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_are_disjoint(self, dataset, rng):
        shards = partition_iid(dataset, 5, rng)
        # Re-identify samples by hashing their pixel content.
        seen = set()
        for shard in shards:
            for img in shard.images:
                key = img.tobytes()
                assert key not in seen
                seen.add(key)

    def test_shards_follow_global_distribution(self, dataset, rng):
        shards = partition_iid(dataset, 3, rng)
        global_fraction = dataset.class_counts() / len(dataset)
        for shard in shards:
            shard_fraction = shard.class_counts() / len(shard)
            assert np.abs(shard_fraction - global_fraction).max() < 0.15

    def test_invalid_inputs(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_iid(dataset, 0, rng)
        with pytest.raises(ValueError):
            partition_iid(dataset, len(dataset) + 1, rng)


class TestLabelSkew:
    def test_each_worker_sees_limited_classes(self, dataset, rng):
        shards = partition_by_label(dataset, 5, classes_per_worker=2, rng=rng)
        for shard in shards:
            present = int((shard.class_counts() > 0).sum())
            assert present <= 2

    def test_union_covers_all_samples(self, dataset, rng):
        shards = partition_by_label(dataset, 5, classes_per_worker=2, rng=rng)
        assert sum(len(s) for s in shards) == len(dataset)

    def test_invalid_classes_per_worker(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_by_label(dataset, 5, classes_per_worker=0, rng=rng)


class TestDirichlet:
    def test_total_preserved(self, dataset, rng):
        shards = partition_dirichlet(dataset, 6, alpha=0.5, rng=rng)
        assert sum(len(s) for s in shards) == len(dataset)

    def test_small_alpha_is_more_skewed_than_large(self, dataset):
        def skew(alpha, seed):
            shards = partition_dirichlet(
                dataset, 5, alpha=alpha, rng=np.random.default_rng(seed)
            )
            # Mean per-shard entropy of the label distribution.
            entropies = []
            for shard in shards:
                p = shard.class_counts() / max(1, len(shard))
                p = p[p > 0]
                entropies.append(-(p * np.log(p)).sum())
            return float(np.mean(entropies))

        assert skew(0.05, 1) < skew(100.0, 1)

    def test_invalid_alpha(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 4, alpha=0.0, rng=rng)


class TestMerge:
    def test_merge_restores_size(self, dataset, rng):
        shards = partition_iid(dataset, 4, rng)
        merged = merge_shards(shards)
        assert len(merged) == len(dataset)
        assert merged.spec.shape == dataset.spec.shape

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_shards([])

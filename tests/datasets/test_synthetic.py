"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    load_dataset,
    make_celeba_like,
    make_cifar10_like,
    make_gaussian_ring,
    make_mnist_like,
)


class TestMNISTLike:
    def test_shapes_and_range(self):
        train, test = make_mnist_like(n_train=100, n_test=30, image_size=16, seed=1)
        assert train.images.shape == (100, 1, 16, 16)
        assert test.images.shape == (30, 1, 16, 16)
        assert train.images.min() >= -1.0 and train.images.max() <= 1.0
        assert train.num_classes == 10

    def test_default_matches_mnist_geometry(self):
        train, _ = make_mnist_like(n_train=20, n_test=5)
        assert train.spec.shape == (1, 28, 28)
        assert train.object_size == 784

    def test_all_ten_classes_have_distinct_prototypes(self):
        # Average images of different classes should differ substantially.
        train, _ = make_mnist_like(n_train=500, n_test=10, image_size=16, seed=0, noise=0.0)
        means = np.stack(
            [train.images[train.labels == c].mean(axis=0) for c in range(10)]
        )
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.abs(means[a] - means[b]).mean() > 0.02

    def test_determinism_per_seed(self):
        a, _ = make_mnist_like(50, 10, image_size=16, seed=3)
        b, _ = make_mnist_like(50, 10, image_size=16, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        c, _ = make_mnist_like(50, 10, image_size=16, seed=4)
        assert not np.array_equal(a.images, c.images)


class TestCIFARLike:
    def test_shapes_and_channels(self):
        train, test = make_cifar10_like(n_train=60, n_test=20, image_size=16, seed=1)
        assert train.images.shape == (60, 3, 16, 16)
        assert train.num_classes == 10

    def test_default_geometry(self):
        train, _ = make_cifar10_like(n_train=10, n_test=5)
        assert train.spec.shape == (3, 32, 32)
        assert train.object_size == 3072

    def test_classes_have_distinct_colours(self):
        train, _ = make_cifar10_like(n_train=400, n_test=10, image_size=16, seed=0, noise=0.0)
        class_means = np.stack(
            [train.images[train.labels == c].mean(axis=(0, 2, 3)) for c in range(10)]
        )
        # Mean RGB per class must not all collapse to one colour.
        assert np.std(class_means, axis=0).max() > 0.05


class TestCelebALike:
    def test_shapes(self):
        train, test = make_celeba_like(n_train=40, n_test=10, image_size=16, seed=1)
        assert train.images.shape == (40, 3, 16, 16)
        assert len(test) == 10

    def test_label_range(self):
        train, _ = make_celeba_like(n_train=60, n_test=10, image_size=16, seed=2)
        assert train.labels.min() >= 0
        assert train.labels.max() < train.num_classes


class TestRing:
    def test_modes_match_labels(self):
        train, _ = make_gaussian_ring(n_train=200, n_test=20, num_modes=6, seed=0)
        assert train.num_classes == 6
        assert set(np.unique(train.labels)) <= set(range(6))

    def test_blob_positions_depend_on_label(self):
        train, _ = make_gaussian_ring(n_train=400, n_test=20, num_modes=4, seed=0)
        # The brightest pixel location should cluster per class.
        for c in range(4):
            imgs = train.images[train.labels == c][:, 0]
            positions = np.array(
                [np.unravel_index(np.argmax(img), img.shape) for img in imgs]
            )
            assert positions.std(axis=0).max() < 2.0


class TestRegistry:
    def test_load_dataset_by_name(self):
        train, test = load_dataset("mnist", n_train=30, n_test=10, image_size=16)
        assert train.spec.name == "mnist"
        assert len(train) == 30 and len(test) == 10

    def test_load_dataset_unknown(self):
        with pytest.raises(ValueError, match="Unknown dataset"):
            load_dataset("imagenet", n_train=10, n_test=2)

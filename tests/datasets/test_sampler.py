"""Unit tests for the epoch sampler and noise/label helpers."""

import numpy as np
import pytest

from repro.datasets import EpochSampler, make_gaussian_ring, noise_batch, sample_labels


@pytest.fixture()
def small_dataset():
    train, _ = make_gaussian_ring(n_train=50, n_test=10, seed=2)
    return train


class TestEpochSampler:
    def test_batch_shapes(self, small_dataset, rng):
        sampler = EpochSampler(small_dataset, 8, rng)
        x, y = sampler.next_batch()
        assert x.shape == (8, 1, 8, 8)
        assert y.shape == (8,)

    def test_epoch_counting(self, small_dataset, rng):
        sampler = EpochSampler(small_dataset, 10, rng)
        for _ in range(5):  # 5 x 10 = 50 samples = exactly one epoch
            sampler.next_batch()
        assert sampler.epochs_completed == 1
        assert sampler.samples_drawn == 50

    def test_each_epoch_visits_every_sample(self, rng):
        train, _ = make_gaussian_ring(n_train=24, n_test=4, seed=3)
        sampler = EpochSampler(train, 6, rng)
        seen = set()
        for _ in range(4):  # exactly one epoch
            x, _ = sampler.next_batch()
            for img in x:
                seen.add(img.tobytes())
        assert len(seen) == 24

    def test_batches_per_epoch(self, small_dataset, rng):
        # 50 samples / batch 8: the 7th next_batch() call wraps and finishes
        # the epoch, so batches_per_epoch is the ceiling, not the floor.
        sampler = EpochSampler(small_dataset, 8, rng)
        assert sampler.batches_per_epoch == 7

    def test_batches_per_epoch_matches_wraparound_accounting(self, rng):
        # Regression: a 101-sample shard with batch 10 completes an epoch
        # after ~10.1 batches; floor division said 10, but epochs_completed
        # only advances during the 11th call.
        train, _ = make_gaussian_ring(n_train=101, n_test=4, seed=5)
        sampler = EpochSampler(train, 10, rng)
        assert sampler.batches_per_epoch == 11
        for _ in range(10):
            sampler.next_batch()
        assert sampler.epochs_completed == 0
        sampler.next_batch()
        assert sampler.epochs_completed == 1

    def test_batches_per_epoch_exact_multiple(self, rng):
        train, _ = make_gaussian_ring(n_train=40, n_test=4, seed=5)
        sampler = EpochSampler(train, 10, rng)
        assert sampler.batches_per_epoch == 4
        for _ in range(4):
            sampler.next_batch()
        assert sampler.epochs_completed == 1

    def test_wraps_partial_batches(self, rng):
        train, _ = make_gaussian_ring(n_train=10, n_test=4, seed=3)
        sampler = EpochSampler(train, 7, rng)
        for _ in range(5):
            x, _ = sampler.next_batch()
            assert x.shape[0] == 7

    def test_cursor_state_round_trip_resumes_exactly(self, small_dataset, rng):
        # cursor_state()/restore_cursor_state() carry the complete sampling
        # position (mid-epoch shuffle order, cursor, lifetime counters), so
        # a fresh sampler over the same data + the same RNG stream resumes
        # the exact batch sequence — the contract the resident pool's
        # end-of-run mirror relies on.
        source = EpochSampler(small_dataset, 8, np.random.default_rng(17))
        for _ in range(3):  # park mid-epoch
            source.next_batch()
        snapshot = source.cursor_state()
        clone = EpochSampler(small_dataset, 8, np.random.default_rng(17))
        clone._rng.bit_generator.state = source._rng.bit_generator.state
        clone.restore_cursor_state(snapshot)
        assert clone.samples_drawn == source.samples_drawn
        assert clone.epochs_completed == source.epochs_completed
        for _ in range(5):  # crosses the epoch boundary: reshuffle replays too
            got_x, got_y = clone.next_batch()
            exp_x, exp_y = source.next_batch()
            assert np.array_equal(got_x, exp_x)
            assert np.array_equal(got_y, exp_y)

    def test_replace_dataset(self, small_dataset, rng):
        sampler = EpochSampler(small_dataset, 8, rng)
        other, _ = make_gaussian_ring(n_train=20, n_test=4, seed=9)
        sampler.replace_dataset(other)
        x, _ = sampler.next_batch()
        assert x.shape[0] == 8
        assert len(sampler.dataset) == 20

    def test_replace_dataset_resets_cursor_and_order(self, small_dataset, rng):
        sampler = EpochSampler(small_dataset, 8, rng)
        for _ in range(3):
            sampler.next_batch()
        assert sampler._cursor != 0
        other, _ = make_gaussian_ring(n_train=12, n_test=4, seed=9)
        sampler.replace_dataset(other)
        # A fresh pass over the new shard: cursor at zero, order a
        # permutation of the new shard's indices.
        assert sampler._cursor == 0
        assert sorted(sampler._order) == list(range(12))

    def test_replace_dataset_carries_over_epoch_accounting(
        self, small_dataset, rng
    ):
        # samples_drawn / epochs_completed count lifetime progress, so the
        # swap/round cadence (i mod mE/b) survives a shard replacement.
        sampler = EpochSampler(small_dataset, 10, rng)
        for _ in range(6):  # 60 samples over a 50-sample shard: 1 epoch done
            sampler.next_batch()
        assert sampler.epochs_completed == 1
        assert sampler.samples_drawn == 60
        other, _ = make_gaussian_ring(n_train=20, n_test=4, seed=9)
        sampler.replace_dataset(other)
        assert sampler.epochs_completed == 1
        assert sampler.samples_drawn == 60
        sampler.next_batch()
        assert sampler.samples_drawn == 70

    def test_replace_dataset_draws_batches_from_new_shard_only(
        self, small_dataset, rng
    ):
        sampler = EpochSampler(small_dataset, 6, rng)
        sampler.next_batch()
        other, _ = make_gaussian_ring(n_train=12, n_test=4, seed=9)
        sampler.replace_dataset(other)
        new_rows = {img.tobytes() for img in other.images}
        for _ in range(4):
            x, _ = sampler.next_batch()
            assert all(img.tobytes() in new_rows for img in x)

    def test_replace_dataset_order_comes_from_sampler_rng(self, small_dataset):
        # Two samplers with identical RNG streams must agree on the shuffle
        # order after an identical replacement (seeded determinism).
        a = EpochSampler(small_dataset, 8, np.random.default_rng(42))
        b = EpochSampler(small_dataset, 8, np.random.default_rng(42))
        other, _ = make_gaussian_ring(n_train=16, n_test=4, seed=9)
        a.replace_dataset(other)
        b.replace_dataset(other)
        assert np.array_equal(a._order, b._order)

    def test_replace_dataset_rejects_empty(self, small_dataset, rng):
        sampler = EpochSampler(small_dataset, 8, rng)
        empty = small_dataset.subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            sampler.replace_dataset(empty)

    def test_invalid_inputs(self, small_dataset, rng):
        with pytest.raises(ValueError):
            EpochSampler(small_dataset, 0, rng)


class TestNoiseAndLabels:
    def test_noise_batch_statistics(self, rng):
        z = noise_batch(2000, 8, rng)
        assert z.shape == (2000, 8)
        assert abs(z.mean()) < 0.05
        assert abs(z.std() - 1.0) < 0.05

    def test_noise_batch_validation(self, rng):
        with pytest.raises(ValueError):
            noise_batch(0, 8, rng)

    def test_sample_labels_range(self, rng):
        labels = sample_labels(500, 7, rng)
        assert labels.min() >= 0 and labels.max() < 7
        # Roughly uniform coverage.
        assert len(np.unique(labels)) == 7

    def test_sample_labels_validation(self, rng):
        with pytest.raises(ValueError):
            sample_labels(10, 0, rng)

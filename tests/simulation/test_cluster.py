"""Unit tests for nodes, the cluster container and crash schedules."""

import numpy as np
import pytest

from repro.simulation import (
    Cluster,
    ComputeLedger,
    CrashSchedule,
    MessageKind,
    Node,
    SimulatedNetwork,
    SERVER_NAME,
    worker_name,
)


class TestComputeLedger:
    def test_charge_and_categories(self):
        ledger = ComputeLedger()
        ledger.charge("gen", 100.0)
        ledger.charge("gen", 50.0)
        ledger.charge("disc", 10.0)
        assert ledger.flops == 160.0
        assert ledger.by_category == {"gen": 150.0, "disc": 10.0}

    def test_memory_peak(self):
        ledger = ComputeLedger()
        ledger.observe_memory(10)
        ledger.observe_memory(5)
        assert ledger.peak_memory_floats == 10

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ComputeLedger().charge("x", -1)

    def test_reset(self):
        ledger = ComputeLedger()
        ledger.charge("x", 5)
        ledger.observe_memory(3)
        ledger.reset()
        assert ledger.flops == 0 and ledger.peak_memory_floats == 0


class TestNode:
    def test_send_receive_roundtrip(self):
        net = SimulatedNetwork()
        a = Node("a", net)
        b = Node("b", net)
        assert a.send("b", MessageKind.CONTROL, np.zeros(2), iteration=3, tag="hello")
        messages = b.receive()
        assert len(messages) == 1
        assert messages[0].metadata["tag"] == "hello"
        assert messages[0].iteration == 3

    def test_crash_disconnects(self):
        net = SimulatedNetwork()
        a = Node("a", net)
        Node("b", net)
        a.crash()
        assert not a.alive
        # Crashing twice is harmless.
        a.crash()


class TestCrashSchedule:
    def test_none_schedule(self):
        schedule = CrashSchedule.none()
        assert schedule.total_crashes == 0
        assert schedule.crashes_at(10) == []

    def test_uniform_schedule_covers_all_workers(self):
        names = [worker_name(i) for i in range(5)]
        schedule = CrashSchedule.uniform(names, total_iterations=100)
        assert schedule.total_crashes == 5
        assert set(schedule.all_victims()) == set(names)
        # One crash every I/N = 20 iterations, the first one not at iteration 0.
        iterations = sorted(schedule.crashes)
        assert iterations[0] == 20
        assert iterations[-1] <= 100

    def test_uniform_schedule_empty_workers(self):
        assert CrashSchedule.uniform([], 100).total_crashes == 0

    def test_uniform_invalid_iterations(self):
        with pytest.raises(ValueError):
            CrashSchedule.uniform(["w"], 0)

    def test_random_schedule_fraction(self, rng):
        names = [worker_name(i) for i in range(10)]
        schedule = CrashSchedule.random(names, 50, crash_fraction=0.4, rng=rng)
        assert schedule.total_crashes == 4
        with pytest.raises(ValueError):
            CrashSchedule.random(names, 50, crash_fraction=1.5, rng=rng)


class TestCluster:
    def test_membership(self):
        cluster = Cluster(num_workers=3)
        assert cluster.num_workers == 3
        assert len(cluster.alive_workers()) == 3
        assert cluster.server.name == SERVER_NAME
        assert cluster.worker(worker_name(1)).name == worker_name(1)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)

    def test_apply_crashes(self):
        schedule = CrashSchedule({5: [worker_name(0), worker_name(2)]})
        cluster = Cluster(num_workers=3, crash_schedule=schedule)
        assert cluster.apply_crashes(4) == []
        crashed = cluster.apply_crashes(5)
        assert set(crashed) == {worker_name(0), worker_name(2)}
        assert len(cluster.alive_workers()) == 1
        # Applying again at the same iteration is a no-op (already crashed).
        assert cluster.apply_crashes(5) == []

    def test_event_log(self):
        cluster = Cluster(num_workers=2)
        cluster.log(1, "swap", worker_name(0), "sent parameters")
        cluster.log(2, "crash", worker_name(1))
        assert len(cluster.events_of_kind("swap")) == 1
        assert cluster.events_of_kind("crash")[0].iteration == 2

    def test_worker_server_communication_metered(self):
        cluster = Cluster(num_workers=2)
        cluster.server.send(
            worker_name(0), MessageKind.GENERATED_BATCHES, np.zeros(8), iteration=1
        )
        assert cluster.meter.node_egress(SERVER_NAME) == 32

"""Tests for the iteration wall-clock estimator."""

import pytest

from repro.simulation import (
    HardwareProfile,
    LinkModel,
    estimate_iteration_time,
)

PAPER_MLP = dict(
    generator_params=716_560,
    discriminator_params=670_219,
    object_size=784,
    batch_size=10,
    num_workers=10,
)


class TestHardwareProfile:
    def test_presets(self):
        assert HardwareProfile.datacenter().worker_flops_per_s > HardwareProfile.edge().worker_flops_per_s

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareProfile(server_flops_per_s=0)


class TestEstimator:
    def test_total_is_sum_of_phases(self):
        timeline = estimate_iteration_time("md-gan", **PAPER_MLP)
        parts = timeline.as_dict()
        total = parts.pop("total_s")
        assert total == pytest.approx(sum(parts.values()))
        assert all(v >= 0 for v in parts.values())

    def test_mdgan_worker_phase_cheaper_than_flgan(self):
        """MD-GAN removes the generator pass from the workers.

        With L=1 discriminator steps the per-iteration worker compute drops
        from ~(2 disc + 1 gen) passes to ~(2 disc + 1 feedback) passes, i.e.
        a reduction of ~|w| * 3b operations (25% here, and the full factor-two
        of Table II when counting the memory footprint / model hosting).
        """
        mdgan = estimate_iteration_time("md-gan", **PAPER_MLP)
        flgan = estimate_iteration_time("fl-gan", **PAPER_MLP)
        assert mdgan.worker_compute_s < 0.85 * flgan.worker_compute_s

    def test_mdgan_pays_communication_every_iteration(self):
        mdgan = estimate_iteration_time("md-gan", **PAPER_MLP)
        flgan_between_rounds = estimate_iteration_time("fl-gan", **PAPER_MLP)
        assert mdgan.downlink_s > 0 and mdgan.uplink_s > 0
        # Between federated rounds FL-GAN communicates nothing.
        assert flgan_between_rounds.downlink_s == 0
        assert flgan_between_rounds.uplink_s == 0

    def test_flgan_round_iteration_ships_full_models(self):
        flgan_round = estimate_iteration_time(
            "fl-gan", swap_this_iteration=True, **PAPER_MLP
        )
        mdgan = estimate_iteration_time("md-gan", **PAPER_MLP)
        # Shipping ~1.4M parameters dwarfs shipping 2 batches of 10 MNIST images.
        assert flgan_round.downlink_s > mdgan.downlink_s

    def test_swap_only_charged_when_requested(self):
        without = estimate_iteration_time("md-gan", **PAPER_MLP)
        with_swap = estimate_iteration_time(
            "md-gan", swap_this_iteration=True, **PAPER_MLP
        )
        assert without.swap_s == 0
        assert with_swap.swap_s > 0
        assert with_swap.total_s > without.total_s

    def test_slower_links_increase_communication_share(self):
        fast = estimate_iteration_time("md-gan", link=LinkModel.datacenter(), **PAPER_MLP)
        slow = estimate_iteration_time("md-gan", link=LinkModel.edge(), **PAPER_MLP)
        assert slow.downlink_s > fast.downlink_s
        assert slow.total_s > fast.total_s

    def test_edge_hardware_slows_worker_phase(self):
        dc = estimate_iteration_time("md-gan", hardware=HardwareProfile.datacenter(), **PAPER_MLP)
        edge = estimate_iteration_time("md-gan", hardware=HardwareProfile.edge(), **PAPER_MLP)
        assert edge.worker_compute_s > dc.worker_compute_s
        assert edge.server_generate_s == dc.server_generate_s

    def test_validation(self):
        with pytest.raises(ValueError, match="algorithm"):
            estimate_iteration_time("gossip-gan", **PAPER_MLP)
        bad = dict(PAPER_MLP)
        bad["batch_size"] = 0
        with pytest.raises(ValueError):
            estimate_iteration_time("md-gan", **bad)

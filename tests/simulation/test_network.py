"""Unit tests for the simulated network, link model and traffic meter."""

import numpy as np
import pytest

from repro.simulation import (
    LinkModel,
    Message,
    MessageKind,
    NodeDisconnected,
    SimulatedNetwork,
    TrafficMeter,
)


def make_net(*nodes, link_model=None):
    net = SimulatedNetwork(link_model=link_model)
    for node in nodes:
        net.register(node)
    return net


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_bytes_per_s=1000.0, latency_s=0.5)
        assert link.transfer_time(2000) == pytest.approx(2.5)

    def test_presets_ordering(self):
        # Edge links are slower than WAN, which is slower than datacenter.
        nbytes = 10_000_000
        assert (
            LinkModel.datacenter().transfer_time(nbytes)
            < LinkModel.wan().transfer_time(nbytes)
            < LinkModel.edge().transfer_time(nbytes)
        )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(1000.0).transfer_time(-1)

    def test_nonpositive_bandwidth_rejected_at_construction(self):
        # A zero bandwidth would divide by zero inside transfer_time; it must
        # fail at construction, not on first use.
        with pytest.raises(ValueError, match="bandwidth_bytes_per_s"):
            LinkModel(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError, match="bandwidth_bytes_per_s"):
            LinkModel(bandwidth_bytes_per_s=-125.0)

    def test_negative_latency_rejected_at_construction(self):
        with pytest.raises(ValueError, match="latency_s"):
            LinkModel(bandwidth_bytes_per_s=1000.0, latency_s=-0.1)

    def test_presets_pass_validation(self):
        for preset in (LinkModel.datacenter(), LinkModel.wan(), LinkModel.edge()):
            assert preset.bandwidth_bytes_per_s > 0
            assert preset.latency_s >= 0


class TestRouting:
    def test_send_and_receive(self):
        net = make_net("a", "b")
        msg = Message("a", "b", MessageKind.CONTROL, np.zeros(3))
        assert net.send(msg)
        received = net.receive("b")
        assert len(received) == 1 and received[0] is msg
        assert net.receive("b") == []

    def test_receive_filters_by_kind(self):
        net = make_net("a", "b")
        net.send(Message("a", "b", MessageKind.CONTROL))
        net.send(Message("a", "b", MessageKind.ERROR_FEEDBACK, np.zeros(2)))
        feedback = net.receive("b", kind=MessageKind.ERROR_FEEDBACK)
        assert len(feedback) == 1
        assert net.pending("b") == 1  # the control message remains queued

    def test_unknown_nodes_raise(self):
        net = make_net("a")
        with pytest.raises(KeyError):
            net.send(Message("a", "ghost", MessageKind.CONTROL))
        with pytest.raises(KeyError):
            net.receive("ghost")

    def test_transfer_time_tracked_with_link_model(self):
        net = make_net("a", "b", link_model=LinkModel(100.0, 1.0))
        net.send(Message("a", "b", MessageKind.CONTROL, np.zeros(25)))  # 100 bytes
        assert net.transfer_time["b"] == pytest.approx(2.0)


class TestDisconnection:
    def test_messages_to_crashed_node_are_dropped(self):
        net = make_net("a", "b")
        net.disconnect("b")
        delivered = net.send(Message("a", "b", MessageKind.CONTROL))
        assert not delivered
        assert net.dropped_messages == 1

    def test_crashed_node_cannot_send_or_receive(self):
        net = make_net("a", "b")
        net.disconnect("a")
        with pytest.raises(NodeDisconnected):
            net.send(Message("a", "b", MessageKind.CONTROL))
        with pytest.raises(NodeDisconnected):
            net.receive("a")

    def test_pending_mail_cleared_on_disconnect(self):
        net = make_net("a", "b")
        net.send(Message("a", "b", MessageKind.CONTROL))
        net.disconnect("b")
        assert net.pending("b") == 0

    def test_connected_nodes_listing(self):
        net = make_net("a", "b", "c")
        net.disconnect("b")
        assert sorted(net.connected_nodes()) == ["a", "c"]


class TestTrafficMeter:
    def test_per_kind_and_per_node_accounting(self):
        net = make_net("server", "w0", "w1")
        net.send(Message("server", "w0", MessageKind.GENERATED_BATCHES, np.zeros(10), iteration=1))
        net.send(Message("server", "w1", MessageKind.GENERATED_BATCHES, np.zeros(10), iteration=1))
        net.send(Message("w0", "server", MessageKind.ERROR_FEEDBACK, np.zeros(5), iteration=1))
        meter = net.meter
        assert meter.total_messages() == 3
        assert meter.total_bytes(MessageKind.GENERATED_BATCHES) == 80
        assert meter.total_bytes(MessageKind.ERROR_FEEDBACK) == 20
        assert meter.node_ingress("server") == 20
        assert meter.node_egress("server") == 80
        assert meter.node_ingress("w0", MessageKind.GENERATED_BATCHES) == 40

    def test_ingress_by_iteration_and_max(self):
        meter = TrafficMeter()
        meter.record(Message("s", "w0", MessageKind.GENERATED_BATCHES, np.zeros(10), iteration=1))
        meter.record(Message("s", "w0", MessageKind.GENERATED_BATCHES, np.zeros(30), iteration=2))
        assert meter.max_ingress_per_iteration(["w0"]) == 120

    def test_summary_rows_and_reset(self):
        net = make_net("a", "b")
        net.send(Message("a", "b", MessageKind.CONTROL, np.zeros(1)))
        rows = net.meter.summary_rows()
        assert rows and rows[0]["sender"] == "a"
        net.reset_traffic()
        assert net.meter.total_messages() == 0
        assert net.transfer_time == {}

    def test_bytes_by_kind_dict(self):
        meter = TrafficMeter()
        meter.record(Message("a", "b", MessageKind.MODEL_UPDATE, np.zeros(2)))
        meter.record(Message("a", "b", MessageKind.MODEL_UPDATE, np.zeros(3)))
        by_kind = meter.bytes_by_kind()
        assert by_kind[MessageKind.MODEL_UPDATE] == 20
        assert meter.messages_by_kind()[MessageKind.MODEL_UPDATE] == 2

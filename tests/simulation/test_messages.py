"""Unit tests for message typing and payload byte accounting."""

import numpy as np
import pytest

from repro.simulation import Message, MessageKind, payload_nbytes


class TestPayloadBytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_array_counts_four_bytes_per_value(self):
        assert payload_nbytes(np.zeros((10, 3, 2))) == 60 * 4

    def test_nested_containers(self):
        payload = {"a": np.zeros(5), "b": [np.zeros(2), np.zeros(3)]}
        assert payload_nbytes(payload) == (5 + 2 + 3) * 4

    def test_scalars_count_one_float(self):
        assert payload_nbytes(3) == 4
        assert payload_nbytes(2.5) == 4
        assert payload_nbytes(True) == 4

    def test_strings_count_utf8_bytes(self):
        assert payload_nbytes("abcd") == 4

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestMessage:
    def test_nbytes_computed_from_payload(self):
        msg = Message("a", "b", MessageKind.ERROR_FEEDBACK, np.zeros((4, 8)))
        assert msg.nbytes == 32 * 4

    def test_kind_coercion_from_string(self):
        msg = Message("a", "b", "error_feedback", None)
        assert msg.kind is MessageKind.ERROR_FEEDBACK

    def test_ids_are_unique_and_increasing(self):
        a = Message("x", "y", MessageKind.CONTROL)
        b = Message("x", "y", MessageKind.CONTROL)
        assert b.msg_id > a.msg_id

    def test_metadata_not_counted_in_bytes(self):
        with_meta = Message(
            "a", "b", MessageKind.GENERATED_BATCHES, np.zeros(10),
            metadata={"labels": np.zeros(10)},
        )
        without = Message("a", "b", MessageKind.GENERATED_BATCHES, np.zeros(10))
        assert with_meta.nbytes == without.nbytes

    def test_kinds_cover_all_paper_communications(self):
        values = {k.value for k in MessageKind}
        assert {
            "generated_batches",
            "error_feedback",
            "discriminator_swap",
            "model_broadcast",
            "model_update",
        } <= values

#!/usr/bin/env python3
"""Communication planning: when is MD-GAN cheaper than FL-GAN on the wire?

Uses the analytic communication model (paper Tables III/IV and Figure 2) to
answer the deployment question the paper raises: given a GAN architecture, a
dataset geometry and a batch size, which scheme moves fewer bytes per
iteration at the workers and at the server, and where is the crossover?

The script also estimates per-iteration transfer times for the three
deployment profiles the paper motivates (datacenter, geo-distributed WAN,
edge devices).

Run::

    python examples/communication_planning.py [--workers 10] [--batch-size 10]
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    CommunicationInputs,
    crossover_batch_size,
    ingress_traffic_per_iteration,
    ingress_traffic_sweep,
    table4_costs,
)
from repro.experiments import format_table, paper_architecture_params
from repro.datasets import CIFAR10_SPEC, MNIST_SPEC
from repro.simulation import LinkModel


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=10)
    parser.add_argument("--batch-size", type=int, default=10)
    parser.add_argument(
        "--architecture",
        default="cifar10-cnn",
        choices=("mnist-mlp", "mnist-cnn", "cifar10-cnn"),
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    params = paper_architecture_params()[args.architecture]
    spec = MNIST_SPEC if args.architecture.startswith("mnist") else CIFAR10_SPEC
    inputs = CommunicationInputs(
        generator_params=params["generator"],
        discriminator_params=params["discriminator"],
        object_size=spec.object_size,
        batch_size=args.batch_size,
        num_workers=args.workers,
        iterations=50_000,
        local_dataset_size=spec.train_size // args.workers,
    )

    print(f"architecture: {args.architecture}  "
          f"(|w|={params['generator']:,}, |theta|={params['discriminator']:,}, "
          f"d={spec.object_size} floats)")
    print(f"N={args.workers} workers, b={args.batch_size}\n")

    print("Per-communication costs (MB), paper Table IV layout:")
    costs = table4_costs(inputs)
    rows = [
        {"communication": row, "fl-gan": values["fl-gan"], "md-gan": values["md-gan"]}
        for row, values in costs.items()
    ]
    print(format_table(["communication", "fl-gan", "md-gan"], rows))

    crossover = crossover_batch_size(inputs)
    print(f"\nworker-side crossover batch size: b* ~= {crossover:.0f} images")
    print("below b*, MD-GAN moves fewer bytes per communication at a worker\n")

    print("Per-iteration worker ingress (bytes) across batch sizes (Figure 2):")
    sweep_rows = ingress_traffic_sweep(inputs, [1, 10, 50, 100, 500, 1000, 5000])
    print(format_table(
        ["batch_size", "mdgan_worker", "flgan_worker", "mdgan_server", "flgan_server"],
        sweep_rows,
    ))

    print("\nEstimated transfer time per communication at a worker:")
    traffic = ingress_traffic_per_iteration(inputs)
    link_rows = []
    for link in (LinkModel.datacenter(), LinkModel.wan(), LinkModel.edge()):
        link_rows.append(
            {
                "link": link.name,
                "md-gan (s)": link.transfer_time(int(traffic["worker"]["md-gan"])),
                "fl-gan (s)": link.transfer_time(int(traffic["worker"]["fl-gan"])),
            }
        )
    print(format_table(["link", "md-gan (s)", "fl-gan (s)"], link_rows))
    print(
        "\nNote: FL-GAN pays its cost once per federated round (m*E/b iterations),\n"
        "MD-GAN pays per iteration — multiply by the round counts of Table III to\n"
        "compare end-to-end volumes."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare MD-GAN, FL-GAN and the standalone GAN on the MNIST-like dataset.

This reproduces a scaled-down cell of the paper's Figure 3: the three
competitors are trained on the same (synthetic) MNIST-like data with the MLP
architecture and an i.i.d. split over the workers, and their dataset-score /
FID trajectories plus communication footprints are reported side by side.

Run::

    python examples/mnist_distributed_comparison.py [--scale smoke|small]
"""

from __future__ import annotations

import argparse

from repro.experiments import format_table, get_scale, run_fig3


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("smoke", "small", "paper"),
        help="experiment scale preset (smoke: seconds, small: minutes)",
    )
    parser.add_argument(
        "--dataset",
        default="mnist",
        choices=("mnist", "cifar10"),
        help="dataset / architecture cell of Figure 3 to reproduce",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = get_scale(args.scale)
    architecture = "mnist-mlp" if args.dataset == "mnist" else "cifar10-cnn"

    print(
        f"Reproducing Figure 3 cell: {args.dataset} / {architecture} "
        f"({scale.num_workers} workers, {scale.iterations} iterations, scale={scale.name})"
    )
    result = run_fig3(dataset=args.dataset, architecture=architecture, scale=scale)
    print()
    print(result.to_text())

    # Per-competitor summary: final scores and total communication.
    histories = result.extras["histories"]
    summary = []
    for name, history in histories.items():
        evaluations = history["evaluations"]
        final = evaluations[-1] if evaluations else {"score": float("nan"), "fid": float("nan")}
        summary.append(
            {
                "competitor": name,
                "final_score": final["score"],
                "final_fid": final["fid"],
                "total_MB": history["traffic"].get("total_bytes", 0.0) / 2**20,
            }
        )
    summary.sort(key=lambda row: row["final_fid"])
    print()
    print("Summary (sorted by final FID, lower is better):")
    print(format_table(["competitor", "final_score", "final_fid", "total_MB"], summary))
    print()
    print(
        "Expected shape (paper, Figure 3): MD-GAN matches or beats FL-GAN at the\n"
        "same batch size, and larger batches help the standalone baseline.  The\n"
        "standalone GAN ships no data at all, FL-GAN pays per federated round,\n"
        "MD-GAN pays per iteration but only b*d-sized messages."
    )


if __name__ == "__main__":
    main()

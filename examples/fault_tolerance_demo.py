#!/usr/bin/env python3
"""Fault-tolerance demo: MD-GAN under rolling worker crashes (paper Figure 5).

One worker fail-stop crashes every ``I / N`` iterations, taking its local data
share with it.  The script compares the crashing run against an identical run
without crashes and prints the crash timeline, the score/FID trajectories and
the amount of data lost.

Run::

    python examples/fault_tolerance_demo.py [--workers 6] [--iterations 600]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.metrics import GeneratorEvaluator
from repro.models import build_toy_gan
from repro.simulation import CrashSchedule, worker_name


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=6)
    parser.add_argument("--iterations", type=int, default=600)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    return parser.parse_args()


def run(trainer: MDGANTrainer, label: str) -> None:
    history = trainer.train()
    print(f"\n--- {label} ---")
    for evaluation in history.evaluations:
        print(
            f"  iteration {evaluation.iteration:>5}: "
            f"score={evaluation.score:.3f}  fid={evaluation.fid:.3f}"
        )
    crashes = history.events_of_kind("crash")
    if crashes:
        timeline = ", ".join(f"{c['worker']}@{c['iteration']}" for c in crashes)
        print(f"  crashes: {timeline}")
        alive = len(trainer._alive_workers())
        print(f"  workers alive at the end: {alive}/{len(trainer.workers)}")


def main() -> None:
    args = parse_args()
    rng = np.random.default_rng(args.seed)

    train, test = make_gaussian_ring(n_train=2400, n_test=400, seed=args.seed)
    shards = partition_iid(train, args.workers, rng)
    evaluator = GeneratorEvaluator.from_datasets(
        train, test, sample_size=300, classifier_epochs=6, seed=args.seed
    )
    factory = build_toy_gan(num_classes=train.num_classes)
    config = TrainingConfig(
        iterations=args.iterations,
        batch_size=args.batch_size,
        epochs_per_swap=1.0,
        eval_every=max(1, args.iterations // 5),
        eval_sample_size=300,
        seed=args.seed,
    )

    schedule = CrashSchedule.uniform(
        [worker_name(i) for i in range(args.workers)], args.iterations
    )
    print(
        f"crash schedule: one of {args.workers} workers crashes every "
        f"{args.iterations // args.workers} iterations; each crash removes "
        f"{len(shards[0])} training samples from the system"
    )

    run(
        MDGANTrainer(factory, shards, config, evaluator=evaluator, crash_schedule=schedule),
        "MD-GAN with rolling crashes",
    )
    run(
        MDGANTrainer(factory, shards, config, evaluator=evaluator),
        "MD-GAN without crashes (reference)",
    )

    print(
        "\nExpected shape (paper, Figure 5): on easy datasets the crash run keeps\n"
        "up with the reference because the generator learns the distribution\n"
        "before too much data disappears; on harder datasets early crashes hurt\n"
        "because the lost shards were never fully exploited."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: train MD-GAN on a toy distributed dataset in under a minute.

This example walks through the full MD-GAN pipeline on the small "Gaussian
ring" dataset:

1. build a synthetic dataset and split it i.i.d. over ``N`` workers,
2. train the frozen score classifier used for evaluation (dataset score + FID),
3. train MD-GAN — one generator on the emulated server, one discriminator per
   worker, error-feedback aggregation and periodic discriminator swaps,
4. print the score/FID trajectory and the measured communication volume.

Run::

    python examples/quickstart.py [--workers 4] [--iterations 400]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.metrics import GeneratorEvaluator
from repro.models import build_toy_gan


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4, help="number of workers N")
    parser.add_argument("--iterations", type=int, default=400, help="global iterations I")
    parser.add_argument("--batch-size", type=int, default=16, help="batch size b")
    parser.add_argument("--k", type=int, default=2, help="generated batches per iteration")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = np.random.default_rng(args.seed)

    # 1. Data: an 8-mode ring of Gaussian blobs, split i.i.d. over the workers.
    train, test = make_gaussian_ring(n_train=2000, n_test=400, seed=args.seed)
    shards = partition_iid(train, args.workers, rng)
    print(f"dataset: {train.name}, {len(train)} samples, "
          f"{args.workers} workers x {len(shards[0])} samples")

    # 2. Evaluation: a frozen classifier provides the dataset score and FID.
    evaluator = GeneratorEvaluator.from_datasets(
        train, test, sample_size=300, classifier_epochs=6, seed=args.seed
    )
    print(f"score classifier accuracy: {evaluator.classifier.accuracy(test):.3f}")
    reference = evaluator.evaluate_dataset(test)
    print(f"real-data reference: score={reference.score:.3f} fid={reference.fid:.3f}")

    # 3. MD-GAN training.
    factory = build_toy_gan(num_classes=train.num_classes)
    config = TrainingConfig(
        iterations=args.iterations,
        batch_size=args.batch_size,
        num_batches=args.k,
        epochs_per_swap=1.0,
        eval_every=max(1, args.iterations // 4),
        eval_sample_size=300,
        seed=args.seed,
    )
    trainer = MDGANTrainer(factory, shards, config, evaluator=evaluator)
    print(f"\ntraining MD-GAN: I={config.iterations}, b={config.batch_size}, "
          f"k={trainer.num_batches}, swap every {trainer.swap_period} iterations")
    history = trainer.train()

    # 4. Results.
    print("\nscore / FID trajectory:")
    for evaluation in history.evaluations:
        print(f"  iteration {evaluation.iteration:>5}: "
              f"score={evaluation.score:.3f}  fid={evaluation.fid:.3f}  "
              f"modes={evaluation.modes_covered}/{train.num_classes}")

    traffic = history.traffic
    print("\nmeasured communication:")
    print(f"  server -> workers (generated batches): {traffic['generated_batch_bytes'] / 1e6:.2f} MB")
    print(f"  workers -> server (error feedback):    {traffic['feedback_bytes'] / 1e6:.2f} MB")
    print(f"  worker <-> worker (discriminator swap): {traffic['swap_bytes'] / 1e6:.2f} MB")
    print(f"  swaps performed: {len(history.events_of_kind('swap'))}")


if __name__ == "__main__":
    main()

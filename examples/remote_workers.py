#!/usr/bin/env python3
"""Remote-worker demo: MD-GAN with pool slots served over TCP sockets.

The paper's deployment shape is one parameter server driving ``N`` worker
discriminators on other machines.  The resident pool reproduces it with the
``tcp`` transport: the server binds ``HOST:PORT``, and every pool slot is a
worker-host process that connected to it — on this machine or any other.

Three ways to run this script:

* ``python examples/remote_workers.py`` — self-contained demo: starts the
  worker side as a subprocess of this script, trains over localhost
  sockets, verifies the run is **bitwise identical** to a serial run, and
  prints the per-op bytes that crossed the wire.
* two terminals (the real deployment shape)::

      # terminal 1 — the server; blocks until both slots connect
      python examples/remote_workers.py server --port 5555

      # terminal 2 — serve both pool slots (run on any reachable machine)
      python examples/remote_workers.py worker --port 5555

  The ``worker`` role is a thin wrapper around the real entrypoint,
  ``python -m repro.runtime.worker_host --connect HOST:PORT --slots 2``,
  which you can use directly instead.  Start either side first: the worker
  host retries while the server is not yet listening.

Expected demo output (shape, not exact numbers)::

    server: listening on 127.0.0.1:44343, waiting for 2 worker slot(s)
    worker-host: serving slot 0 of 2 (session 97ac55eb785139e0) for 127.0.0.1:44343
    worker-host: serving slot 1 of 2 (session 97ac55eb785139e0) for 127.0.0.1:44343
    trained 3 iterations over tcp in 0.69s
    run-op bytes: 13439350 sent / 201384 received across 3 iterations
    bitwise identical to the serial reference: True
"""

from __future__ import annotations

import argparse
import multiprocessing
import socket
import subprocess
import sys
import time

import numpy as np

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture
from repro.runtime.worker_host import run_worker

NUM_WORKERS = 4  # MD-GAN worker discriminators (shards)
NUM_SLOTS = 2  # pool slots serving them (workers map index % slots)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "role",
        nargs="?",
        default="demo",
        choices=("demo", "server", "worker"),
        help="demo = both sides in one command; server/worker = one side each",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5555)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def build_problem(seed: int):
    """A small 4-worker MD-GAN problem (synthetic MNIST-like, MLP cells)."""
    train, _ = make_mnist_like(n_train=512, n_test=64, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-mlp", image_shape=train.spec.shape, num_classes=train.num_classes
    )
    shards = partition_iid(train, NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


def run_server(args: argparse.Namespace) -> int:
    factory, shards = build_problem(args.seed)
    config = TrainingConfig(
        iterations=args.iterations,
        batch_size=16,
        seed=args.seed,
        backend="resident",
        max_workers=NUM_SLOTS,
        transport="tcp",
        transport_address=f"{args.host}:{args.port}",
    )
    print(
        f"server: listening on {args.host}:{args.port}, waiting for "
        f"{NUM_SLOTS} worker slot(s)",
        flush=True,
    )
    start = time.perf_counter()
    with MDGANTrainer(factory, shards, config) as trainer:
        trainer.train()
        elapsed = time.perf_counter() - start
        backend = trainer.executor
        sent = backend.op_bytes_sent["run"]
        received = backend.op_bytes_received["run"]
        tcp_params = trainer.generator.get_parameters()
    print(f"trained {args.iterations} iterations over tcp in {elapsed:.2f}s")
    print(
        f"run-op bytes: {sent} sent / {received} received across "
        f"{args.iterations} iterations"
    )

    # The transport is bitwise-neutral: the same seeded run on the serial
    # reference produces the identical generator, bit for bit.
    serial_config = config.with_overrides(
        backend="serial", transport=None, transport_address=None
    )
    serial = MDGANTrainer(factory, shards, serial_config)
    serial.train()
    identical = np.array_equal(tcp_params, serial.generator.get_parameters())
    print(f"bitwise identical to the serial reference: {identical}")
    return 0 if identical else 1


def run_worker_role(args: argparse.Namespace) -> int:
    # run_worker retries while the server is not yet listening, so the
    # worker side can safely start first.
    address = (args.host, args.port)
    processes = [
        multiprocessing.get_context().Process(
            target=run_worker, args=(address,), kwargs={"quiet": False}
        )
        for _ in range(NUM_SLOTS)
    ]
    for process in processes:
        process.start()
    exit_code = 0
    for process in processes:
        process.join()
        exit_code = exit_code or (process.exitcode or 0)
    return exit_code


def run_demo(args: argparse.Namespace) -> int:
    # Pick a free port so repeated demo runs never collide.
    with socket.socket() as probe:
        probe.bind((args.host, 0))
        args.port = probe.getsockname()[1]
    worker = subprocess.Popen(
        [
            sys.executable,
            __file__,
            "worker",
            "--host",
            args.host,
            "--port",
            str(args.port),
        ]
    )
    try:
        exit_code = run_server(args)
        return exit_code or worker.wait(timeout=30)
    finally:
        if worker.poll() is None:
            worker.kill()
            worker.wait()


def main() -> int:
    args = parse_args()
    if args.role == "server":
        return run_server(args)
    if args.role == "worker":
        return run_worker_role(args)
    return run_demo(args)


if __name__ == "__main__":
    sys.exit(main())

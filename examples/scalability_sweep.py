#!/usr/bin/env python3
"""Scalability sweep: MD-GAN quality vs the number of workers (paper Figure 4).

Splits the same dataset over an increasing number of workers (so each local
shard shrinks as ``|B| / N``) and reports the final dataset score / FID for
four MD-GAN configurations: swap on/off crossed with constant-worker vs
constant-server workload.

Run::

    python examples/scalability_sweep.py [--scale smoke|small]
                                         [--backend serial|thread|process]

The ``--backend`` flag fans the per-worker phase out through the
``repro.runtime`` execution backends; the numbers are bitwise identical
across backends, only the wall-clock time changes.
"""

from __future__ import annotations

import argparse

from repro.experiments import format_table, get_scale, run_fig4
from repro.runtime import BACKENDS


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=("smoke", "small", "paper"))
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=None,
        help="explicit ladder of worker counts (default depends on the scale)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKENDS,
        help="execution backend for the per-worker phase (same results, "
        "different wall-clock)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="pool size for the thread/process backends (default: cores - 1)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = get_scale(args.scale)
    worker_counts = tuple(args.workers) if args.workers else None

    print(
        f"Figure 4 sweep on the MNIST-like dataset / MLP architecture "
        f"(scale={scale.name}, {scale.iterations} iterations per point)"
    )
    result = run_fig4(
        scale=scale,
        worker_counts=worker_counts,
        backend=args.backend,
        max_workers=args.max_workers,
    )
    print()
    print(
        format_table(
            ["num_workers", "mode", "swap", "batch_size", "local_shard_size", "score", "fid"],
            result.rows,
        )
    )
    for note in result.notes:
        print(f"\nnote: {note}")
    print(
        "\nExpected shape (paper, Figure 4): beyond a handful of workers the\n"
        "constant-worker-workload curves dominate the constant-server ones (the\n"
        "server simply sees more data per iteration), and enabling the swap\n"
        "improves the score because discriminators stop overfitting their shard."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pipelined execution demo: overlap server generation with worker compute.

Runs the same 8-worker MD-GAN conv-model training twice on the ``resident``
backend — once with the strictly phase-serial synchronous schedule
(``pipeline_depth=0``, the default) and once pipelined one iteration deep
(``pipeline_depth=1``) — and reports:

* wall-clock time of both runs (on a multi-core host the pipelined run wins,
  because the server generates iteration ``t+1``'s k batches while the pool
  is busy with iteration ``t``'s discriminator steps);
* the per-iteration batch **staleness** the pipelined run recorded — the
  price of the overlap: each batch set was produced by a generator missing
  up to ``depth`` feedback updates;
* the loss trajectories, so the bounded divergence is visible rather than
  hidden.

Run::

    python examples/pipeline_speedup.py [--workers 8] [--iterations 6] [--depth 1]

Expected output (shape, not exact numbers — timings vary with the host; on a
single-core machine the speedup hovers around 1.0x)::

    training: md-gan, 8 workers, k=8, conv generator (~... params)
    synchronous resident   :  4.21s   staleness: none (phase-serial)
    pipelined depth=1      :  3.37s   staleness: [0, 1, 1, 1, 1, 1]
    speedup: 1.25x
    overlap summary: {'pipeline_depth': 1.0, 'lookahead_generations': 5.0, ...}
    final gen loss   sync=0.6931  pipelined=0.6918  (differ: staleness is real)
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8, help="number of workers N")
    parser.add_argument("--iterations", type=int, default=6, help="global iterations I")
    parser.add_argument("--batch-size", type=int, default=16, help="batch size b")
    parser.add_argument(
        "--depth", type=int, default=1, help="pipeline depth for the pipelined run"
    )
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def build_trainer(args, factory, shards, depth: int) -> MDGANTrainer:
    config = TrainingConfig(
        iterations=args.iterations,
        batch_size=args.batch_size,
        num_batches=args.workers,  # k = N: the paper's max generation load
        seed=args.seed,
        backend="resident",
        max_workers=args.workers,
        pipeline_depth=depth,
    )
    return MDGANTrainer(factory, shards, config)


def timed_train(trainer: MDGANTrainer):
    start = time.perf_counter()
    history = trainer.train()
    return time.perf_counter() - start, history


def main() -> None:
    args = parse_args()

    # The paper's MNIST CNN cell, at reduced width so the demo stays quick.
    train, _ = make_mnist_like(n_train=80 * args.workers, n_test=160, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-cnn",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        width_factor=0.5,
        use_minibatch_discrimination=False,
    )
    shards = partition_iid(train, args.workers, np.random.default_rng(3))

    probe = factory.make_generator(np.random.default_rng(0))
    print(
        f"training: md-gan, {args.workers} workers, k={args.workers}, "
        f"conv generator (~{probe.num_parameters:,} params)"
    )

    # Warm-up run so pool spin-up does not bias the first measurement.
    timed_train(build_trainer(args, factory, shards, depth=0))

    sync_time, sync_history = timed_train(build_trainer(args, factory, shards, depth=0))
    pipe_time, pipe_history = timed_train(
        build_trainer(args, factory, shards, depth=args.depth)
    )

    print(
        f"synchronous resident   : {sync_time:6.2f}s   staleness: none (phase-serial)"
    )
    print(
        f"pipelined depth={args.depth:<2}     : {pipe_time:6.2f}s   "
        f"staleness: {pipe_history.staleness}"
    )
    print(f"speedup: {sync_time / pipe_time:.2f}x")
    print(f"overlap summary: {pipe_history.overlap}")
    print(
        f"final gen loss   sync={sync_history.generator_loss[-1]:.4f}  "
        f"pipelined={pipe_history.generator_loss[-1]:.4f}  "
        "(differ: staleness is real)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Generation-as-a-service demo: serve samples from a warm resident pool.

Builds a :class:`repro.serving.GeneratorService` on the resident backend and
walks its contracts end to end:

* **concurrent clients** — N threads issue seeded requests against the
  shared pool; the dispatcher coalesces them into k-batch dispatches, and
  a seeded request returns the same bits no matter the arrival order;
* **the versioned param cache** — after ``warmup()`` the byte meter shows
  zero generator parameter bytes shipped per request; ``update_generator``
  bumps the handle version and re-ships exactly once per slot;
* **checkpoint/restore** — the service snapshot round-trips through a file
  and a restored service (here onto the *serial* backend, simulating a
  restart on a different deployment) answers bitwise-identically.

Run::

    python examples/serve_demo.py [--clients 4] [--requests 8] [--workers 2]

Expected output (shape, not exact timings)::

    serving: mnist-mlp generator (~... params) on a 2-slot resident pool
    warmed 2 slots: N param bytes shipped, now steady
    32 requests from 4 clients: ... samples/s, p50=...ms p95=...ms
    param bytes during the measured window: 0
    seeded request is reproducible: True
    after update_generator: 2 re-ships (... bytes), then steady again
    restored-from-checkpoint service matches: True
"""

from __future__ import annotations

import argparse
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core import TrainingConfig
from repro.datasets import make_mnist_like
from repro.models import build_architecture
from repro.serving import (
    GeneratorService,
    load_checkpoint,
    restore_service,
    save_checkpoint,
    service_checkpoint,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    parser.add_argument("--requests", type=int, default=8, help="requests per client")
    parser.add_argument("--workers", type=int, default=2, help="resident pool slots")
    parser.add_argument("--batch-size", type=int, default=16, help="samples per request")
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    train, _ = make_mnist_like(n_train=256, n_test=64, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-mlp", image_shape=train.spec.shape, num_classes=train.num_classes
    )
    generator = factory.make_generator(np.random.default_rng(args.seed))
    config = TrainingConfig(
        batch_size=args.batch_size,
        seed=args.seed,
        backend="resident",
        max_workers=args.workers,
    )
    print(
        f"serving: mnist-mlp generator (~{generator.num_parameters:,} params) "
        f"on a {args.workers}-slot resident pool"
    )

    with GeneratorService(generator, factory, config) as service:
        # One atomic pool-sized dispatch installs the generator and fills the
        # versioned param cache on every slot.
        service.warmup()
        pool = service.executor
        print(
            f"warmed {args.workers} slots: {pool.param_bytes_sent:,} param "
            "bytes shipped, now steady"
        )

        # Concurrent clients share the pool; per-request seeds make each
        # answer independent of arrival order.
        baseline = pool.param_bytes_sent

        def client(index: int) -> None:
            for i in range(args.requests):
                service.serve(seed=1 + index * 10_000 + i)

        with ThreadPoolExecutor(max_workers=args.clients) as executor:
            for future in [executor.submit(client, c) for c in range(args.clients)]:
                future.result()
        summary = service.stats.summary()
        print(
            f"{int(summary['requests'])} requests from {args.clients} clients: "
            f"{summary['samples_per_second']:,.0f} samples/s, "
            f"p50={summary['latency_p50_ms']:.2f}ms "
            f"p95={summary['latency_p95_ms']:.2f}ms"
        )
        print(
            "param bytes during the measured window: "
            f"{pool.param_bytes_sent - baseline}"
        )

        repeat = service.serve(seed=42)
        again = service.serve(seed=42)
        print(
            "seeded request is reproducible: "
            f"{np.array_equal(repeat.images, again.images)}"
        )

        # New weights invalidate the cache: exactly one re-ship per slot.
        baseline = pool.param_bytes_sent
        params = service.generator.get_parameters()
        service.update_generator((params * 0.9).astype(params.dtype))
        service.warmup()
        shipped = pool.param_bytes_sent - baseline
        print(
            f"after update_generator: {shipped // params.nbytes} re-ships "
            f"({shipped:,} bytes), then steady again"
        )

        # Checkpoint the service and a reference answer...
        checkpoint = service_checkpoint(service)
        expected = service.serve(seed=7)

    # ...then restore after the pool is gone — here onto the serial backend,
    # as a stand-in for a restart on a different deployment.  Same bits.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(checkpoint, Path(tmp) / "service.ckpt")
        restored = restore_service(
            load_checkpoint(path), config=config.with_overrides(backend="serial")
        )
        with restored:
            answer = restored.serve(seed=7)
    print(
        "restored-from-checkpoint service matches: "
        f"{np.array_equal(answer.images, expected.images)}"
    )


if __name__ == "__main__":
    main()

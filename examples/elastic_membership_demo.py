#!/usr/bin/env python3
"""Elastic membership demo: an FL-GAN pool surviving a mid-run slot loss.

A chaos schedule (the same deterministic fault harness the membership test
suite uses) disconnects one pool slot partway through training.  Under
``--policy degrade`` the lost worker is evicted at the next aggregation
boundary and its shard is redistributed across survivors; under
``--policy wait`` the round blocks while the pool heals the slot with a
replacement, and no worker is evicted.  The script prints the membership
event timeline, the final counters and the live shard sizes, and can write
the counters as JSON (the CI slow lane uploads that file alongside the
benchmark artifacts so elasticity behaviour can be diffed across PRs).

Run::

    python examples/elastic_membership_demo.py [--policy degrade]
        [--iterations 12] [--disconnect-frame 8] [--json-out FILE]
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.core import FLGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_toy_gan
from repro.runtime import ChaosAction, ChaosSchedule, ChaosTransport, ResidentBackend
from repro.runtime.resident import serve_slot
from repro.runtime.transport import LocalPipeTransport


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--policy", choices=("degrade", "wait"), default="degrade")
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument(
        "--disconnect-frame",
        type=int,
        default=8,
        help="per-slot outgoing frame index at which slot 1 is disconnected",
    )
    parser.add_argument("--json-out", default=None, metavar="FILE")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, 3, np.random.default_rng(3))
    config = TrainingConfig(
        iterations=args.iterations,
        batch_size=8,
        seed=11,
        backend="resident",
        max_workers=2,
        on_slot_loss=args.policy,
        min_workers=1,
        rejoin_backoff=0.1,
    )

    schedule = ChaosSchedule(
        (ChaosAction(slot=1, frame_index=args.disconnect_frame, kind="disconnect"),)
    )
    transport = ChaosTransport(LocalPipeTransport(serve_slot), schedule=schedule)
    backend = ResidentBackend(
        max_workers=config.max_workers,
        transport=transport,
        membership_policy=config.membership_policy(),
    )
    trainer = FLGANTrainer(factory, shards, config)
    trainer.adopt_backend(backend, owned=True)
    try:
        history = trainer.train()
    finally:
        trainer.close_backend()

    print(f"policy: {args.policy}   iterations: {args.iterations}")
    if len(schedule):
        print(
            f"note: the scheduled disconnect at frame {args.disconnect_frame} "
            "never fired (run too short for that frame index)"
        )
    print("\nmembership event timeline:")
    membership_events = [
        event
        for event in history.events
        if event["kind"] == "slot_loss" or event["kind"].startswith("membership_")
    ]
    for event in membership_events:
        extras = {k: v for k, v in event.items() if k not in ("iteration", "kind")}
        detail = "  ".join(f"{k}={v}" for k, v in sorted(extras.items()))
        print(f"  iter {event['iteration']:>3}  {event['kind']:<28} {detail}")
    if not membership_events:
        print("  (none — the pool saw no membership churn)")

    print("\nmembership counters:", dict(sorted(history.membership.items())))
    live = [
        (worker.index, len(worker.sampler))
        for worker in trainer.workers
        if trainer.cluster.workers[worker.index].alive
    ]
    print("live worker shard sizes:", {index: size for index, size in live})
    print(f"final mean generator loss (last 3): {history.mean_generator_loss(last=3):.4f}")

    if args.json_out:
        payload = {
            "policy": args.policy,
            "iterations": args.iterations,
            "counters": history.membership,
            "events": membership_events,
            "live_shard_sizes": {str(index): size for index, size in live},
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote counters to {args.json_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark: regenerate Figure 3 (score / FID vs iterations, six competitors).

The paper's Figure 3 compares the standalone GAN (b small / large), FL-GAN
(b small / large) and MD-GAN (k=1 / k=floor(log N)) on MNIST-MLP, MNIST-CNN
and CIFAR10-CNN.  At benchmark scale the absolute scores are far from the
paper's (tiny synthetic datasets, few iterations), but the qualitative shape
is asserted: MD-GAN stays competitive with (or beats) FL-GAN at the same
batch size, and every competitor trains to finite scores.
"""

import numpy as np
import pytest

from conftest import record_rows

from repro.experiments import run_fig3

pytestmark = pytest.mark.slow  # heavy convergence run; excluded from the fast lane


def _final(result, competitor, metric):
    rows = [r for r in result.rows if r["competitor"] == competitor]
    rows.sort(key=lambda r: r["iteration"])
    return rows[-1][metric]


@pytest.mark.paper_artifact("fig3")
def test_fig3_mnist_mlp_all_competitors(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(dataset="mnist", architecture="mnist-mlp", scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, result)
    assert all(np.isfinite(r["fid"]) and r["fid"] > 0 for r in result.rows)
    assert all(np.isfinite(r["score"]) and r["score"] >= 1.0 for r in result.rows)

    competitors = {r["competitor"] for r in result.rows}
    b_small = bench_scale.batch_size_small
    mdgan_best_fid = min(
        _final(result, name, "fid") for name in competitors if name.startswith("md-gan")
    )
    flgan_small_fid = _final(result, f"fl-gan-b{b_small}", "fid")
    standalone_small_fid = _final(result, f"standalone-b{b_small}", "fid")
    # Paper: MD-GAN matches or beats FL-GAN on MNIST (generous 1.5x margin at
    # benchmark scale).
    assert mdgan_best_fid <= 1.5 * flgan_small_fid
    # And stays in the same range as the standalone baseline.
    assert mdgan_best_fid <= 2.0 * standalone_small_fid

    benchmark.extra_info["final_fid"] = {
        name: _final(result, name, "fid") for name in sorted(competitors)
    }
    print()
    print(result.to_text())


@pytest.mark.paper_artifact("fig3")
@pytest.mark.parametrize(
    "dataset, architecture",
    [("mnist", "mnist-cnn"), ("cifar10", "cifar10-cnn")],
)
def test_fig3_cnn_cells(benchmark, bench_scale, dataset, architecture):
    b_small = bench_scale.batch_size_small
    competitors = [f"standalone-b{b_small}", f"fl-gan-b{b_small}", "md-gan-k1"]
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(
            dataset=dataset,
            architecture=architecture,
            scale=bench_scale,
            competitors=competitors,
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, result)
    assert {r["competitor"] for r in result.rows} == set(competitors)
    assert all(np.isfinite(r["fid"]) and r["fid"] > 0 for r in result.rows)
    benchmark.extra_info["final_fid"] = {
        name: _final(result, name, "fid") for name in competitors
    }
    print()
    print(result.to_text())

"""Benchmark: measured socket-transport bytes vs the Table III / LinkModel cost model.

Runs MD-GAN through the resident pool over both transports and pins the
backend's per-op byte meters against the paper's analytic communication
model, in a geometry chosen so the model is *exact*:

* ``num_batches = max_workers = N`` — every worker sits on its own pool slot
  and receives two **distinct** generated batches (``X_g = batches[n]``,
  ``X_d = batches[n+1 mod N]``), so pickle's object-graph dedup never merges
  payloads and the server->worker volume is exactly the Table III ``2bdN``
  floats per iteration (plus small pickle overhead).  At smaller ``k`` the
  same batch serves several workers and the measured bytes drop *below* the
  model — that regime is reported by ``experiments/traffic_check.py``; here
  we want the tight pin.
* Warm iterations only — install payloads (state, shards) ship once on the
  cold iteration and are excluded from the per-iteration figures.

Pinned claims:

* the pickled request/reply bytes are **identical across transports** (the
  frames are the same pickle streams; tcp only adds its 8-byte header, which
  the meter deliberately excludes — it counts protocol payload);
* warm per-iteration ``run`` bytes sit within [1.0, 1.35] of the analytic
  ``2bdN`` (sent) and ``bdN`` (received) predictions;
* measured loopback transfer time beats the wan/edge ``LinkModel``
  predictions for the same byte volume (sanity direction: the emulated links
  are slower than localhost).

All figures land in ``benchmark.extra_info`` for the CI slow lane's
``BENCH_<run>_<sha>.json`` artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import CommunicationInputs, table3_communication
from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture
from repro.nn.serialize import FLOAT_BYTES
from repro.simulation import LinkModel

pytestmark = [
    pytest.mark.slow,  # multi-transport training runs; excluded from the fast lane
    pytest.mark.paper_artifact("socket-transport"),
]

_NUM_WORKERS = 4
_BATCH_SIZE = 16
_ITERATIONS = 5  # 1 cold (installs) + 4 warm (measured)


@pytest.fixture(scope="module")
def mlp_setup():
    """A 4-worker MD-GAN whose run-op traffic matches Table III exactly."""
    train, _ = make_mnist_like(n_train=2048, n_test=64, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-mlp",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
    )
    shards = partition_iid(train, _NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


def _measure_run_op(mlp_setup, transport: str) -> dict:
    """Warm per-iteration 'run' op meters for one transport."""
    factory, shards = mlp_setup
    config = TrainingConfig(
        iterations=_ITERATIONS,
        batch_size=_BATCH_SIZE,
        num_batches=_NUM_WORKERS,  # k = N: two distinct batches per worker
        seed=11,
        backend="resident",
        max_workers=_NUM_WORKERS,  # one worker per slot: no shared-slot dedup
        transport=transport,
    )
    trainer = MDGANTrainer(factory, shards, config)
    try:
        trainer.train_iteration(1)  # cold: installs ship, excluded below
        backend = trainer.executor
        base = (
            backend.op_bytes_sent["run"],
            backend.op_bytes_received["run"],
            backend.op_transfer_seconds["run"],
        )
        for iteration in range(2, _ITERATIONS + 1):
            trainer.train_iteration(iteration)
        warm = _ITERATIONS - 1
        return {
            "sent": (backend.op_bytes_sent["run"] - base[0]) / warm,
            "received": (backend.op_bytes_received["run"] - base[1]) / warm,
            "seconds": (backend.op_transfer_seconds["run"] - base[2]) / warm,
        }
    finally:
        trainer.close()


def test_socket_bytes_match_cost_model(mlp_setup, benchmark):
    factory, shards = mlp_setup
    counts = factory.parameter_counts()
    analytic = table3_communication(
        CommunicationInputs(
            generator_params=counts["generator"],
            discriminator_params=counts["discriminator"],
            object_size=factory.object_size,
            batch_size=_BATCH_SIZE,
            num_workers=_NUM_WORKERS,
            iterations=_ITERATIONS,
            local_dataset_size=len(shards[0]),
            epochs_per_round=1.0,
        )
    )
    model_sent = analytic["server_to_worker_at_server"]["md-gan"] * FLOAT_BYTES
    model_received = analytic["worker_to_server_at_server"]["md-gan"] * FLOAT_BYTES

    pipe = _measure_run_op(mlp_setup, "pipe")
    tcp = _measure_run_op(mlp_setup, "tcp")

    # The protocol bytes are transport-independent: same pickle streams.
    assert tcp["sent"] == pipe["sent"]
    assert tcp["received"] == pipe["received"]

    sent_ratio = tcp["sent"] / model_sent
    received_ratio = tcp["received"] / model_received
    # Exact-geometry pin: payload floats are the model's floats, the rest is
    # bounded pickle overhead.
    assert 1.0 <= sent_ratio <= 1.35, (
        f"warm run-op sent {tcp['sent']:.0f} B/iter vs modeled 2bdN = "
        f"{model_sent:.0f} B/iter (ratio {sent_ratio:.3f})"
    )
    assert 1.0 <= received_ratio <= 1.35, (
        f"warm run-op received {tcp['received']:.0f} B/iter vs modeled bdN = "
        f"{model_received:.0f} B/iter (ratio {received_ratio:.3f})"
    )

    benchmark.extra_info["model_sent_bytes_iter"] = round(model_sent, 1)
    benchmark.extra_info["model_received_bytes_iter"] = round(model_received, 1)
    benchmark.extra_info["measured_sent_bytes_iter"] = round(tcp["sent"], 1)
    benchmark.extra_info["measured_received_bytes_iter"] = round(tcp["received"], 1)
    benchmark.extra_info["sent_ratio"] = round(sent_ratio, 4)
    benchmark.extra_info["received_ratio"] = round(received_ratio, 4)
    benchmark.extra_info["tcp_transfer_s_iter"] = round(tcp["seconds"], 6)
    benchmark.extra_info["pipe_transfer_s_iter"] = round(pipe["seconds"], 6)

    # LinkModel direction check: localhost sockets must beat the emulated
    # wan/edge links for the same per-iteration byte volume (N round trips).
    volume = tcp["sent"] + tcp["received"]
    for link in (LinkModel.datacenter(), LinkModel.wan(), LinkModel.edge()):
        modeled_s = (
            2 * _NUM_WORKERS * link.latency_s + volume / link.bandwidth_bytes_per_s
        )
        benchmark.extra_info[f"{link.name}_modeled_s_iter"] = round(modeled_s, 6)
        if link.name != "datacenter":
            assert tcp["seconds"] < modeled_s, (
                f"loopback tcp spent {tcp['seconds']:.4f}s/iter on run-op "
                f"transfer, slower than the {link.name} model ({modeled_s:.4f}s)"
            )

    benchmark.pedantic(
        _measure_run_op, args=(mlp_setup, "tcp"), rounds=1, iterations=1
    )
    print(
        f"run-op bytes/iter at N={_NUM_WORKERS}, b={_BATCH_SIZE}, k=N: "
        f"sent {tcp['sent']:.0f} (model {model_sent:.0f}, x{sent_ratio:.3f}), "
        f"received {tcp['received']:.0f} (model {model_received:.0f}, "
        f"x{received_ratio:.3f}); tcp transfer {tcp['seconds'] * 1e3:.2f} ms/iter "
        f"vs pipe {pipe['seconds'] * 1e3:.2f} ms/iter"
    )

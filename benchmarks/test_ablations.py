"""Benchmarks: ablations of MD-GAN design choices.

These go beyond the paper's figures and quantify the two knobs discussed in
the text (Sections IV-B4 and IV-C1) plus the Section VII extensions:

* the number of generated batches ``k`` (data diversity vs server workload),
* the discriminator swap period ``E`` (overfitting mitigation vs W<->W traffic),
* per-feedback generator updates and partial worker participation.
"""

import numpy as np
import pytest

from conftest import record_rows

from repro.experiments import (
    run_ablation_extensions,
    run_ablation_k,
    run_ablation_swap,
)

pytestmark = pytest.mark.slow  # heavy convergence run; excluded from the fast lane


@pytest.mark.paper_artifact("section4b4")
def test_ablation_k_diversity_tradeoff(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_ablation_k, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)
    rows = sorted(result.rows, key=lambda r: r["k"])
    assert all(np.isfinite(r["fid"]) for r in rows)
    # Server workload (flops charged for batch generation + updates) grows with k.
    flops = [r["server_flops"] for r in rows]
    assert all(b >= a for a, b in zip(flops, flops[1:]))
    print()
    print(result.to_text())


@pytest.mark.paper_artifact("section4c1")
def test_ablation_swap_period(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_ablation_swap, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)
    by_e = {str(r["epochs_per_swap"]): r for r in result.rows}
    # Disabling swapping removes all worker-to-worker traffic.
    assert by_e["inf"]["swap_bytes"] == 0.0
    assert by_e["inf"]["swaps"] == 0
    # More frequent swapping means at least as many swap rounds as less frequent.
    assert by_e["1.0"]["swaps"] >= by_e["5.0"]["swaps"]
    assert all(np.isfinite(r["fid"]) for r in result.rows)
    print()
    print(result.to_text())


@pytest.mark.paper_artifact("section7")
def test_ablation_extensions(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_ablation_extensions, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)
    variants = {r["variant"]: r for r in result.rows}
    assert "md-gan" in variants and "md-gan-async" in variants
    sampled = next(v for name, v in variants.items() if "sampled" in name)
    # Partial participation ships fewer bytes than full participation.
    assert sampled["total_bytes"] < variants["md-gan"]["total_bytes"]
    assert all(np.isfinite(r["fid"]) for r in result.rows)
    print()
    print(result.to_text())

"""Microbenchmark for the precision policy (float32 fast path).

Validates the two promises of the dtype/precision subsystem:

* the im2col/GEMM convolution hot path is materially faster in float32 than
  in float64 (the asserted floor is 1.3x; in practice the ratio tracks the
  2x memory-bandwidth difference and lands well above it), and
* a full MD-GAN training run under the default float32 policy is
  numerically healthy (finite losses) while the *measured* traffic bytes
  are identical to the float64 run and to the paper's analytic accounting —
  the wire format was always 32-bit floats, so the policy changes compute
  cost, never communication cost.

Timing uses best-of-N ``perf_counter`` repetitions with interleaved dtype
order, which is robust against background load; pytest-benchmark is not used
here because the assertion needs both timings inside one test.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture
from repro.nn.serialize import FLOAT_BYTES
from repro.nn.tensor_ops import (
    conv2d_forward,
    conv2d_input_grad,
    conv2d_weight_grad,
)
from repro.simulation import MessageKind

pytestmark = pytest.mark.paper_artifact("precision-policy")

#: Conv workload: batch 16 of 8x32x32 feature maps against 16 5x5 filters.
#: Large enough that the GEMMs dominate Python overhead, small enough that
#: one repetition takes tens of milliseconds on CPU.
_N, _C, _HW, _F, _K, _PAD = 16, 8, 32, 16, 5, 2


def _conv_forward_backward(x: np.ndarray, w: np.ndarray, grad: np.ndarray) -> None:
    conv2d_forward(x, w, 1, _PAD)
    conv2d_weight_grad(x, grad, (_K, _K), 1, _PAD)
    conv2d_input_grad(grad, w, (_HW, _HW), 1, _PAD)


def _time_conv(dtype: np.dtype, reps: int) -> float:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(_N, _C, _HW, _HW)).astype(dtype)
    w = rng.normal(size=(_F, _C, _K, _K)).astype(dtype)
    grad = np.ones((_N, _F, _HW, _HW), dtype=dtype)
    _conv_forward_backward(x, w, grad)  # warm-up
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        _conv_forward_backward(x, w, grad)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow  # timing assertion; keep hardware noise out of the fast lane
def test_conv2d_float32_at_least_1p3x_faster_than_float64():
    # Interleave the measurements so a load spike cannot bias one dtype, and
    # retry with more repetitions before failing: the assertion is about the
    # hot path, not about the CI machine's scheduler.
    ratio, best32, best64 = 0.0, float("inf"), float("inf")
    for attempt_reps in (7, 15, 31):
        for _ in range(attempt_reps):
            best32 = min(best32, _time_conv(np.dtype(np.float32), 1))
            best64 = min(best64, _time_conv(np.dtype(np.float64), 1))
        ratio = best64 / best32
        if ratio >= 1.3:
            break
    assert ratio >= 1.3, (
        f"float32 conv2d forward+backward only {ratio:.2f}x faster than "
        f"float64 (f32 {best32 * 1e3:.1f}ms, f64 {best64 * 1e3:.1f}ms); "
        "expected >= 1.3x"
    )


def _run_mdgan(precision: str, train, iterations: int = 3, batch_size: int = 8):
    factory = build_architecture(
        "mnist-cnn",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        width_factor=0.25,
        use_minibatch_discrimination=False,
    )
    shards = partition_iid(train, 4, np.random.default_rng(3))
    config = TrainingConfig(
        iterations=iterations,
        batch_size=batch_size,
        seed=11,
        precision=precision,
    )
    trainer = MDGANTrainer(factory, shards, config)
    start = time.perf_counter()
    history = trainer.train()
    elapsed = time.perf_counter() - start
    return trainer, history, elapsed


def test_mdgan_float32_policy_is_healthy_and_traffic_invariant():
    train, _ = make_mnist_like(n_train=320, n_test=80, image_size=16, seed=7)

    trainer32, history32, t32 = _run_mdgan("float32", train)
    trainer64, history64, t64 = _run_mdgan("float64", train)

    # Default-precision training must be numerically healthy.
    assert trainer32.generator.dtype == np.float32
    assert np.all(np.isfinite(history32.generator_loss))
    assert np.all(np.isfinite(history32.discriminator_loss))

    # Traffic is a function of the algorithm, not of the compute dtype: the
    # byte meters must agree across policies and with Table III's formulas.
    meter32 = trainer32.cluster.meter
    meter64 = trainer64.cluster.meter
    assert meter32.total_bytes() == meter64.total_bytes()
    iterations, n_workers, b = 3, 4, 8
    d = trainer32.factory.object_size
    expected_batches = iterations * n_workers * 2 * b * d * FLOAT_BYTES
    expected_feedback = iterations * n_workers * b * d * FLOAT_BYTES
    assert meter32.total_bytes(MessageKind.GENERATED_BATCHES) == expected_batches
    assert meter32.total_bytes(MessageKind.ERROR_FEEDBACK) == expected_feedback

    # Informational: the float32 end-to-end iteration should not be slower.
    # (No hard ratio here — the toy scale is dominated by Python overhead.)
    print(f"md-gan iteration time: f32 {t32:.2f}s vs f64 {t64:.2f}s")

"""Benchmark: regenerate Figure 4 (MD-GAN scores vs number of workers).

The paper varies N in {1, 10, 25, 50} with the MNIST MLP, comparing swap
vs no-swap and constant-worker vs constant-server workload.  The benchmark
runs a scaled-down worker ladder and asserts structural properties: the
local shard shrinks as 1/N, the constant-server mode shrinks the batch size,
and all runs produce finite scores.
"""

import numpy as np
import pytest

from conftest import record_rows

from repro.experiments import run_fig4

pytestmark = pytest.mark.slow  # heavy convergence run; excluded from the fast lane


@pytest.mark.paper_artifact("fig4")
def test_fig4_scalability(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_fig4, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)

    assert all(np.isfinite(r["fid"]) for r in result.rows)
    worker_counts = sorted({r["num_workers"] for r in result.rows})
    assert len(worker_counts) >= 2

    # Local shards shrink as N grows (|B_n| = |B| / N).
    by_n = {
        n: [r for r in result.rows if r["num_workers"] == n] for n in worker_counts
    }
    shard_sizes = [by_n[n][0]["local_shard_size"] for n in worker_counts]
    assert all(b <= a for a, b in zip(shard_sizes, shard_sizes[1:]))

    # The constant-server mode uses batch sizes that decrease with N.
    server_rows = [r for r in result.rows if r["mode"] == "constant_server"]
    if server_rows:
        batches = {r["num_workers"]: r["batch_size"] for r in server_rows}
        ordered = [batches[n] for n in sorted(batches)]
        assert all(b <= a for a, b in zip(ordered, ordered[1:]))

    # Both swap settings were exercised.
    assert {r["swap"] for r in result.rows} == {True, False}

    benchmark.extra_info["grid"] = [
        {k: r[k] for k in ("num_workers", "mode", "swap", "score", "fid")}
        for r in result.rows
    ]
    print()
    print(result.to_text())

"""Benchmark: regenerate Table IV (CIFAR10 communication costs, N=10).

Paper numbers reproduced in shape: at b=10 MD-GAN's server->worker cost is a
couple of MB per iteration (paper: 2.30 MB) against tens of MB per round for
FL-GAN; at b=100 MD-GAN's cost grows tenfold while FL-GAN's stays constant.
"""

import pytest

from conftest import record_rows

from repro.experiments import run_table4


@pytest.mark.paper_artifact("table4")
def test_table4_cifar_costs(benchmark):
    result = benchmark(run_table4)
    record_rows(benchmark, result)

    rows = {(r["batch_size"], r["communication"]): r for r in result.rows}

    # MD-GAN server egress per iteration at b=10: ~2.3 MB (paper: 2.30 MB).
    assert rows[(10, "server_to_worker_at_server")]["mdgan"] == pytest.approx(2.34, abs=0.2)
    # Per-worker ingress at b=10: ~0.23 MB (paper: 0.23 MB).
    assert rows[(10, "server_to_worker_at_worker")]["mdgan"] == pytest.approx(0.23, abs=0.05)
    # Growing the batch size by 10x scales MD-GAN costs 10x ...
    assert rows[(100, "server_to_worker_at_server")]["mdgan"] == pytest.approx(
        10 * rows[(10, "server_to_worker_at_server")]["mdgan"], rel=1e-6
    )
    # ... while FL-GAN costs are batch-size independent.
    assert rows[(100, "server_to_worker_at_server")]["flgan"] == pytest.approx(
        rows[(10, "server_to_worker_at_server")]["flgan"], rel=1e-6
    )
    # W<->W swap messages ship the discriminator (~0.38 MB for the CIFAR CNN).
    assert rows[(10, "worker_to_worker_at_worker")]["mdgan"] == pytest.approx(0.38, abs=0.05)

    print()
    print(result.to_text())

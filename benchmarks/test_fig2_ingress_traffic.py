"""Benchmark: regenerate Figure 2 (max ingress traffic vs batch size).

Paper claims reproduced:

* FL-GAN's per-communication traffic is flat in the batch size (it ships
  models), MD-GAN's grows linearly (it ships generated images and feedback);
* the two worker-side curves cross at a batch size in the order of hundreds
  of images, below which MD-GAN is the cheaper scheme per communication.
"""

import numpy as np
import pytest

from conftest import record_rows

from repro.experiments import run_fig2


@pytest.mark.paper_artifact("fig2")
def test_fig2_ingress_traffic(benchmark):
    batch_sizes = np.unique(np.logspace(0, 4, 30).astype(int)).tolist()
    result = benchmark.pedantic(
        run_fig2, kwargs=dict(batch_sizes=batch_sizes), rounds=1, iterations=1
    )
    record_rows(benchmark, result)

    for architecture in ("mnist-mlp", "cifar10-cnn"):
        rows = [r for r in result.rows if r["architecture"] == architecture]
        flgan_worker = rows[0]["flgan_worker"]
        assert all(r["flgan_worker"] == flgan_worker for r in rows), "FL-GAN curve must be flat"
        mdgan_curve = [r["mdgan_worker"] for r in rows]
        assert all(b <= a for a, b in zip(mdgan_curve[1:], mdgan_curve)), (
            "MD-GAN curve must be non-decreasing in b"
        )
        # Crossover exists: MD-GAN cheaper at b=1, more expensive at b=10,000.
        assert rows[0]["mdgan_worker"] < flgan_worker
        assert rows[-1]["mdgan_worker"] > flgan_worker
        # And it falls in the range the paper describes (tens to ~1,000 images).
        crossings = [
            r["batch_size"] for r in rows if r["mdgan_worker"] >= flgan_worker
        ]
        assert 10 <= min(crossings) <= 1500

    print()
    for note in result.notes:
        print("note:", note)

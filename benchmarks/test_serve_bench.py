"""Benchmark: serving latency percentiles and throughput on the warm pool.

Runs the ``serve-bench`` experiment (``repro.experiments.serve_bench``) at
the configured scale: concurrent clients issuing generation requests against
a :class:`~repro.serving.GeneratorService` on both resident transports plus
the serial inline reference.  Pins the serving layer's core claims —

* both transports answer every request and report ordered p50/p95/p99
  latency percentiles and non-zero throughput;
* after the all-slot warm-up the versioned param cache ships **zero**
  generator parameter bytes for the entire measured window (the generator
  never changes mid-benchmark);
* requests coalesce (mean k per dispatch >= 1).

The latency/throughput rows land in ``benchmark.extra_info`` for the CI
slow lane's ``BENCH_<run>_<sha>.json`` artifact.
"""

from __future__ import annotations

import pytest

from conftest import record_rows

from repro.experiments import run_serve_bench

pytestmark = [
    pytest.mark.slow,  # spins up pipe + tcp pools under threaded load
    pytest.mark.paper_artifact("serve-bench"),
]


def test_serve_bench_percentiles_and_param_cache(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_serve_bench,
        kwargs=dict(scale=bench_scale, num_clients=4, requests_per_client=8),
        rounds=1,
        iterations=1,
    )
    rows = {row["config"]: row for row in result.rows}
    assert {"resident/pipe", "resident/tcp", "serial-inline"} <= set(rows)
    for config in ("resident/pipe", "resident/tcp"):
        row = rows[config]
        assert row["requests"] >= 32, f"{config} dropped requests: {row['requests']}"
        assert row["samples_per_s"] > 0 and row["requests_per_s"] > 0
        assert (
            row["latency_p50_ms"]
            <= row["latency_p95_ms"]
            <= row["latency_p99_ms"]
        ), f"{config} percentiles out of order"
        # The byte-meter claim: an unchanged generator ships zero parameter
        # bytes per request once the slots are warm.
        assert row["steady_param_bytes"] == 0.0, (
            f"{config} shipped {row['steady_param_bytes']} param bytes after "
            "warm-up; the versioned cache should have skipped them all"
        )
        assert row["mean_coalesce"] >= 1.0
    record_rows(benchmark, result)

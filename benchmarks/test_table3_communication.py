"""Benchmark: regenerate Table III (communication complexities).

Also cross-checks the analytic formulas against traffic measured on the
emulated cluster — the same code path that produces the Figure 3 results.
"""

import pytest

from conftest import record_rows

from repro.experiments import run_table3, run_traffic_check


@pytest.mark.paper_artifact("table3")
def test_table3_analytic(benchmark):
    result = benchmark(run_table3)
    record_rows(benchmark, result)

    by_key = {(r["architecture"], r["communication"]): r for r in result.rows}
    # FL-GAN worker<->server traffic depends only on model size; MD-GAN's
    # depends on b and d.  At b=10 MD-GAN is far cheaper per round for the
    # MNIST MLP (the paper's motivating case).
    mlp_update = by_key[("mnist-mlp", "worker_to_server_at_worker")]
    assert mlp_update["mdgan"] < 0.1 * mlp_update["flgan"]
    # MD-GAN communicates every iteration; FL-GAN only every m E / b iterations.
    rounds = by_key[("mnist-mlp", "num_server_worker_rounds")]
    assert rounds["mdgan"] > rounds["flgan"]

    print()
    print(result.to_text())


@pytest.mark.paper_artifact("table3")
def test_table3_measured_vs_analytic(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_traffic_check, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)
    for row in result.rows:
        if row["quantity"].startswith(("swap", "resident")):
            # swap rows cover a different boundary; the resident rows are
            # *measured* transport payloads (pickle overhead, object-graph
            # dedup below k = N), pinned in benchmarks/test_socket_transport.py
            # under an exact geometry instead of asserted at ratio 1 here.
            continue
        if "bytes" in row["quantity"]:
            assert row["ratio"] == pytest.approx(1.0, rel=1e-6), row
    print()
    print(result.to_text())

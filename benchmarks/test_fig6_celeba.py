"""Benchmark: regenerate Figure 6 (validation on the CelebA-like dataset).

The paper validates the three competitors on CelebA (unconditional GAN,
per-competitor Adam settings, b=200 for standalone/FL-GAN vs b=40 for
MD-GAN with N=5).  The benchmark runs the scaled-down synthetic face dataset
and asserts that all three competitors train to finite scores with MD-GAN in
the same range as the baselines (the paper reports comparable IS, with the
standalone leading on FID).
"""

import numpy as np
import pytest

from conftest import record_rows

from repro.experiments import run_fig6

pytestmark = pytest.mark.slow  # heavy convergence run; excluded from the fast lane


def _final(result, competitor, metric):
    rows = [r for r in result.rows if r["competitor"] == competitor]
    rows.sort(key=lambda r: r["iteration"])
    return rows[-1][metric]


@pytest.mark.paper_artifact("fig6")
def test_fig6_celeba(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_fig6, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)

    competitors = sorted({r["competitor"] for r in result.rows})
    assert len(competitors) == 3
    assert all(np.isfinite(r["fid"]) and np.isfinite(r["score"]) for r in result.rows)

    finals = {name: _final(result, name, "fid") for name in competitors}
    mdgan_name = next(n for n in competitors if n.startswith("md-gan"))
    standalone_fid = finals["standalone"]
    # MD-GAN stays within a generous factor of the standalone baseline
    # (the paper reports the standalone ahead on FID, MD-GAN comparable on IS).
    assert finals[mdgan_name] <= 5.0 * standalone_fid + 50.0

    benchmark.extra_info["final_fid"] = finals
    benchmark.extra_info["final_score"] = {
        name: _final(result, name, "score") for name in competitors
    }
    print()
    print(result.to_text())

"""Benchmark: resident-state pool vs the stateless process pool.

Validates the two promises of the ``resident`` execution backend
(:mod:`repro.runtime.resident`) on a conv model with a non-trivial shard:

* **IPC volume** — the ``process`` backend re-pickles every worker's full
  state (discriminator, Adam moments, sampler + dataset shard, RNG) in both
  directions every iteration, while ``resident`` ships only the generated
  batches out and the loss/feedback/cursor delta back.  Steady-state
  per-iteration IPC must be at least 2x smaller (in practice it is >10x).
* **Wall clock** — with 8 workers on a multi-core host, skipping the
  per-iteration state pickling makes resident strictly faster than process.

Process-backend bytes are measured by pickling the exact task/result objects
the pool ships (`pickle.dumps` with the same protocol); resident bytes come
from the backend's own IPC meter, taking the delta between two iterations so
the one-off state install is excluded.  Timing uses best-of-N interleaved
``perf_counter`` runs, as in ``test_parallel_backend.py``.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture
from repro.runtime import run_mdgan_worker_task

pytestmark = [
    pytest.mark.slow,  # timing / multi-run benchmark; excluded from the fast lane
    pytest.mark.paper_artifact("resident-backend"),
]

_NUM_WORKERS = 8
_BATCH_SIZE = 16
_ITERATIONS = 2


@pytest.fixture(scope="module")
def conv_setup():
    """An 8-worker MD-GAN on the conv architecture with real shards."""
    train, _ = make_mnist_like(n_train=640, n_test=160, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-cnn",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        width_factor=0.5,
        use_minibatch_discrimination=False,
    )
    shards = partition_iid(train, _NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


def _build_trainer(conv_setup, backend: str, iterations: int = _ITERATIONS):
    factory, shards = conv_setup
    config = TrainingConfig(
        iterations=iterations,
        batch_size=_BATCH_SIZE,
        num_batches=_NUM_WORKERS,
        seed=11,
        backend=backend,
        max_workers=_NUM_WORKERS,
    )
    return MDGANTrainer(factory, shards, config)


def _process_iteration_bytes(conv_setup) -> int:
    """Bytes the process backend ships for one steady-state iteration.

    Measured as ``len(pickle.dumps(task)) + len(pickle.dumps(result))`` over
    every worker — exactly the payloads ProcessPoolExecutor pickles, on
    iteration-2 state so Adam moments and sampler cursors are warm.
    """
    trainer = _build_trainer(conv_setup, "serial")
    trainer.train_iteration(1)
    participants = trainer._participating_workers()
    k = min(trainer.num_batches, len(participants))
    batches = trainer._generate_batches(k)
    trainer._distribute_batches(2, batches, participants)
    total = 0
    for worker in participants:
        task = trainer._build_worker_task(worker)
        assert task is not None
        total += len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
        result = run_mdgan_worker_task(task)
        total += len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    trainer.close_backend()
    return total


def _resident_iteration_bytes(conv_setup) -> int:
    """Steady-state per-iteration IPC of the resident backend (its own meter).

    Iteration 1 includes the one-off state installs, so the figure is the
    meter delta across iteration 2.
    """
    trainer = _build_trainer(conv_setup, "resident")
    try:
        trainer.train_iteration(1)
        backend = trainer._backend
        before = backend.ipc_bytes_sent + backend.ipc_bytes_received
        trainer.train_iteration(2)
        after = backend.ipc_bytes_sent + backend.ipc_bytes_received
    finally:
        trainer.sync_worker_state()
        trainer.close_backend()
    return after - before


def test_resident_ships_at_least_2x_fewer_bytes_than_process(conv_setup):
    process_bytes = _process_iteration_bytes(conv_setup)
    resident_bytes = _resident_iteration_bytes(conv_setup)
    ratio = process_bytes / max(1, resident_bytes)
    print(
        f"per-iteration IPC at {_NUM_WORKERS} workers: process "
        f"{process_bytes / 1e6:.2f} MB, resident {resident_bytes / 1e6:.2f} MB "
        f"({ratio:.1f}x less)"
    )
    assert resident_bytes * 2 <= process_bytes, (
        f"resident backend shipped {resident_bytes} bytes/iteration vs process "
        f"{process_bytes}; expected at least a 2x reduction"
    )


def _timed_run(conv_setup, backend: str, iterations: int) -> float:
    trainer = _build_trainer(conv_setup, backend, iterations=iterations)
    start = time.perf_counter()
    trainer.train()
    return time.perf_counter() - start


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="wall-clock comparison needs a multi-core host (>= 4 cores)",
)
def test_resident_wall_clock_beats_process_at_8_workers(conv_setup):
    # Warm both pools once, then interleave best-of-N so a background load
    # spike cannot bias one backend.
    iterations = 3
    _timed_run(conv_setup, "process", iterations)
    _timed_run(conv_setup, "resident", iterations)
    best = {"process": float("inf"), "resident": float("inf")}
    speedup = 0.0
    for attempt_reps in (3, 5):
        for _ in range(attempt_reps):
            for backend in ("process", "resident"):
                best[backend] = min(
                    best[backend], _timed_run(conv_setup, backend, iterations)
                )
        speedup = best["process"] / best["resident"]
        if speedup >= 1.1:
            break
    print(
        f"{iterations}-iteration md-gan at {_NUM_WORKERS} workers: process "
        f"{best['process']:.2f}s, resident {best['resident']:.2f}s "
        f"({speedup:.2f}x, {os.cpu_count()} cores)"
    )
    assert speedup >= 1.05, (
        f"resident backend only {speedup:.2f}x faster than process at "
        f"{_NUM_WORKERS} workers on {os.cpu_count()} cores; expected a "
        "measurable win (>= 1.05x)"
    )

"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The run
scale defaults to the fast ``smoke`` preset so the whole suite finishes in a
few minutes on CPU; set the ``REPRO_BENCH_SCALE`` environment variable to
``small`` (or ``paper``) for higher-fidelity runs.

Benchmark results (who wins, final scores, crossover points) are attached to
``benchmark.extra_info`` so they appear in ``--benchmark-json`` exports and
can be compared against the paper's reported trends (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_scale


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): marks which table/figure a benchmark regenerates"
    )


@pytest.fixture(scope="session")
def bench_scale():
    """Experiment scale used by all training benchmarks."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


def record_rows(benchmark, result, max_rows: int = 40) -> None:
    """Attach an ExperimentResult's rows and notes to the benchmark record."""
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["rows"] = result.rows[:max_rows]
    benchmark.extra_info["notes"] = result.notes

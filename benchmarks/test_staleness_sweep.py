"""Benchmark: bounded-staleness async aggregation vs the synchronous schedule.

Two artefacts:

* **Staleness sweep** — :func:`repro.experiments.run_staleness_sweep` runs the
  sync baseline, pipelined depths 1-4, async staleness bounds 1-4 and the
  composed async+pipelined (bound, depth) pairs on one fleet and reports
  score/FID, recorded staleness and wall clock per row.  The headline
  invariant is re-asserted on the exported rows: no async or composed run's
  ``max_worker_staleness`` exceeds its bound.
* **Straggler win** — with one worker slowed >= 2x, the async schedule must
  beat the synchronous one on wall clock: sync pays the straggler's delay
  every iteration, async only when the staleness gate forces a wait.  The
  slowdown is injected by wrapping ``run_mdgan_worker_task`` for worker 0,
  which both the sync ``submit_ordered`` path and the async completion-order
  path resolve at call time, so the handicap is identical across schedules.

Timing uses best-of-N interleaved ``perf_counter`` runs, as in
``test_pipeline.py`` / ``test_parallel_backend.py``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from conftest import record_rows

import repro.core.mdgan as mdgan_module
from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_gaussian_ring, partition_iid
from repro.experiments import run_staleness_sweep
from repro.models import build_toy_gan

pytestmark = [
    pytest.mark.slow,  # timing / multi-run benchmark; excluded from the fast lane
    pytest.mark.paper_artifact("staleness-sweep"),
]

_NUM_WORKERS = 4
_ITERATIONS = 6
_STRAGGLER_SLEEP = 0.1  # seconds added to every worker-0 step (>= 2x a toy step)


@pytest.fixture(scope="module")
def ring_setup():
    """A 4-worker toy GAN on the Gaussian ring — steps are cheap, so the
    injected straggler delay dominates and the schedule difference is clean."""
    train, _ = make_gaussian_ring(n_train=160, n_test=40, image_size=8, seed=7)
    factory = build_toy_gan(
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        latent_dim=8,
        hidden=16,
    )
    shards = partition_iid(train, _NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


@contextmanager
def _straggling_worker_zero(seconds: float):
    """Slow worker 0's step function on every schedule.

    Both the synchronous ``submit_ordered`` dispatch and the async
    ``_async_worker_fn`` seam resolve ``run_mdgan_worker_task`` from the
    trainer module's globals at call time, so one patch handicaps the same
    worker identically under either discipline.
    """
    original = mdgan_module.run_mdgan_worker_task

    def slow(task):
        if task.worker_index == 0:
            time.sleep(seconds)
        return original(task)

    mdgan_module.run_mdgan_worker_task = slow
    try:
        yield
    finally:
        mdgan_module.run_mdgan_worker_task = original


def _timed_run(ring_setup, aggregation: str):
    factory, shards = ring_setup
    config = TrainingConfig(
        iterations=_ITERATIONS,
        batch_size=8,
        seed=11,
        backend="thread",
        max_workers=_NUM_WORKERS,
        aggregation=aggregation,
        max_staleness=3,
    )
    with MDGANTrainer(factory, shards, config) as trainer:
        start = time.perf_counter()
        history = trainer.train()
        return time.perf_counter() - start, history


def test_staleness_sweep_rows(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_staleness_sweep,
        kwargs=dict(
            dataset="mnist",
            architecture="mnist-mlp",
            scale=bench_scale,
            backend="thread",
            max_workers=_NUM_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )
    record_rows(benchmark, result)
    modes = {(row["mode"], row["parameter"]) for row in result.rows}
    assert ("sync", 0) in modes
    assert {mode for mode, _ in modes} == {
        "sync",
        "pipelined",
        "async",
        "async+pipelined",
    }
    for row in result.rows:
        assert np.isfinite(row["fid"]) and row["fid"] > 0
        assert row["wall_seconds"] > 0
        if row["mode"] in ("async", "async+pipelined"):
            # The headline invariant, re-checked on the exported rows.
            assert row["max_worker_staleness"] <= row["parameter"]
        if row["mode"] == "pipelined":
            assert row["max_staleness"] <= row["parameter"]
        if row["mode"] == "async+pipelined":
            assert row["depth"] > 0
    benchmark.extra_info["wall_seconds"] = {
        f"{row['mode']}-{row['parameter']}-{row['depth']}": row["wall_seconds"]
        for row in result.rows
    }
    print()
    print(result.to_text())


def test_straggler_history_invariants(ring_setup):
    with _straggling_worker_zero(_STRAGGLER_SLEEP):
        _, history = _timed_run(ring_setup, "async")
    # The slow worker never stalls the fleet into fewer updates, and its
    # late contributions still obey the bound.
    assert len(history.iterations) == _ITERATIONS
    assert history.max_worker_staleness() <= 3
    assert history.overlap["p95_staleness"] <= 3.0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="async overlap needs a multi-core host (>= 4 cores)",
)
def test_async_beats_sync_with_straggler(ring_setup):
    with _straggling_worker_zero(_STRAGGLER_SLEEP):
        # Warm both paths (thread pool spin-up), then interleave best-of-N
        # so a background load spike cannot bias one schedule.
        _timed_run(ring_setup, "sync")
        _timed_run(ring_setup, "async")
        best = {"sync": float("inf"), "async": float("inf")}
        speedup = 0.0
        for attempt_reps in (3, 5):
            for _ in range(attempt_reps):
                for aggregation in ("sync", "async"):
                    best[aggregation] = min(
                        best[aggregation], _timed_run(ring_setup, aggregation)[0]
                    )
            speedup = best["sync"] / best["async"]
            if speedup >= 1.3:
                break
    print(
        f"{_ITERATIONS}-iteration md-gan at {_NUM_WORKERS} workers, worker 0 "
        f"slowed by {_STRAGGLER_SLEEP}s/step: sync {best['sync']:.2f}s, "
        f"async (bound 3) {best['async']:.2f}s "
        f"({speedup:.2f}x, {os.cpu_count()} cores)"
    )
    # Sync pays ~iterations x sleep; async only gate-forced waits.
    assert speedup >= 1.2, (
        f"async aggregation only {speedup:.2f}x faster than the synchronous "
        f"schedule with a {_STRAGGLER_SLEEP}s straggler on {os.cpu_count()} "
        "cores; expected a clear win (>= 1.2x)"
    )

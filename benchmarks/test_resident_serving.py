"""Benchmark: the persistent resident serving layer (warm reuse + shm install).

Validates the two serving-layer promises added on top of the resident
backend, on the 8-worker conv model with deliberately large shards (install
cost must be shard-dominated for the comparison to mean anything):

* **Warm reuse** — the pool now outlives ``train()``: a second ``train()``
  call on the same trainer must ship **zero** install payloads (state epochs
  still match) and its per-train pipe traffic must be a small fraction of
  the cold install cost.  The end-of-train refresh goes through the
  light-weight mirror op, so it must not re-ship shard bytes either.
* **Shared-memory install** — with ``shm_install`` the initial shard/model
  arrays travel through ``multiprocessing.shared_memory`` segments instead
  of the pool pipes: the install's pipe bytes collapse and the trainer-side
  dispatch (pickle + transfer) gets faster than the pickled install.

Timing uses best-of-N interleaved ``perf_counter`` runs, as in
``test_resident_backend.py``; byte figures come from the backend's own
meters (``ipc_bytes_sent``/``shm_bytes_sent``/``install_count``).  Results
are attached to ``benchmark.extra_info`` so they land in the CI slow lane's
``BENCH_<run>_<sha>.json`` artifact.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture

pytestmark = [
    pytest.mark.slow,  # timing / multi-run benchmark; excluded from the fast lane
    pytest.mark.paper_artifact("resident-serving"),
]

_NUM_WORKERS = 8
_BATCH_SIZE = 16
# 16384 x (1, 16, 16) float32 = 16 MB total -> 2 MB per worker shard, well
# above the shm spill threshold and large enough that install transport
# dominates the cold/warm and shm/pickle comparisons.
_N_TRAIN = 16384


@pytest.fixture(scope="module")
def conv_setup():
    """An 8-worker MD-GAN on the conv architecture with 2 MB shards."""
    train, _ = make_mnist_like(n_train=_N_TRAIN, n_test=64, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-cnn",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        width_factor=0.5,
        use_minibatch_discrimination=False,
    )
    shards = partition_iid(train, _NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


def _build_trainer(
    conv_setup, shm_install=None, iterations: int = 2, pipeline_depth: int = 0
) -> MDGANTrainer:
    factory, shards = conv_setup
    config = TrainingConfig(
        iterations=iterations,
        batch_size=_BATCH_SIZE,
        num_batches=_NUM_WORKERS,
        seed=11,
        backend="resident",
        max_workers=_NUM_WORKERS,
        shm_install=shm_install,
        pipeline_depth=pipeline_depth,
    )
    return MDGANTrainer(factory, shards, config)


def test_warm_reuse_second_train_installs_nothing(conv_setup, benchmark):
    with _build_trainer(conv_setup) as trainer:
        start = time.perf_counter()
        trainer.train()
        cold_time = time.perf_counter() - start
        backend = trainer._backend
        cold_installs = backend.install_count
        cold_total = backend.ipc_bytes_sent + backend.shm_bytes_sent
        cold_shm = backend.shm_bytes_sent
        assert cold_installs >= _NUM_WORKERS

        rounds = 3
        benchmark.pedantic(trainer.train, rounds=rounds, iterations=1)

        # Warm re-entry: the state epochs still match, so not a single
        # install payload (pipe or shm) is shipped again.
        assert backend.install_count == cold_installs
        assert backend.shm_bytes_sent == cold_shm
        warm_pipe_per_train = (
            backend.ipc_bytes_sent + backend.shm_bytes_sent - cold_total
        ) / rounds
        # Per-train warm traffic (per-iteration deltas + the end-of-train
        # mirror, which skips the shard) is a small fraction of the cold
        # install cost.
        assert warm_pipe_per_train * 3 <= cold_total, (
            f"warm train shipped {warm_pipe_per_train / 1e6:.2f} MB vs cold "
            f"install+run {cold_total / 1e6:.2f} MB; expected >= 3x reduction"
        )
        benchmark.extra_info["cold_time_s"] = round(cold_time, 4)
        benchmark.extra_info["cold_installs"] = cold_installs
        benchmark.extra_info["cold_total_mb"] = round(cold_total / 1e6, 3)
        benchmark.extra_info["warm_per_train_mb"] = round(warm_pipe_per_train / 1e6, 3)
        print(
            f"cold train: {cold_time:.3f}s, {cold_installs} installs, "
            f"{cold_total / 1e6:.2f} MB shipped; warm train: "
            f"0 installs, {warm_pipe_per_train / 1e6:.2f} MB/train"
        )


def _timed_pipelined_run(conv_setup, off_thread: bool, iterations: int) -> tuple:
    """Wall-clock one depth-1 pipelined run; optionally force inline generation.

    ``off_thread=False`` drops the instance's ``supports_resident_generation``
    capability, which sends lookahead generation down the pre-serving-layer
    inline path (``_generate_batches`` on the trainer thread) — exactly the
    schedule this PR replaces — so the two timings isolate the overlap win of
    resident-side generation.  Returns ``(seconds, overlap_dict)``.
    """
    trainer = _build_trainer(conv_setup, iterations=iterations, pipeline_depth=1)
    try:
        if not off_thread:
            trainer.executor.supports_resident_generation = False
        start = time.perf_counter()
        history = trainer.train()
        return time.perf_counter() - start, dict(history.overlap)
    finally:
        trainer.close()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="overlap comparison needs a multi-core host (>= 4 cores)",
)
def test_resident_lookahead_beats_inline_generation(conv_setup, benchmark):
    # Warm the page cache / JIT-ish costs once per mode, then interleave
    # best-of-N so a background load spike cannot bias one side.
    iterations = 3
    _timed_pipelined_run(conv_setup, True, iterations)
    _timed_pipelined_run(conv_setup, False, iterations)
    best = {True: float("inf"), False: float("inf")}
    overlap = {}
    speedup = 0.0
    for attempt_reps in (3, 5):
        for _ in range(attempt_reps):
            for off_thread in (False, True):
                elapsed, ov = _timed_pipelined_run(conv_setup, off_thread, iterations)
                best[off_thread] = min(best[off_thread], elapsed)
                overlap[off_thread] = ov
        speedup = best[False] / best[True]
        if speedup >= 1.05:
            break
    # The telemetry proves where generation ran in each mode...
    assert overlap[True]["resident_generations"] > 0
    assert overlap[False]["resident_generations"] == 0
    assert overlap[True]["lookahead_generations"] == overlap[False]["lookahead_generations"]
    # ...and moving it off the trainer thread wins wall clock.
    assert speedup > 1.0, (
        f"resident-side lookahead generation ran in {best[True]:.3f}s vs inline "
        f"{best[False]:.3f}s (speedup {speedup:.2f}x); expected a win"
    )
    benchmark.pedantic(
        _timed_pipelined_run, args=(conv_setup, True, iterations), rounds=1, iterations=1
    )
    benchmark.extra_info["inline_s"] = round(best[False], 4)
    benchmark.extra_info["resident_generation_s"] = round(best[True], 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(
        f"depth-1 pipelined md-gan at {_NUM_WORKERS} workers, k={_NUM_WORKERS}: "
        f"inline generation {best[False]:.3f}s, resident-side {best[True]:.3f}s "
        f"({speedup:.2f}x)"
    )


def _cold_install_dispatch(conv_setup, shm: bool):
    """Time the install-bearing first dispatch of an 8-worker step batch.

    The dispatch is where the trainer-side install cost lives (supplier
    snapshot + pickle/spill + pipe write); the subsequent compute is
    identical in both configurations, so it is collected but not timed.
    Returns ``(dispatch_seconds, pipe_bytes, shm_bytes)``.
    """
    trainer = _build_trainer(conv_setup, shm_install=shm, iterations=1)
    try:
        participants = trainer._participating_workers()
        k = min(trainer.num_batches, len(participants))
        batches = trainer._generate_batches(k)
        trainer._distribute_batches(1, batches, participants)
        backend = trainer.executor
        backend._ensure_transport()  # fork the slot processes outside the timing
        start = time.perf_counter()
        live, handle = trainer._dispatch_worker_phase(participants)
        elapsed = time.perf_counter() - start
        handle.result()
        trainer._merge_worker_phase(1, live, handle)
        return elapsed, backend.ipc_bytes_sent, backend.shm_bytes_sent
    finally:
        trainer.close()


def test_shm_install_beats_pickled_install(conv_setup, benchmark):
    # Interleaved best-of-N so a background load spike cannot bias one side.
    best = {False: float("inf"), True: float("inf")}
    bytes_seen = {}
    for _ in range(3):
        for shm in (False, True):
            elapsed, pipe, shm_bytes = _cold_install_dispatch(conv_setup, shm)
            best[shm] = min(best[shm], elapsed)
            bytes_seen[shm] = (pipe, shm_bytes)
    plain_pipe, plain_shm = bytes_seen[False]
    shm_pipe, shm_shm = bytes_seen[True]
    # Hard pin: the shard/model bytes left the pipes entirely.
    assert plain_shm == 0
    assert shm_shm > 0
    assert shm_pipe * 2 <= plain_pipe, (
        f"shm install still shipped {shm_pipe / 1e6:.2f} MB through the pipes "
        f"vs {plain_pipe / 1e6:.2f} MB pickled; expected >= 2x off-pipe"
    )
    # Wall clock: spilling to shared memory (one memcpy per array) beats
    # pickling the same bytes through the pipes.
    assert best[True] < best[False], (
        f"shm install dispatch took {best[True] * 1e3:.1f} ms vs pickled "
        f"{best[False] * 1e3:.1f} ms"
    )
    benchmark.pedantic(
        _cold_install_dispatch, args=(conv_setup, True), rounds=1, iterations=1
    )
    benchmark.extra_info["pickled_dispatch_ms"] = round(best[False] * 1e3, 2)
    benchmark.extra_info["shm_dispatch_ms"] = round(best[True] * 1e3, 2)
    benchmark.extra_info["pickled_pipe_mb"] = round(plain_pipe / 1e6, 3)
    benchmark.extra_info["shm_pipe_mb"] = round(shm_pipe / 1e6, 3)
    benchmark.extra_info["shm_mb"] = round(shm_shm / 1e6, 3)
    print(
        f"cold install dispatch at {_NUM_WORKERS} workers: pickled "
        f"{best[False] * 1e3:.1f} ms ({plain_pipe / 1e6:.2f} MB on pipes), shm "
        f"{best[True] * 1e3:.1f} ms ({shm_pipe / 1e6:.2f} MB on pipes + "
        f"{shm_shm / 1e6:.2f} MB in shm)"
    )

"""Benchmark: regenerate Figure 5 (fault tolerance under worker crashes).

One worker crashes every I/N iterations (taking its data with it); the run
with crashes is compared against the same MD-GAN configuration without
crashes and the standalone baselines.  Asserted shape: all workers end up
crashed, the crashing run still completes and reports finite scores, and the
no-crash run is at least as good as the crashing one (within noise).
"""

import numpy as np
import pytest

from conftest import record_rows

from repro.experiments import run_fig5

pytestmark = pytest.mark.slow  # heavy convergence run; excluded from the fast lane


def _final(result, competitor, metric):
    rows = [r for r in result.rows if r["competitor"] == competitor]
    rows.sort(key=lambda r: r["iteration"])
    return rows[-1][metric]


@pytest.mark.paper_artifact("fig5")
def test_fig5_fault_tolerance(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_fig5, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_rows(benchmark, result)

    competitors = {r["competitor"] for r in result.rows}
    assert {"md-gan-crashes", "md-gan-no-crash"} <= competitors
    assert all(np.isfinite(r["fid"]) for r in result.rows)

    histories = result.extras["histories"]
    crash_events = [
        e for e in histories["md-gan-crashes"]["events"] if e["kind"] == "crash"
    ]
    # The uniform schedule crashes every worker by the end of the run.
    assert len(crash_events) == bench_scale.num_workers

    crash_fid = _final(result, "md-gan-crashes", "fid")
    nocrash_fid = _final(result, "md-gan-no-crash", "fid")
    # Losing data shares cannot (systematically) help; allow generous noise.
    assert crash_fid >= 0.5 * nocrash_fid

    benchmark.extra_info["final_fid"] = {
        name: _final(result, name, "fid") for name in sorted(competitors)
    }
    print()
    print(result.to_text())

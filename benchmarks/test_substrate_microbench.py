"""Micro-benchmarks of the NumPy substrate's hot paths.

Not a paper artefact: these quantify the cost of the building blocks that
dominate training time (convolution forward/backward, a full MD-GAN global
iteration, a federated averaging round), so regressions in the substrate are
visible independently of the experiment-level benchmarks.
"""

import numpy as np
import pytest

from repro.core import (
    GANObjective,
    MDGANTrainer,
    TrainingConfig,
    discriminator_update,
    generator_feedback,
    sample_generator_images,
)
from repro.datasets import make_gaussian_ring, partition_iid
from repro.models import build_mnist_cnn_gan, build_toy_gan
from repro.nn import Adam
from repro.nn.tensor_ops import conv2d_forward, conv2d_input_grad, conv2d_weight_grad


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 16, 16, 16))
    w = rng.normal(size=(32, 16, 3, 3))
    grad = rng.normal(size=(16, 32, 8, 8))
    return x, w, grad


def test_conv2d_forward(benchmark, conv_inputs):
    x, w, _ = conv_inputs
    out = benchmark(conv2d_forward, x, w, 2, 1)
    assert out.shape == (16, 32, 8, 8)


def test_conv2d_input_grad(benchmark, conv_inputs):
    x, w, grad = conv_inputs
    out = benchmark(conv2d_input_grad, grad, w, (16, 16), 2, 1)
    assert out.shape == x.shape


def test_conv2d_weight_grad(benchmark, conv_inputs):
    x, w, grad = conv_inputs
    out = benchmark(conv2d_weight_grad, x, grad, (3, 3), 2, 1)
    assert out.shape == w.shape


def test_cnn_discriminator_step(benchmark):
    rng = np.random.default_rng(1)
    factory = build_mnist_cnn_gan(image_shape=(1, 16, 16), width_factor=0.25)
    generator = factory.make_generator(rng)
    discriminator = factory.make_discriminator(rng)
    objective = GANObjective(factory)
    optimizer = Adam()
    real = rng.uniform(-1, 1, size=(16, 1, 16, 16))
    labels = rng.integers(0, 10, size=16)
    fake = sample_generator_images(generator, factory, 16, rng)

    def step():
        return discriminator_update(
            discriminator, objective, optimizer, real, labels, fake.images, fake.labels
        )

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_error_feedback_computation(benchmark):
    rng = np.random.default_rng(2)
    factory = build_mnist_cnn_gan(image_shape=(1, 16, 16), width_factor=0.25)
    generator = factory.make_generator(rng)
    discriminator = factory.make_discriminator(rng)
    objective = GANObjective(factory)
    batch = sample_generator_images(generator, factory, 16, rng)

    def feedback():
        return generator_feedback(discriminator, objective, batch)

    loss, grad = benchmark(feedback)
    assert grad.shape == batch.images.shape


def test_mdgan_global_iteration(benchmark):
    rng = np.random.default_rng(3)
    train, _ = make_gaussian_ring(n_train=400, n_test=50, seed=4)
    factory = build_toy_gan(num_classes=train.num_classes)
    shards = partition_iid(train, 8, rng)
    config = TrainingConfig(iterations=1, batch_size=16, seed=5)
    trainer = MDGANTrainer(factory, shards, config)
    counter = iter(range(1, 10_000))

    def one_iteration():
        trainer.train_iteration(next(counter))

    benchmark(one_iteration)
    assert trainer.cluster.meter.total_messages() > 0

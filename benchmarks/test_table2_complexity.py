"""Benchmark: regenerate Table II (computation / memory complexity).

Paper claim reproduced: MD-GAN reduces the per-worker computation and memory
complexity by roughly a factor of two (grey rows of Table II), at the price
of a higher server workload.
"""

import pytest

from conftest import record_rows

from repro.experiments import run_table2


@pytest.mark.paper_artifact("table2")
def test_table2_complexity(benchmark):
    result = benchmark(run_table2)
    record_rows(benchmark, result)

    worker_rows = [r for r in result.rows if r["quantity"] == "computation_worker"]
    memory_rows = [r for r in result.rows if r["quantity"] == "memory_worker"]
    server_rows = [r for r in result.rows if r["quantity"] == "computation_server"]

    # Paper's headline: workers do at most ~half the work under MD-GAN.
    for row in worker_rows + memory_rows:
        assert row["mdgan"] <= 0.51 * row["flgan"], row
    # The flip side: the MD-GAN server works harder than the FL-GAN server.
    for row in server_rows:
        assert row["mdgan"] > row["flgan"], row

    print()
    print(result.to_text())

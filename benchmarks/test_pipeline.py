"""Benchmark: pipelined execution vs the synchronous schedule.

Validates the promise of the pipelined mode (:mod:`repro.runtime.pipeline`)
on the 8-worker conv model:

* **Wall clock** — with ``pipeline_depth=1`` on the ``resident`` backend the
  server's k-batch generation for iteration ``t+1`` runs while the pool
  computes iteration ``t``, so the pipelined run must beat the synchronous
  ``resident`` run whose server sits idle during the worker phase.
* **Bounded staleness** — the speed is bought with a recorded, bounded batch
  staleness (<= depth), never silent divergence: the history carries the
  per-iteration staleness column and the overlap summary.

Timing uses best-of-N interleaved ``perf_counter`` runs, as in
``test_parallel_backend.py`` / ``test_resident_backend.py``; the generation
load is made non-trivial by running ``k = N`` generated batches per
iteration (the paper's maximum), which is exactly the regime the ROADMAP's
"fan out the server's k-batch generation" follow-up targets.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture

pytestmark = [
    pytest.mark.slow,  # timing / multi-run benchmark; excluded from the fast lane
    pytest.mark.paper_artifact("pipeline-mode"),
]

_NUM_WORKERS = 8
_BATCH_SIZE = 16
_ITERATIONS = 3


@pytest.fixture(scope="module")
def conv_setup():
    """An 8-worker MD-GAN on the conv architecture with real shards."""
    train, _ = make_mnist_like(n_train=640, n_test=160, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-cnn",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        width_factor=0.5,
        use_minibatch_discrimination=False,
    )
    shards = partition_iid(train, _NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


def _build_trainer(conv_setup, pipeline_depth: int, backend: str = "resident"):
    factory, shards = conv_setup
    config = TrainingConfig(
        iterations=_ITERATIONS,
        batch_size=_BATCH_SIZE,
        num_batches=_NUM_WORKERS,
        seed=11,
        backend=backend,
        max_workers=_NUM_WORKERS,
        pipeline_depth=pipeline_depth,
    )
    return MDGANTrainer(factory, shards, config)


def _timed_run(conv_setup, pipeline_depth: int):
    trainer = _build_trainer(conv_setup, pipeline_depth)
    start = time.perf_counter()
    history = trainer.train()
    return time.perf_counter() - start, history


def test_pipelined_run_records_staleness_and_overlap(conv_setup):
    _, history = _timed_run(conv_setup, pipeline_depth=1)
    assert history.staleness == [0] + [1] * (_ITERATIONS - 1)
    assert history.overlap["pipeline_depth"] == 1.0
    assert history.overlap["max_staleness"] == 1.0
    assert (
        history.overlap["lookahead_generations"]
        + history.overlap["immediate_generations"]
        == _ITERATIONS
    )


def test_depth_zero_is_bitwise_identical_to_sync_resident(conv_setup):
    sync = _build_trainer(conv_setup, pipeline_depth=0)
    sync_history = sync.train()
    explicit = _build_trainer(conv_setup, pipeline_depth=0)
    explicit_history = explicit.train()
    assert explicit_history.generator_loss == sync_history.generator_loss
    assert np.array_equal(
        explicit.generator.get_parameters(), sync.generator.get_parameters()
    )
    assert explicit_history.staleness == []


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="overlap needs a multi-core host (>= 4 cores)",
)
def test_pipeline_depth_one_beats_synchronous_resident(conv_setup):
    # Warm both paths (pool spin-up, allocator), then interleave best-of-N so
    # a background load spike cannot bias one schedule.
    _timed_run(conv_setup, 0)
    _timed_run(conv_setup, 1)
    best = {0: float("inf"), 1: float("inf")}
    speedup = 0.0
    for attempt_reps in (3, 5):
        for _ in range(attempt_reps):
            for depth in (0, 1):
                best[depth] = min(best[depth], _timed_run(conv_setup, depth)[0])
        speedup = best[0] / best[1]
        if speedup >= 1.1:
            break
    print(
        f"{_ITERATIONS}-iteration md-gan at {_NUM_WORKERS} workers, k={_NUM_WORKERS}: "
        f"sync resident {best[0]:.2f}s, pipelined depth-1 {best[1]:.2f}s "
        f"({speedup:.2f}x, {os.cpu_count()} cores)"
    )
    assert speedup >= 1.05, (
        f"pipelined depth-1 only {speedup:.2f}x faster than synchronous "
        f"resident at {_NUM_WORKERS} workers on {os.cpu_count()} cores; "
        "expected a measurable win (>= 1.05x)"
    )

"""Benchmark: the parallel execution backends vs the serial reference.

Validates the two promises of the ``repro.runtime`` subsystem:

* seeded training is **bitwise identical** across ``serial``, ``thread`` and
  ``process`` backends (checked here end-to-end on the conv architecture;
  the fine-grained parity matrix lives in ``tests/runtime/test_parity.py``);
* on a multi-core host, fanning the 8-worker MD-GAN per-iteration phase out
  through the thread backend is at least 1.5x faster than running the same
  workers sequentially — the conv forward/backward kernels spend their time
  in NumPy GEMMs, which release the GIL.

The speedup assertion needs real cores: it is skipped when the host exposes
fewer than four, and reported informationally otherwise.  Timing uses
best-of-N ``perf_counter`` repetitions with interleaved backend order, which
is robust against background load; pytest-benchmark is not used because the
assertion needs both timings inside one test.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import MDGANTrainer, TrainingConfig
from repro.datasets import make_mnist_like, partition_iid
from repro.models import build_architecture
from repro.runtime import BACKENDS

pytestmark = [
    pytest.mark.slow,  # timing / multi-run benchmark; excluded from the fast lane
    pytest.mark.paper_artifact("parallel-backend"),
]

_NUM_WORKERS = 8
_BATCH_SIZE = 16
_ITERATIONS = 2


@pytest.fixture(scope="module")
def conv_setup():
    """An 8-worker MD-GAN on the conv architecture (the paper's MNIST CNN)."""
    train, _ = make_mnist_like(n_train=640, n_test=160, image_size=16, seed=7)
    factory = build_architecture(
        "mnist-cnn",
        image_shape=train.spec.shape,
        num_classes=train.num_classes,
        width_factor=0.5,
        use_minibatch_discrimination=False,
    )
    shards = partition_iid(train, _NUM_WORKERS, np.random.default_rng(3))
    return factory, shards


def _build_trainer(conv_setup, backend: str) -> MDGANTrainer:
    factory, shards = conv_setup
    config = TrainingConfig(
        iterations=_ITERATIONS,
        batch_size=_BATCH_SIZE,
        num_batches=_NUM_WORKERS,
        seed=11,
        backend=backend,
        max_workers=_NUM_WORKERS,
    )
    return MDGANTrainer(factory, shards, config)


def _timed_run(conv_setup, backend: str):
    trainer = _build_trainer(conv_setup, backend)
    start = time.perf_counter()
    history = trainer.train()
    elapsed = time.perf_counter() - start
    return trainer, history, elapsed


def test_all_backends_bitwise_identical_on_conv_model(conv_setup):
    runs = {backend: _timed_run(conv_setup, backend) for backend in BACKENDS}
    _, ref_history, _ = runs["serial"]
    ref_params = runs["serial"][0].generator.get_parameters()
    assert np.all(np.isfinite(ref_history.generator_loss))
    for backend in ("thread", "process"):
        trainer, history, _ = runs[backend]
        assert history.generator_loss == ref_history.generator_loss, backend
        assert history.discriminator_loss == ref_history.discriminator_loss, backend
        assert np.array_equal(trainer.generator.get_parameters(), ref_params), backend


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup needs a multi-core host (>= 4 cores)",
)
def test_thread_backend_speedup_at_8_workers(conv_setup):
    # Warm both paths once (pool spin-up, allocator), then interleave the
    # measurements so a load spike cannot bias one backend; take best-of-N.
    _timed_run(conv_setup, "serial")
    _timed_run(conv_setup, "thread")
    best = {"serial": float("inf"), "thread": float("inf")}
    speedup = 0.0
    for attempt_reps in (3, 5):
        for _ in range(attempt_reps):
            for backend in ("serial", "thread"):
                best[backend] = min(
                    best[backend], _timed_run(conv_setup, backend)[2]
                )
        speedup = best["serial"] / best["thread"]
        if speedup >= 1.5:
            break
    print(
        f"8-worker md-gan iterations: serial {best['serial']:.2f}s, "
        f"thread {best['thread']:.2f}s ({speedup:.2f}x, "
        f"{os.cpu_count()} cores)"
    )
    assert speedup >= 1.5, (
        f"thread backend only {speedup:.2f}x faster than serial at "
        f"{_NUM_WORKERS} workers on {os.cpu_count()} cores; expected >= 1.5x"
    )

"""Analytic computation / memory complexity model (paper Table II).

The paper summarises the asymptotic workload of FL-GAN and MD-GAN at the
central server ``C`` and at a worker ``W`` as:

================  ============================  =========================
Quantity          FL-GAN                        MD-GAN
================  ============================  =========================
Computation C     ``O(I b N (|w|+|θ|)/(m E))``  ``O(I b (d N + k |w|))``
Memory C          ``O(N (|w|+|θ|))``            ``O(b (d N + k |w|))``
Computation W     ``O(I b (|w|+|θ|))``          ``O(I b |θ|)``
Memory W          ``O(|w|+|θ|)``                ``O(|θ|)``
================  ============================  =========================

The grey rows of the paper's table highlight the headline claim: MD-GAN
removes the generator from the workers, roughly halving their computation
and memory because ``|w| ≈ |θ|`` for typical GANs.

:func:`table2_complexities` instantiates these formulas for a concrete
configuration (dropping the big-O constants), and
:func:`worker_reduction_factor` computes the worker-side reduction factor the
paper advertises as "a factor of two".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "ComplexityInputs",
    "table2_complexities",
    "worker_reduction_factor",
]


@dataclass(frozen=True)
class ComplexityInputs:
    """Scalar quantities the Table II formulas depend on (paper Table I).

    Attributes
    ----------
    generator_params:
        ``|w|`` — number of generator parameters.
    discriminator_params:
        ``|θ|`` — number of discriminator parameters.
    object_size:
        ``d`` — number of scalar features per data object.
    batch_size:
        ``b``.
    num_workers:
        ``N``.
    num_batches:
        ``k`` — generated batches per MD-GAN iteration.
    iterations:
        ``I`` — global iterations.
    local_dataset_size:
        ``m`` — objects per worker shard.
    epochs_per_round:
        ``E`` — local epochs between FL-GAN rounds / MD-GAN swaps.
    """

    generator_params: int
    discriminator_params: int
    object_size: int
    batch_size: int
    num_workers: int
    num_batches: int
    iterations: int
    local_dataset_size: int
    epochs_per_round: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "generator_params",
            "discriminator_params",
            "object_size",
            "batch_size",
            "num_workers",
            "num_batches",
            "iterations",
            "local_dataset_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.epochs_per_round <= 0:
            raise ValueError("epochs_per_round must be positive")
        if self.num_batches > self.num_workers:
            raise ValueError("num_batches (k) must satisfy k <= N")


def table2_complexities(inputs: ComplexityInputs) -> Dict[str, Dict[str, float]]:
    """Instantiate the Table II formulas (big-O constants dropped).

    Returns a nested mapping ``{quantity: {"fl-gan": value, "md-gan": value}}``
    with the four quantities ``computation_server``, ``memory_server``,
    ``computation_worker`` and ``memory_worker``.
    """
    w = float(inputs.generator_params)
    theta = float(inputs.discriminator_params)
    d = float(inputs.object_size)
    b = float(inputs.batch_size)
    n = float(inputs.num_workers)
    k = float(inputs.num_batches)
    i = float(inputs.iterations)
    m = float(inputs.local_dataset_size)
    e = float(inputs.epochs_per_round)

    return {
        "computation_server": {
            "fl-gan": i * b * n * (w + theta) / (m * e),
            "md-gan": i * b * (d * n + k * w),
        },
        "memory_server": {
            "fl-gan": n * (w + theta),
            "md-gan": b * (d * n + k * w),
        },
        "computation_worker": {
            "fl-gan": i * b * (w + theta),
            "md-gan": i * b * theta,
        },
        "memory_worker": {
            "fl-gan": w + theta,
            "md-gan": theta,
        },
    }


def worker_reduction_factor(inputs: ComplexityInputs) -> Dict[str, float]:
    """Worker-side FL-GAN / MD-GAN ratios (the paper's "factor of two" claim).

    Returns the computation and memory reduction factors; both equal
    ``(|w| + |θ|) / |θ|`` and are close to 2 when generator and discriminator
    have similar sizes.
    """
    table = table2_complexities(inputs)
    return {
        "computation": table["computation_worker"]["fl-gan"]
        / table["computation_worker"]["md-gan"],
        "memory": table["memory_worker"]["fl-gan"] / table["memory_worker"]["md-gan"],
    }

"""``repro.analysis`` — analytic complexity and communication models.

Implements the closed-form expressions behind the paper's Table II
(computation / memory), Table III (communication complexity), Table IV
(instantiated CIFAR10 costs) and Figure 2 (ingress traffic vs batch size).
"""

from .communication import (
    MEGABYTE,
    CommunicationInputs,
    crossover_batch_size,
    ingress_traffic_per_iteration,
    ingress_traffic_sweep,
    table3_communication,
    table4_costs,
)
from .complexity import (
    ComplexityInputs,
    table2_complexities,
    worker_reduction_factor,
)

__all__ = [
    "ComplexityInputs",
    "table2_complexities",
    "worker_reduction_factor",
    "CommunicationInputs",
    "table3_communication",
    "table4_costs",
    "ingress_traffic_per_iteration",
    "ingress_traffic_sweep",
    "crossover_batch_size",
    "MEGABYTE",
]

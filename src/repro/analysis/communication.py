"""Analytic communication model (paper Tables III, IV and Figure 2).

The paper accounts for three communication types in MD-GAN and two in
FL-GAN.  With ``θ`` and ``w`` the discriminator / generator parameter counts,
``b`` the batch size, ``d`` the object size (in scalar features), ``N`` the
number of workers, ``m`` the local dataset size, ``E`` the number of local
epochs per round and ``I`` the total number of generator iterations:

=====================  ==================  ===================
Communication           FL-GAN              MD-GAN
=====================  ==================  ===================
C -> W   (at C)         ``N (θ + w)``       ``b d N`` per batch sent to each
                                            worker (two batches are sent, so
                                            the measured figure is ``2 b d N``)
C -> W   (at W)         ``θ + w``           ``b d`` (``2 b d`` measured)
W -> C   (at W)         ``θ + w``           ``b d``
W -> C   (at C)         ``N (θ + w)``       ``b d N``
# C <-> W rounds         ``I b / (m E)``     ``I``
W -> W   (at W)         —                   ``θ``
# W <-> W rounds         —                   ``I b / (m E)``
=====================  ==================  ===================

All quantities are numbers of 32-bit floats; byte figures multiply by 4.
Table III's ``C->W`` rows count a single generated batch per worker while the
prose of Section IV-D1 counts the two batches actually shipped (``2bd`` per
worker); :func:`table3_communication` exposes both via the
``count_both_generated_batches`` flag (default ``True``, matching what the
emulated cluster measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..nn.serialize import FLOAT_BYTES

__all__ = [
    "CommunicationInputs",
    "table3_communication",
    "table4_costs",
    "ingress_traffic_per_iteration",
    "ingress_traffic_sweep",
    "crossover_batch_size",
    "MEGABYTE",
]

#: The paper reports megabytes using the binary convention (2**20 bytes).
MEGABYTE = float(2**20)


@dataclass(frozen=True)
class CommunicationInputs:
    """Scalar quantities the communication formulas depend on."""

    generator_params: int
    discriminator_params: int
    object_size: int
    batch_size: int
    num_workers: int
    iterations: int
    local_dataset_size: int
    epochs_per_round: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "generator_params",
            "discriminator_params",
            "object_size",
            "batch_size",
            "num_workers",
            "iterations",
            "local_dataset_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.epochs_per_round <= 0:
            raise ValueError("epochs_per_round must be positive")

    @property
    def model_floats(self) -> int:
        """``θ + w`` — floats shipped per FL-GAN model transfer."""
        return self.generator_params + self.discriminator_params


def table3_communication(
    inputs: CommunicationInputs, count_both_generated_batches: bool = True
) -> Dict[str, Dict[str, float]]:
    """Instantiate the Table III communication complexities (in floats).

    Returns ``{row: {"fl-gan": value, "md-gan": value}}`` where rows follow
    the paper's table: ``server_to_worker_at_server``,
    ``server_to_worker_at_worker``, ``worker_to_server_at_worker``,
    ``worker_to_server_at_server``, ``num_server_worker_rounds``,
    ``worker_to_worker_at_worker``, ``num_worker_worker_rounds``.
    """
    w = float(inputs.generator_params)
    theta = float(inputs.discriminator_params)
    d = float(inputs.object_size)
    b = float(inputs.batch_size)
    n = float(inputs.num_workers)
    i = float(inputs.iterations)
    m = float(inputs.local_dataset_size)
    e = float(inputs.epochs_per_round)
    gen_factor = 2.0 if count_both_generated_batches else 1.0

    return {
        "server_to_worker_at_server": {
            "fl-gan": n * (theta + w),
            "md-gan": gen_factor * b * d * n,
        },
        "server_to_worker_at_worker": {
            "fl-gan": theta + w,
            "md-gan": gen_factor * b * d,
        },
        "worker_to_server_at_worker": {
            "fl-gan": theta + w,
            "md-gan": b * d,
        },
        "worker_to_server_at_server": {
            "fl-gan": n * (theta + w),
            "md-gan": b * d * n,
        },
        "num_server_worker_rounds": {
            "fl-gan": i * b / (m * e),
            "md-gan": i,
        },
        "worker_to_worker_at_worker": {
            "fl-gan": 0.0,
            "md-gan": theta,
        },
        "num_worker_worker_rounds": {
            "fl-gan": 0.0,
            "md-gan": i * b / (m * e),
        },
    }


def table4_costs(
    inputs: CommunicationInputs, count_both_generated_batches: bool = True
) -> Dict[str, Dict[str, float]]:
    """Per-communication costs in megabytes (paper Table IV).

    Converts the Table III float counts into MB (4-byte floats, binary MB)
    and keeps the round counts unchanged.
    """
    floats = table3_communication(inputs, count_both_generated_batches)
    costs: Dict[str, Dict[str, float]] = {}
    for row, values in floats.items():
        if row.startswith("num_"):
            costs[row] = dict(values)
        else:
            costs[row] = {
                algo: value * FLOAT_BYTES / MEGABYTE for algo, value in values.items()
            }
    return costs


def ingress_traffic_per_iteration(
    inputs: CommunicationInputs, count_both_generated_batches: bool = True
) -> Dict[str, Dict[str, float]]:
    """Maximum ingress traffic per iteration, in bytes (paper Figure 2).

    For FL-GAN a "communication" is one federated round: the worker receives
    the full model (``θ + w`` floats) and the server receives ``N`` models.
    For MD-GAN an iteration brings ``(1 or 2) b d`` floats of generated data
    to each worker plus ``θ`` floats when a swap happens, and ``b d N``
    floats of feedback to the server.

    Returns ``{"worker": {...}, "server": {...}}`` with per-algorithm byte
    figures.
    """
    w = float(inputs.generator_params)
    theta = float(inputs.discriminator_params)
    d = float(inputs.object_size)
    b = float(inputs.batch_size)
    n = float(inputs.num_workers)
    gen_factor = 2.0 if count_both_generated_batches else 1.0

    return {
        "worker": {
            "fl-gan": (theta + w) * FLOAT_BYTES,
            "md-gan": (gen_factor * b * d + theta) * FLOAT_BYTES,
        },
        "server": {
            "fl-gan": n * (theta + w) * FLOAT_BYTES,
            "md-gan": n * b * d * FLOAT_BYTES,
        },
    }


def ingress_traffic_sweep(
    inputs: CommunicationInputs,
    batch_sizes: Iterable[int],
    count_both_generated_batches: bool = True,
) -> List[Dict[str, float]]:
    """Sweep the batch size and tabulate Figure 2's four curves.

    Returns one row per batch size with keys ``batch_size``,
    ``flgan_worker``, ``flgan_server``, ``mdgan_worker``, ``mdgan_server``
    (bytes per communication).
    """
    rows = []
    for b in batch_sizes:
        if b <= 0:
            raise ValueError(f"batch sizes must be positive, got {b}")
        swept = CommunicationInputs(
            generator_params=inputs.generator_params,
            discriminator_params=inputs.discriminator_params,
            object_size=inputs.object_size,
            batch_size=int(b),
            num_workers=inputs.num_workers,
            iterations=inputs.iterations,
            local_dataset_size=inputs.local_dataset_size,
            epochs_per_round=inputs.epochs_per_round,
        )
        traffic = ingress_traffic_per_iteration(swept, count_both_generated_batches)
        rows.append(
            {
                "batch_size": float(b),
                "flgan_worker": traffic["worker"]["fl-gan"],
                "flgan_server": traffic["server"]["fl-gan"],
                "mdgan_worker": traffic["worker"]["md-gan"],
                "mdgan_server": traffic["server"]["md-gan"],
            }
        )
    return rows


def crossover_batch_size(
    inputs: CommunicationInputs, count_both_generated_batches: bool = True
) -> float:
    """Worker-side batch size at which MD-GAN traffic overtakes FL-GAN's.

    Solving ``gen_factor * b * d + θ = θ + w`` for ``b`` gives
    ``b* = w / (gen_factor * d)``.  Below ``b*`` MD-GAN is cheaper per
    communication at the worker; above it FL-GAN is (Figure 2's crossover,
    "in the order of hundreds of images" for MNIST/CIFAR10).
    """
    gen_factor = 2.0 if count_both_generated_batches else 1.0
    return float(inputs.generator_params) / (gen_factor * float(inputs.object_size))

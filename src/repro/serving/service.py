"""``GeneratorService`` — request-facing sample generation on a warm pool.

MD-GAN's server already *is* a generation service during training: every
iteration it farms k-batch forward passes out to the resident pool
(:func:`repro.runtime.pipeline.start_resident_generation`).  This module
exposes that same machinery to callers outside the training loop:

* **Request path** — callers :meth:`~GeneratorService.serve` (blocking) or
  :meth:`~GeneratorService.submit` (async handle) one batch of samples per
  request.  Requests enter a FIFO queue; a single dispatcher thread drains
  the queue and **coalesces** the waiting requests into one resident
  k-batch dispatch (batch ``j`` on slot ``j mod pool size``), so concurrent
  callers share the pool's slots instead of serialising behind each other.
* **Bitwise contract** — the dispatch reuses
  :meth:`~repro.runtime.resident.ResidentBackend.start_generation`'s
  contract exactly: noise/labels are drawn serially at *enqueue* time (in
  arrival order, on the service RNG — or on a per-request RNG when the
  caller supplies a ``seed``, making the request order-independent),
  forwards run on slot-resident generator copies, and BatchNorm batch
  statistics fold back into the service's generator in dispatch order.
  Samples are bit-for-bit what a serial loop — or
  :func:`~repro.runtime.pipeline.fan_out_generation` — would produce from
  the same draws.
* **Param cache** — the service's :class:`~repro.runtime.pipeline.
  GeneratorHandle` is versioned: repeat requests against an unchanged
  generator ship **zero parameter bytes** (the slot copies are already
  current); :meth:`~GeneratorService.update_generator` installs new weights
  and bumps the version, so exactly one re-ship per slot follows.
* **Fail-stop** — a transport failure (killed slot, broken socket) poisons
  the pool; the dispatcher broadcasts the error to every in-flight *and*
  queued request and the service refuses further requests, mirroring the
  resident backend's own fail-stop discipline.  Lost requests are reported,
  never silently re-run.

Non-resident backends (``serial``/``thread``/``process``, or generators the
resident op cannot reproduce exactly, e.g. with Dropout) degrade to the
same coalesced loop through ``backend.map_ordered`` — identical results,
just without the resident param cache.

Lifecycle is the shared :class:`~repro.core.lifecycle.BackendOwner`
contract: the service lazily builds the backend from its config, or serves
straight from a trainer's already-warm pool via :meth:`GeneratorService.
from_trainer` (adopted unowned — closing the service leaves the trainer's
pool running).
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

import numpy as np

from ..core.config import TrainingConfig
from ..core.lifecycle import BackendOwner
from ..models.base import generator_input
from ..runtime.pipeline import (
    GeneratorHandle,
    _fold_batchnorm_stats,
    _GenerationTask,
    _run_generation_task,
    can_generate_resident,
)
from .stats import ServingStats

__all__ = ["GeneratorService", "ServedBatch", "ServiceClosed", "PendingSamples"]


class ServiceClosed(RuntimeError):
    """The service was closed (or fail-stopped) before answering a request."""


@dataclass
class ServedBatch:
    """One answered generation request."""

    #: Generated images, shape ``(batch_size, *object_shape)``.
    images: np.ndarray
    #: The latent vectors the images were generated from.
    noise: np.ndarray
    #: Class labels (conditional factories only, else ``None``).
    labels: Optional[np.ndarray]
    #: Enqueue-to-ready latency, as the caller experienced it.
    latency_seconds: float = 0.0


@dataclass
class _Request:
    """Internal queue entry: pre-drawn inputs plus a completion event."""

    g_input: np.ndarray
    noise: np.ndarray
    labels: Optional[np.ndarray]
    enqueued_at: float
    done: threading.Event = field(default_factory=threading.Event)
    batch: Optional[ServedBatch] = None
    error: Optional[BaseException] = None


class PendingSamples:
    """Async handle for one submitted request; ``result()`` blocks for it."""

    def __init__(self, request: _Request) -> None:
        self._request = request

    def result(self, timeout: Optional[float] = None) -> ServedBatch:
        """Wait for the request's batch; re-raises the service's failure."""
        if not self._request.done.wait(timeout):
            raise TimeoutError("generation request did not complete in time")
        if self._request.error is not None:
            raise self._request.error
        assert self._request.batch is not None
        return self._request.batch


class GeneratorService(BackendOwner):
    """Serve generator samples from a warm execution backend.

    Parameters
    ----------
    generator:
        The (built) generator network to serve from.  The service folds
        BatchNorm running statistics back into it in dispatch order, exactly
        like the training-time generation paths.
    factory:
        The :class:`~repro.models.base.GANFactory` describing latent
        dimension / conditioning (used to draw request noise).
    config:
        A :class:`~repro.core.config.TrainingConfig`; supplies the backend
        selection (``backend``/``max_workers``/``shm_install``/``transport``/
        ``transport_address``), the default per-request ``batch_size`` and
        the service RNG ``seed``.  Defaults to a resident-backend config.
    max_coalesce:
        Upper bound on requests folded into one dispatch (bounds worst-case
        head-of-line latency).  Default 64.
    """

    def __init__(
        self,
        generator,
        factory,
        config: Optional[TrainingConfig] = None,
        *,
        max_coalesce: int = 64,
    ) -> None:
        if not getattr(generator, "built", False):
            raise ValueError("GeneratorService needs a built generator")
        if max_coalesce < 1:
            raise ValueError(f"max_coalesce must be >= 1, got {max_coalesce}")
        self.config = config if config is not None else TrainingConfig(backend="resident")
        self.generator = generator
        self.factory = factory
        self.max_coalesce = int(max_coalesce)
        #: Versioned identity of the served generator on the pool slots;
        #: bumped by :meth:`update_generator` so repeat dispatches against an
        #: unchanged generator ship zero parameter bytes.
        self.handle = GeneratorHandle(version=0)
        self.stats = ServingStats()
        self._rng = np.random.default_rng(self.config.seed)
        self._lock = threading.Lock()
        self._queue: Deque[_Request] = deque()
        self._work = threading.Condition(self._lock)
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False
        self._failure: Optional[BaseException] = None

    # -- construction from a trainer ---------------------------------------------
    @classmethod
    def from_trainer(cls, trainer, *, max_coalesce: int = 64) -> "GeneratorService":
        """Serve from a trainer's generator on its already-warm pool.

        The trainer's backend is adopted *unowned* (closing the service
        leaves the pool running for the trainer) and the trainer's own
        versioned :class:`~repro.runtime.pipeline.GeneratorHandle` is
        shared, so generator updates applied by further training invalidate
        the service's param cache automatically.  Use between training
        phases — the resident protocol requires dispatch-order collection,
        so the service must not dispatch while a ``train()`` call is live.
        """
        service = cls(
            trainer.generator,
            trainer.factory,
            trainer.config,
            max_coalesce=max_coalesce,
        )
        service.adopt_backend(trainer.executor, owned=False)
        service.handle = trainer._generator_handle
        return service

    # -- request path ------------------------------------------------------------
    def submit(
        self,
        *,
        batch_size: Optional[int] = None,
        seed: Optional[int] = None,
        noise: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> PendingSamples:
        """Enqueue one generation request; returns a waitable handle.

        Noise/labels are drawn here, at enqueue time, under the queue lock —
        in arrival order on the service RNG, or on a private
        ``default_rng(seed)`` when ``seed`` is given (making the request's
        samples independent of arrival order).  Callers may also pass
        explicit ``noise`` (and ``labels`` for conditional factories)
        instead.
        """
        batch_size = int(self.config.batch_size if batch_size is None else batch_size)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        request_rng = np.random.default_rng(seed) if seed is not None else None
        now = time.perf_counter()
        with self._lock:
            self._check_open()
            rng = request_rng if request_rng is not None else self._rng
            if noise is None:
                noise = rng.normal(0.0, 1.0, size=(batch_size, self.factory.latent_dim))
            noise = np.asarray(noise).astype(self.generator.dtype, copy=False)
            if self.factory.conditional and labels is None:
                labels = rng.integers(0, self.factory.num_classes, size=len(noise))
            request = _Request(
                g_input=generator_input(noise, labels, self.factory.num_classes),
                noise=noise,
                labels=labels,
                enqueued_at=now,
            )
            self._queue.append(request)
            self._ensure_dispatcher()
            self._work.notify_all()
        self.stats.record_enqueue(now)
        return PendingSamples(request)

    def serve(
        self,
        *,
        batch_size: Optional[int] = None,
        seed: Optional[int] = None,
        noise: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        timeout: Optional[float] = None,
    ) -> ServedBatch:
        """Generate one batch of samples (blocking form of :meth:`submit`)."""
        return self.submit(
            batch_size=batch_size, seed=seed, noise=noise, labels=labels
        ).result(timeout)

    def warmup(self, num_batches: Optional[int] = None) -> None:
        """Prime every pool slot with one coalesced dispatch (blocking).

        Enqueues ``num_batches`` single-sample requests (default: the
        backend's pool size) *atomically under the queue lock*, so the
        dispatcher picks them up as one k-batch group whose batches land on
        slots ``0 .. k-1`` — installing the generator structure and filling
        the versioned param cache on every slot in one deterministic step.
        After a warm-up, requests against an unchanged generator ship zero
        parameter bytes no matter which slot serves them.  Call it before
        opening the service to traffic (a busy queue would split the group).
        """
        backend = self.executor
        if num_batches is None:
            num_batches = int(getattr(backend, "max_workers", None) or 1)
        num_batches = min(max(1, num_batches), self.max_coalesce)
        now = time.perf_counter()
        requests: List[_Request] = []
        with self._lock:
            self._check_open()
            for _ in range(num_batches):
                noise = self._rng.normal(0.0, 1.0, size=(1, self.factory.latent_dim))
                noise = noise.astype(self.generator.dtype, copy=False)
                labels = (
                    self._rng.integers(0, self.factory.num_classes, size=1)
                    if self.factory.conditional
                    else None
                )
                request = _Request(
                    g_input=generator_input(noise, labels, self.factory.num_classes),
                    noise=noise,
                    labels=labels,
                    enqueued_at=now,
                )
                requests.append(request)
                self._queue.append(request)
            self._ensure_dispatcher()
            self._work.notify_all()
        self.stats.record_enqueue(now)
        for request in requests:
            PendingSamples(request).result()

    def update_generator(self, parameters: np.ndarray) -> None:
        """Install new generator weights and invalidate the slot param cache.

        Runs under the queue lock, between dispatches: requests enqueued
        after this call are served by the new weights, and the next dispatch
        re-ships the parameter vector exactly once per slot (the handle
        version bump is what invalidates the cache).
        """
        with self._lock:
            self._check_open()
            self.generator.set_parameters(parameters)
            self.handle.bump()

    # -- dispatcher --------------------------------------------------------------
    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="generator-service", daemon=True
            )
            self._dispatcher.start()

    def _check_open(self) -> None:
        if self._failure is not None:
            raise ServiceClosed(
                "generator service fail-stopped after a backend failure; "
                f"rebuild it to continue. Original failure: {self._failure!r}"
            )
        if self._closed:
            raise ServiceClosed("generator service is closed")

    def _take_requests(self) -> List[_Request]:
        """Block until work or shutdown; pop up to ``max_coalesce`` requests."""
        with self._work:
            while not self._queue and not self._closed:
                self._work.wait()
            taken: List[_Request] = []
            while self._queue and len(taken) < self.max_coalesce:
                taken.append(self._queue.popleft())
            return taken

    def _dispatch_loop(self) -> None:
        while True:
            requests = self._take_requests()
            if not requests:
                return  # closed with an empty queue
            try:
                outputs = self._generate([r.g_input for r in requests])
            except BaseException as exc:  # fail-stop: broadcast, then refuse
                self._fail(requests, exc)
                return
            now = time.perf_counter()
            self.stats.record_dispatch(len(requests))
            for request, (images, _) in zip(requests, outputs):
                latency = now - request.enqueued_at
                request.batch = ServedBatch(
                    images=images,
                    noise=request.noise,
                    labels=request.labels,
                    latency_seconds=latency,
                )
                self.stats.record_request(latency, len(images), now)
                request.done.set()

    def _generate(self, g_inputs: List[np.ndarray]) -> List[Any]:
        """Run the coalesced forward passes; returns ``(images, bn_stats)`` pairs.

        The resident path ships the inputs to the pool slots (zero param
        bytes when the slot copies are current); every other backend — and
        generators the resident op cannot reproduce exactly — runs the same
        per-batch tasks through ``map_ordered`` on deep copies.  Both paths
        fold the captured BatchNorm statistics back in dispatch order, so
        the service generator's running stats follow the serial trajectory.
        """
        backend = self.executor
        # Snapshot parameters together with the handle version under the
        # queue lock: an update_generator() landing mid-dispatch must not
        # pair the *new* version with the *old* parameter vector in the
        # backend's param cache (which would silently serve stale weights).
        with self._lock:
            if can_generate_resident(backend, self.generator, len(g_inputs)):
                pending = backend.start_generation(
                    GeneratorHandle(key=self.handle.key, version=self.handle.version),
                    lambda: self.generator,
                    self.generator.get_parameters(),
                    g_inputs,
                )
                tasks = None
            else:
                pending = None
                tasks = [
                    _GenerationTask(copy.deepcopy(self.generator), g_input)
                    for g_input in g_inputs
                ]
        if pending is not None:
            outputs = pending.result()
        else:
            outputs = backend.map_ordered(_run_generation_task, tasks)
        _fold_batchnorm_stats(self.generator, [stats for _, stats in outputs])
        return outputs

    def _fail(self, in_flight: List[_Request], exc: BaseException) -> None:
        """Broadcast ``exc`` to in-flight and queued requests; refuse new ones."""
        with self._lock:
            self._failure = exc
            queued = list(self._queue)
            self._queue.clear()
        for request in in_flight + queued:
            request.error = exc
            self.stats.record_failure()
            request.done.set()

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Drain nothing, refuse everything: fail queued requests and shut down.

        Queued-but-undispatched requests complete with :class:`ServiceClosed`
        (they were never sent to the pool); the dispatcher thread exits; the
        backend is released per the :class:`~repro.core.lifecycle.
        BackendOwner` contract (an adopted, unowned pool is left running).
        """
        with self._lock:
            self._closed = True
            queued = list(self._queue)
            self._queue.clear()
            self._work.notify_all()
        for request in queued:
            request.error = ServiceClosed("generator service closed before dispatch")
            request.done.set()
        dispatcher = self._dispatcher
        if dispatcher is not None and dispatcher.is_alive():
            if dispatcher is not threading.current_thread():
                dispatcher.join(timeout=30.0)
        super().close()

    def __enter__(self) -> "GeneratorService":
        return self

"""``repro.serving`` — generation-as-a-service on the warm resident pool.

MD-GAN's central server (conf_ipps_HardyMS19) exists to *serve generated
samples* to a fleet; during training the resident pool already does exactly
that, inside ``train()``.  This package turns the same warm pool into a
request-facing service:

* :class:`GeneratorService` — queued, coalesced, latency-accounted
  ``serve()``/``submit()`` on any execution backend, with the resident
  backend's versioned param cache (an unchanged generator ships zero
  parameter bytes per request) and fail-stop error broadcast.
* :mod:`repro.serving.stats` — the latency/throughput accounting behind the
  ``serve-bench`` experiment (p50/p95/p99, samples/s, coalescing factor).
* :mod:`repro.serving.checkpoint` — serialise service and mid-run trainer
  state (including full :meth:`~repro.datasets.sampler.EpochSampler.
  cursor_state` positions) so a pool survives process restarts without
  retraining.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_service,
    restore_trainer,
    save_checkpoint,
    service_checkpoint,
    trainer_checkpoint,
)
from .service import GeneratorService, PendingSamples, ServedBatch, ServiceClosed
from .stats import ServingStats

__all__ = [
    "GeneratorService",
    "PendingSamples",
    "ServedBatch",
    "ServiceClosed",
    "ServingStats",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "service_checkpoint",
    "restore_service",
    "trainer_checkpoint",
    "restore_trainer",
    "save_checkpoint",
    "load_checkpoint",
]

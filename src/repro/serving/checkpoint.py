"""Checkpoint / restore for the serving layer and the MD-GAN trainer.

A warm resident pool holds nothing that cannot be rebuilt from the owner's
authoritative objects — that is the resident design's recovery story — so a
checkpoint never serialises pool *processes*; it serialises the owner-side
state from which a fresh pool re-installs bitwise-identically after a
process restart:

* **Service checkpoints** capture the served generator (weights *and*
  BatchNorm running statistics travel inside the pickled network), the
  handle version and the service config.  :func:`restore_service` builds a
  new :class:`~repro.serving.GeneratorService` that answers requests
  exactly as the old one would have.
* **Trainer checkpoints** capture everything a mid-run
  :class:`~repro.core.mdgan.MDGANTrainer` needs to continue training
  bitwise-exactly: the generator and its optimizer, the generator-update
  counter, the server RNG state, and per worker the discriminator, its
  optimizer, the worker RNG state and the **full**
  :meth:`~repro.datasets.sampler.EpochSampler.cursor_state` (mid-epoch
  shuffle order included).  Resident worker state is synced back into the
  trainer first, so the checkpoint always reflects the pool's latest steps.

Checkpoint format (version 1): a dict with ``format`` =
``"repro-checkpoint"``, ``version`` = 1, ``kind`` (``"service"`` or
``"mdgan-trainer"``) and a ``state`` payload of plain pickled objects —
the whole stack is pure NumPy, so :mod:`pickle` round-trips it exactly.
:func:`save_checkpoint` / :func:`load_checkpoint` handle the file form.
"""

from __future__ import annotations

import copy
import pickle
from pathlib import Path
from typing import Any, Dict, Union

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "service_checkpoint",
    "restore_service",
    "trainer_checkpoint",
    "restore_trainer",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


def _envelope(kind: str, state: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "kind": kind,
        "state": state,
    }


def _check_envelope(checkpoint: Dict[str, Any], kind: str) -> Dict[str, Any]:
    if checkpoint.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"not a {CHECKPOINT_FORMAT} checkpoint: {checkpoint.get('format')!r}")
    if checkpoint.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {checkpoint.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    if checkpoint.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} checkpoint, got {checkpoint.get('kind')!r}")
    return checkpoint["state"]


# -- service ------------------------------------------------------------------------


def service_checkpoint(service) -> Dict[str, Any]:
    """Snapshot a :class:`~repro.serving.GeneratorService` (deep-copied)."""
    factory = service.factory
    with service._lock:
        state = {
            "generator": copy.deepcopy(service.generator),
            "handle_version": service.handle.version,
            # Factories capture builder closures, which do not survive
            # pickling; the service only draws noise/labels, so the frozen
            # FactorySpec view is sufficient — and file-serialisable.
            "factory": factory.spec() if hasattr(factory, "spec") else factory,
            "config": service.config,
            "max_coalesce": service.max_coalesce,
        }
    return _envelope("service", state)


def restore_service(checkpoint: Dict[str, Any], config=None):
    """Rebuild a service from a :func:`service_checkpoint` snapshot.

    ``config`` overrides the checkpointed one (e.g. to restore onto a
    different transport or pool size — the samples are bitwise identical
    either way).  The restored service starts with a fresh version-0 handle
    on a cold pool, so the first dispatch installs and ships parameters
    once per slot, then the cache takes over again.
    """
    from .service import GeneratorService

    state = _check_envelope(checkpoint, "service")
    return GeneratorService(
        copy.deepcopy(state["generator"]),
        state["factory"],
        config if config is not None else state["config"],
        max_coalesce=state["max_coalesce"],
    )


# -- MD-GAN trainer -----------------------------------------------------------------


def trainer_checkpoint(trainer) -> Dict[str, Any]:
    """Snapshot a mid-run MD-GAN trainer for bitwise-exact continuation.

    Syncs resident worker state back into the trainer's objects first (a
    no-op for cold pools and non-resident backends), then deep-copies the
    authoritative state so further training does not mutate the snapshot.
    """
    trainer.sync_worker_state()
    state = {
        "generator": copy.deepcopy(trainer.generator),
        "gen_opt": copy.deepcopy(trainer._gen_opt),
        "gen_update_count": trainer._gen_update_count,
        "server_rng_state": copy.deepcopy(trainer._rng.bit_generator.state),
        "workers": [
            {
                "discriminator": copy.deepcopy(worker.discriminator),
                "disc_opt": copy.deepcopy(worker.disc_opt),
                "rng_state": copy.deepcopy(worker.rng.bit_generator.state),
                "sampler_cursor": copy.deepcopy(worker.sampler.cursor_state()),
            }
            for worker in trainer.workers
        ],
    }
    return _envelope("mdgan-trainer", state)


def restore_trainer(trainer, checkpoint: Dict[str, Any]) -> None:
    """Restore a :func:`trainer_checkpoint` into ``trainer``, in place.

    ``trainer`` must have been constructed with the same factory, shards and
    config as the checkpointed one (shards are immutable and deliberately
    not serialised — only the sampler *cursor* over them is).  The warm pool,
    if any, is released first: its resident copies and param-cache entries
    describe the pre-restore state, and the next ``train()`` re-installs
    from the restored objects — which is exactly the resident recovery path.

    RNG states are restored *in place* on the existing ``Generator`` objects
    (each worker's RNG is the same object its sampler draws from; replacing
    it would sever that identity).
    """
    state = _check_envelope(checkpoint, "mdgan-trainer")
    if len(state["workers"]) != len(trainer.workers):
        raise ValueError(
            f"checkpoint has {len(state['workers'])} workers, trainer has "
            f"{len(trainer.workers)}"
        )
    trainer.close_backend()
    trainer.generator = copy.deepcopy(state["generator"])
    trainer._gen_opt = copy.deepcopy(state["gen_opt"])
    trainer._gen_update_count = state["gen_update_count"]
    trainer._generator_handle.bump()
    trainer._rng.bit_generator.state = copy.deepcopy(state["server_rng_state"])
    for worker, saved in zip(trainer.workers, state["workers"]):
        worker.discriminator = copy.deepcopy(saved["discriminator"])
        worker.disc_opt = copy.deepcopy(saved["disc_opt"])
        worker.rng.bit_generator.state = copy.deepcopy(saved["rng_state"])
        worker.sampler.restore_cursor_state(copy.deepcopy(saved["sampler_cursor"]))


# -- file form ----------------------------------------------------------------------


def save_checkpoint(checkpoint: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a checkpoint dict to ``path`` (pickle, highest protocol)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a checkpoint dict written by :func:`save_checkpoint`."""
    with open(path, "rb") as fh:
        checkpoint = pickle.load(fh)
    if not isinstance(checkpoint, dict) or checkpoint.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    return checkpoint

"""Latency/throughput accounting for the generation service.

Every request the service answers records one end-to-end latency sample
(enqueue to result-ready, as the caller experiences it) and every dispatch
records how many queued requests it coalesced into a single resident
k-batch.  :meth:`ServingStats.summary` condenses them into the numbers the
``serve-bench`` experiment reports: throughput in samples and requests per
second plus p50/p95/p99 latency.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

__all__ = ["ServingStats"]


class ServingStats:
    """Thread-safe counters and latency reservoir for one service lifetime.

    Latencies are kept exactly (one float per request) — serving benchmarks
    run tens of thousands of requests at most, so a reservoir approximation
    would only blur the tail percentiles the benchmark exists to measure.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self.requests = 0
        self.samples = 0
        self.dispatches = 0
        #: Requests answered per dispatch (the coalescing factor), summed;
        #: ``coalesced / dispatches`` is the mean k per resident dispatch.
        self.coalesced = 0
        self.failures = 0
        #: ``perf_counter`` of the first enqueue / last completion, bounding
        #: the active serving window the throughput numbers divide by.
        self._first_start: Optional[float] = None
        self._last_end: Optional[float] = None

    def record_enqueue(self, now: float) -> None:
        """Note a request entering the queue (starts the active window)."""
        with self._lock:
            if self._first_start is None or now < self._first_start:
                self._first_start = now

    def record_dispatch(self, num_requests: int) -> None:
        """Note one coalesced dispatch covering ``num_requests`` requests."""
        with self._lock:
            self.dispatches += 1
            self.coalesced += int(num_requests)

    def record_request(self, latency_seconds: float, num_samples: int, now: float) -> None:
        """Note one answered request: its latency and the samples it carried."""
        with self._lock:
            self._latencies.append(float(latency_seconds))
            self.requests += 1
            self.samples += int(num_samples)
            if self._last_end is None or now > self._last_end:
                self._last_end = now

    def record_failure(self) -> None:
        """Note one request answered with an error."""
        with self._lock:
            self.failures += 1

    def percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (NaN with no samples)."""
        with self._lock:
            if not self._latencies:
                return float("nan")
            return float(np.percentile(self._latencies, q))

    @property
    def elapsed_seconds(self) -> float:
        """Active serving window: first enqueue to last completion."""
        with self._lock:
            if self._first_start is None or self._last_end is None:
                return 0.0
            return max(0.0, self._last_end - self._first_start)

    def summary(self) -> Dict[str, float]:
        """JSON-friendly summary (latencies in milliseconds, rates per second)."""
        elapsed = self.elapsed_seconds
        with self._lock:
            requests = self.requests
            samples = self.samples
            dispatches = self.dispatches
            coalesced = self.coalesced
            failures = self.failures
        return {
            "requests": float(requests),
            "samples": float(samples),
            "failures": float(failures),
            "dispatches": float(dispatches),
            "mean_coalesce": float(coalesced / dispatches) if dispatches else 0.0,
            "elapsed_seconds": float(elapsed),
            "requests_per_second": float(requests / elapsed) if elapsed else 0.0,
            "samples_per_second": float(samples / elapsed) if elapsed else 0.0,
            "latency_p50_ms": self.percentile(50.0) * 1e3,
            "latency_p95_ms": self.percentile(95.0) * 1e3,
            "latency_p99_ms": self.percentile(99.0) * 1e3,
        }

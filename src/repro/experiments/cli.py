"""Command-line interface for the experiment harness.

Usage::

    python -m repro.experiments <artefact> [--scale smoke|small|paper]
                                            [--precision float32|float64]
                                            [--dataset mnist|cifar10|celeba]
                                            [--architecture mnist-mlp|...]
                                            [--json PATH] [--csv PATH]
                                            [--markdown PATH] [--chart]

where ``<artefact>`` is one of ``table2``, ``table3``, ``table4``, ``fig2``,
``fig3``, ``fig4``, ``fig5``, ``fig6``, ``ablation-k``, ``ablation-swap``,
``ablation-extensions``, ``ablation-noniid``, ``traffic-check``,
``serve-bench``, ``staleness-sweep`` or ``all``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, List, Optional

from .ablations import run_ablation_extensions, run_ablation_k, run_ablation_swap
from .celeba_experiment import run_fig6
from .common import ExperimentResult
from .convergence import run_fig3
from .fault_tolerance import run_fig5
from .noniid import run_ablation_noniid
from .reporting import ascii_chart, save_csv, save_json, series_from_rows, to_markdown
from ..runtime.backend import BACKENDS
from ..runtime.transport import TRANSPORTS
from .scalability import run_fig4
from .serve_bench import run_serve_bench
from .staleness import run_staleness_sweep
from .tables import run_fig2, run_table2, run_table3, run_table4
from .timing import run_timing_estimate
from .traffic_check import run_traffic_check

__all__ = ["main", "ARTIFACTS"]

#: artefact name -> (runner, accepts dataset/architecture kwargs)
ARTIFACTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "ablation-k": run_ablation_k,
    "ablation-swap": run_ablation_swap,
    "ablation-extensions": run_ablation_extensions,
    "ablation-noniid": run_ablation_noniid,
    "traffic-check": run_traffic_check,
    "serve-bench": run_serve_bench,
    "staleness-sweep": run_staleness_sweep,
    "timing": run_timing_estimate,
}

#: artefacts whose runners take (dataset, architecture, scale) keyword arguments.
_TRAINING_ARTIFACTS = {
    "fig3",
    "fig4",
    "fig5",
    "ablation-k",
    "ablation-swap",
    "ablation-extensions",
    "ablation-noniid",
    "traffic-check",
    "serve-bench",
    "staleness-sweep",
}
#: artefacts that take only a scale.
_SCALE_ONLY_ARTIFACTS = {"fig6"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("artefact", choices=sorted(ARTIFACTS) + ["all"])
    parser.add_argument("--scale", default="smoke", choices=("smoke", "small", "paper"))
    parser.add_argument(
        "--precision",
        default="float32",
        choices=("float32", "float64"),
        help="floating-point policy for all models (float32 is the fast default)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKENDS,
        help=(
            "execution backend for the per-worker training phase; results are "
            "bitwise identical across backends (thread/process/resident only "
            "change wall-clock time; resident keeps worker state in its pool "
            "process and ships only per-iteration deltas)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="pool size for the thread/process backends (default: cores - 1)",
    )
    parser.add_argument(
        "--shm-install",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "ship resident-pool install payloads (dataset shards, large "
            "weight tensors) via POSIX shared memory instead of the pool "
            "pipes (--no-shm-install falls back to plain pickling; only "
            "meaningful with --backend resident; results are bitwise "
            "identical either way)"
        ),
    )
    parser.add_argument(
        "--transport",
        default="pipe",
        choices=TRANSPORTS,
        help=(
            "transport carrying the resident pool's wire protocol: 'pipe' "
            "(local child processes, the default) or 'tcp' (one socket per "
            "pool slot — loopback workers, or remote hosts running "
            "python -m repro.runtime.worker_host); only meaningful with "
            "--backend resident; results are bitwise identical either way"
        ),
    )
    parser.add_argument(
        "--transport-address",
        default=None,
        metavar="HOST:PORT",
        help=(
            "with --transport tcp: listen on HOST:PORT and wait for "
            "externally started worker hosts to connect (default: bind "
            "loopback and spawn local workers)"
        ),
    )
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=0,
        metavar="D",
        help=(
            "pipelined execution depth (0 = synchronous, the default): the "
            "server runs up to D iterations ahead of the workers, overlapping "
            "batch generation/aggregation with worker compute; D > 0 "
            "introduces a bounded, per-iteration-recorded batch staleness for "
            "MD-GAN (FL-GAN pipelining stays bitwise identical)"
        ),
    )
    parser.add_argument(
        "--on-slot-loss",
        default="fail_stop",
        choices=("fail_stop", "degrade", "wait"),
        help=(
            "resident-pool policy when a slot dies mid-run: 'fail_stop' "
            "(poison the pool and raise, the default — bitwise identical to "
            "pre-membership behaviour), 'degrade' (evict the slot's workers "
            "crash-style and redistribute their shards across survivors; "
            "late joiners revive them), or 'wait' (block up to the rejoin "
            "timeout for replacement capacity and reassign the lost workers "
            "there); only meaningful with --backend resident"
        ),
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fail the run when elastic degradation leaves fewer than N live "
            "workers (only meaningful with --on-slot-loss degrade/wait)"
        ),
    )
    parser.add_argument(
        "--rejoin-backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help=(
            "elastic membership: delay between reconnect/replacement "
            "attempts while healing a lost slot"
        ),
    )
    parser.add_argument("--dataset", default="mnist")
    parser.add_argument("--architecture", default="mnist-mlp")
    parser.add_argument("--json", help="write the result rows to a JSON file")
    parser.add_argument("--csv", help="write the result rows to a CSV file")
    parser.add_argument("--markdown", help="write the result as a markdown table")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII FID-vs-iteration chart when the result has one",
    )
    return parser


def _backend_kwargs(runner: Callable, args: argparse.Namespace) -> Dict[str, object]:
    """Backend/pipeline selection kwargs, for runners whose sweeps support them.

    Backend tuning flags travel *explicitly* — from the parsed arguments into
    the runner signature and from there into ``TrainingConfig`` — instead of
    mutating process-wide defaults, so concurrent runs in one process cannot
    observe each other's settings.
    """
    accepted = inspect.signature(runner).parameters
    kwargs: Dict[str, object] = {}
    # Resident tuning flags travel independently of --backend: some runners
    # (traffic-check, serve-bench) drive a resident pool regardless of the
    # backend selection and still honour the transport/shm choice.
    for flag in ("max_workers", "shm_install", "transport", "transport_address"):
        if flag in accepted:
            kwargs[flag] = getattr(args, flag)
    # Elastic membership flags follow the same explicit path; runners that do
    # not take them keep the fail-stop default, and passing a non-default
    # policy to such a runner warns instead of silently dropping it.
    for flag, default in (
        ("on_slot_loss", "fail_stop"),
        ("min_workers", 1),
        ("rejoin_backoff", 0.25),
    ):
        value = getattr(args, flag)
        if flag in accepted:
            kwargs[flag] = value
        elif value != default:
            print(
                f"note: {runner.__name__} does not take --{flag.replace('_', '-')}; "
                "running fail-stop",
                file=sys.stderr,
            )
    if "backend" in accepted:
        kwargs["backend"] = args.backend
    elif args.backend != "serial":
        print(
            f"note: {runner.__name__} does not take --backend; running serial",
            file=sys.stderr,
        )
    if "pipeline_depth" in accepted:
        kwargs["pipeline_depth"] = args.pipeline_depth
    elif args.pipeline_depth:
        print(
            f"note: {runner.__name__} does not take --pipeline-depth; "
            "running synchronously",
            file=sys.stderr,
        )
    return kwargs


def _run_one(name: str, args: argparse.Namespace) -> ExperimentResult:
    runner = ARTIFACTS[name]
    # Resolved for every artifact class so a dropped --backend always warns.
    backend_kwargs = _backend_kwargs(runner, args)
    if name in _TRAINING_ARTIFACTS:
        return runner(
            dataset=args.dataset,
            architecture=args.architecture,
            scale=args.scale,
            **backend_kwargs,
        )
    if name in _SCALE_ONLY_ARTIFACTS:
        return runner(scale=args.scale, **backend_kwargs)
    return runner(**backend_kwargs)


def _emit(result: ExperimentResult, args: argparse.Namespace) -> None:
    print(result.to_text())
    if args.chart and result.rows and "iteration" in result.rows[0]:
        series = series_from_rows(result.rows, "competitor", "iteration", "fid")
        print()
        print(ascii_chart(series, title=f"{result.name}: FID vs iterations", y_label="FID"))
    if args.json:
        print(f"wrote {save_json(result, args.json)}")
    if args.csv:
        print(f"wrote {save_csv(result, args.csv)}")
    if args.markdown:
        from pathlib import Path

        path = Path(args.markdown)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(to_markdown(result))
        print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from ..nn.precision import set_default_precision

    set_default_precision(args.precision)
    if args.transport_address is not None and args.transport != "tcp":
        print("error: --transport-address requires --transport tcp", file=sys.stderr)
        return 2
    if args.on_slot_loss != "fail_stop" and args.backend != "resident":
        print(
            "error: --on-slot-loss degrade/wait requires --backend resident "
            "(see repro.core.engine.CAPABILITY_MATRIX)",
            file=sys.stderr,
        )
        return 2
    if args.min_workers < 1:
        print("error: --min-workers must be >= 1", file=sys.stderr)
        return 2
    names = sorted(ARTIFACTS) if args.artefact == "all" else [args.artefact]
    for name in names:
        result = _run_one(name, args)
        _emit(result, args)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Runners for the paper's analytic tables (Table II, III, IV) and Figure 2.

These experiments instantiate the closed-form complexity / communication
models with the paper's architectures and dataset geometries, and — where a
measured counterpart exists — cross-check the formulas against byte counts
metered on the emulated cluster.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis import (
    CommunicationInputs,
    ComplexityInputs,
    crossover_batch_size,
    ingress_traffic_sweep,
    table2_complexities,
    table3_communication,
    table4_costs,
    worker_reduction_factor,
)
from ..datasets import CIFAR10_SPEC, MNIST_SPEC
from ..models import build_cifar10_cnn_gan, build_mnist_cnn_gan, build_mnist_mlp_gan
from .common import ExperimentResult

__all__ = [
    "paper_architecture_params",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig2",
]

#: Parameter counts reported in the paper (Section V-A-b), used to
#: instantiate the analytic tables exactly as the authors did.
PAPER_PARAM_COUNTS: Dict[str, Dict[str, int]] = {
    "mnist-mlp": {"generator": 716_560, "discriminator": 670_219},
    "mnist-cnn": {"generator": 628_058, "discriminator": 286_048},
    "cifar10-cnn": {"generator": 628_110, "discriminator": 100_203},
}


def paper_architecture_params(use_paper_counts: bool = True) -> Dict[str, Dict[str, int]]:
    """Generator/discriminator parameter counts per architecture.

    With ``use_paper_counts=True`` (default) returns the counts printed in
    the paper; otherwise instantiates this repo's full-size architectures and
    counts their parameters (slightly different because of the ACGAN
    conditioning scheme — see EXPERIMENTS.md).
    """
    if use_paper_counts:
        return {k: dict(v) for k, v in PAPER_PARAM_COUNTS.items()}
    builders = {
        "mnist-mlp": lambda: build_mnist_mlp_gan(),
        "mnist-cnn": lambda: build_mnist_cnn_gan(),
        "cifar10-cnn": lambda: build_cifar10_cnn_gan(),
    }
    return {name: builder().parameter_counts() for name, builder in builders.items()}


def _complexity_inputs(
    architecture: str,
    params: Dict[str, int],
    batch_size: int,
    num_workers: int,
    iterations: int,
    num_batches: Optional[int] = None,
) -> ComplexityInputs:
    spec = MNIST_SPEC if architecture.startswith("mnist") else CIFAR10_SPEC
    total = spec.train_size
    k = num_batches or max(1, int(math.floor(math.log(num_workers))) if num_workers > 1 else 1)
    return ComplexityInputs(
        generator_params=params["generator"],
        discriminator_params=params["discriminator"],
        object_size=spec.object_size,
        batch_size=batch_size,
        num_workers=num_workers,
        num_batches=k,
        iterations=iterations,
        local_dataset_size=total // num_workers,
        epochs_per_round=1.0,
    )


def run_table2(
    batch_size: int = 10,
    num_workers: int = 10,
    iterations: int = 50_000,
    use_paper_counts: bool = True,
) -> ExperimentResult:
    """Table II: computation and memory complexity, FL-GAN vs MD-GAN."""
    result = ExperimentResult(
        name="Table II",
        description=(
            "Computation and memory complexity at the server (C) and at a "
            "worker (W), instantiated for the paper's architectures "
            f"(b={batch_size}, N={num_workers}, I={iterations})."
        ),
    )
    for architecture, params in paper_architecture_params(use_paper_counts).items():
        inputs = _complexity_inputs(
            architecture, params, batch_size, num_workers, iterations
        )
        table = table2_complexities(inputs)
        reduction = worker_reduction_factor(inputs)
        for quantity, values in table.items():
            result.add_row(
                architecture=architecture,
                quantity=quantity,
                flgan=values["fl-gan"],
                mdgan=values["md-gan"],
                mdgan_over_flgan=values["md-gan"] / values["fl-gan"],
            )
        result.add_note(
            f"{architecture}: worker computation reduction factor "
            f"{reduction['computation']:.2f}x, memory reduction "
            f"{reduction['memory']:.2f}x (paper claims ~2x)"
        )
    return result


def _communication_inputs(
    architecture: str,
    params: Dict[str, int],
    batch_size: int,
    num_workers: int,
    iterations: int,
) -> CommunicationInputs:
    spec = MNIST_SPEC if architecture.startswith("mnist") else CIFAR10_SPEC
    return CommunicationInputs(
        generator_params=params["generator"],
        discriminator_params=params["discriminator"],
        object_size=spec.object_size,
        batch_size=batch_size,
        num_workers=num_workers,
        iterations=iterations,
        local_dataset_size=spec.train_size // num_workers,
        epochs_per_round=1.0,
    )


def run_table3(
    batch_size: int = 10,
    num_workers: int = 10,
    iterations: int = 50_000,
    use_paper_counts: bool = True,
) -> ExperimentResult:
    """Table III: communication complexities per message type (in floats)."""
    result = ExperimentResult(
        name="Table III",
        description=(
            "Communication complexity (number of transmitted floats) per "
            "communication type, FL-GAN vs MD-GAN "
            f"(b={batch_size}, N={num_workers}, I={iterations})."
        ),
    )
    for architecture, params in paper_architecture_params(use_paper_counts).items():
        inputs = _communication_inputs(
            architecture, params, batch_size, num_workers, iterations
        )
        table = table3_communication(inputs)
        for row, values in table.items():
            result.add_row(
                architecture=architecture,
                communication=row,
                flgan=values["fl-gan"],
                mdgan=values["md-gan"],
            )
    return result


def run_table4(
    batch_sizes: Sequence[int] = (10, 100),
    num_workers: int = 10,
    iterations: int = 50_000,
    use_paper_counts: bool = True,
) -> ExperimentResult:
    """Table IV: instantiated communication costs for the CIFAR10 experiment (MB)."""
    result = ExperimentResult(
        name="Table IV",
        description=(
            "Per-communication costs (MB) for the CIFAR10 experiment with "
            f"N={num_workers} workers, FL-GAN vs MD-GAN, b in {tuple(batch_sizes)}."
        ),
    )
    params = paper_architecture_params(use_paper_counts)["cifar10-cnn"]
    for batch_size in batch_sizes:
        inputs = _communication_inputs(
            "cifar10-cnn", params, batch_size, num_workers, iterations
        )
        costs = table4_costs(inputs)
        for row, values in costs.items():
            result.add_row(
                batch_size=batch_size,
                communication=row,
                flgan=values["fl-gan"],
                mdgan=values["md-gan"],
            )
    result.add_note(
        "Costs use 4-byte floats and binary megabytes; MD-GAN C->W rows count "
        "the two generated batches actually shipped to each worker."
    )
    return result


def run_fig2(
    num_workers: int = 10,
    batch_sizes: Optional[Sequence[int]] = None,
    use_paper_counts: bool = True,
) -> ExperimentResult:
    """Figure 2: maximal ingress traffic per communication vs batch size."""
    if batch_sizes is None:
        batch_sizes = np.unique(
            np.logspace(0, 4, 25).astype(int)
        ).tolist()
    result = ExperimentResult(
        name="Figure 2",
        description=(
            "Maximal ingress traffic (bytes) per communication at a worker "
            "(plain) and at the server (dotted), for the MNIST-MLP and "
            "CIFAR10-CNN GANs, as a function of the batch size."
        ),
    )
    params = paper_architecture_params(use_paper_counts)
    for architecture in ("mnist-mlp", "cifar10-cnn"):
        inputs = _communication_inputs(
            architecture, params[architecture], 10, num_workers, 50_000
        )
        for row in ingress_traffic_sweep(inputs, batch_sizes):
            result.add_row(architecture=architecture, **row)
        crossover = crossover_batch_size(inputs)
        result.add_note(
            f"{architecture}: worker-side MD-GAN/FL-GAN crossover at "
            f"b ~= {crossover:.0f} images (paper reports 'hundreds of images')"
        )
    return result

"""Non-i.i.d. data ablation (beyond the paper).

The paper assumes local shards are i.i.d. (Section III-a).  This ablation
quantifies how much that assumption matters: the same MD-GAN and FL-GAN
configuration is trained on an i.i.d. split, a Dirichlet label-skew split and
a pathological per-label split, and the final scores are compared.

Discriminator swapping is expected to partially compensate for label skew in
MD-GAN (a discriminator that only ever saw two digit classes eventually
visits workers holding the others), which is a behaviour the paper's
discussion of the swap motivates but never measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import FLGANTrainer, MDGANTrainer, TrainingConfig
from ..datasets import ImageDataset, partition_by_label, partition_dirichlet, partition_iid
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
)

__all__ = ["run_ablation_noniid"]


def _make_shards(
    train: ImageDataset, scheme: str, num_workers: int, seed: int
) -> List[ImageDataset]:
    rng = np.random.default_rng(seed + 31)
    if scheme == "iid":
        return partition_iid(train, num_workers, rng)
    if scheme == "dirichlet":
        return partition_dirichlet(train, num_workers, alpha=0.3, rng=rng)
    if scheme == "label-skew":
        classes_per_worker = max(1, train.num_classes // num_workers)
        return partition_by_label(train, num_workers, classes_per_worker, rng)
    raise ValueError(f"Unknown partitioning scheme {scheme!r}")


def run_ablation_noniid(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    schemes: Sequence[str] = ("iid", "dirichlet", "label-skew"),
    algorithms: Sequence[str] = ("md-gan", "fl-gan"),
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Compare MD-GAN and FL-GAN under increasingly skewed data partitions.

    The ``backend``/... keywords select the :mod:`repro.runtime` execution
    settings (bitwise-neutral; wall-clock only), as in
    :func:`~repro.experiments.run_fig5`.
    """
    scale = get_scale(scale)
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    config = TrainingConfig(
        iterations=scale.iterations,
        batch_size=scale.batch_size_small,
        epochs_per_swap=1.0,
        eval_every=scale.iterations,
        eval_sample_size=scale.eval_sample_size,
        seed=scale.seed,
        backend=backend,
        max_workers=max_workers,
        shm_install=shm_install,
        transport=transport,
        transport_address=transport_address,
        pipeline_depth=pipeline_depth,
    )

    result = ExperimentResult(
        name="Ablation: non-i.i.d. shards",
        description=(
            f"Final scores of MD-GAN and FL-GAN on {dataset} / {architecture} "
            f"under i.i.d., Dirichlet(0.3) and per-label partitions "
            f"(N={scale.num_workers}, scale={scale.name})."
        ),
    )
    for scheme in schemes:
        shards = _make_shards(train, scheme, scale.num_workers, scale.seed)
        # Drop empty shards that pathological splits may produce.
        shards = [s for s in shards if len(s) > 0]
        trainers: Dict[str, object] = {}
        if "md-gan" in algorithms:
            trainers["md-gan"] = MDGANTrainer(factory, shards, config, evaluator=evaluator)
        if "fl-gan" in algorithms:
            trainers["fl-gan"] = FLGANTrainer(factory, shards, config, evaluator=evaluator)
        for name, trainer in trainers.items():
            with trainer:
                history = trainer.train()
            final = history.final_evaluation
            result.add_row(
                scheme=scheme,
                algorithm=name,
                num_shards=len(shards),
                min_classes_per_shard=int(
                    min((s.class_counts() > 0).sum() for s in shards)
                ),
                score=final.score if final else float("nan"),
                fid=final.fid if final else float("nan"),
            )
    result.add_note(
        "The paper assumes i.i.d. shards; this ablation measures the degradation "
        "under label skew and the extent to which discriminator swapping "
        "compensates for it in MD-GAN."
    )
    return result

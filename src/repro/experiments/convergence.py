"""Figure 3 runner: convergence of standalone GAN, FL-GAN and MD-GAN.

The paper's Figure 3 plots the MNIST score / Inception score and the FID
against the number of generator iterations for six competitors:

* standalone GAN with ``b = 10`` and ``b = 100``,
* FL-GAN with ``b = 10`` and ``b = 100`` (``E = 1``),
* MD-GAN with ``k = 1`` and ``k = floor(log N)`` (``E = 1``),

on three dataset / architecture cells (MNIST-MLP, MNIST-CNN, CIFAR10-CNN)
with ``N = 10`` workers and an i.i.d. split.

:func:`run_fig3` reproduces one cell.  The run scale (dataset size, image
size, iteration count, worker count) is governed by an
:class:`~repro.experiments.common.ExperimentScale`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core import (
    FLGANTrainer,
    MDGANTrainer,
    StandaloneGANTrainer,
    TrainingConfig,
    TrainingHistory,
)
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
    prepare_shards,
)

__all__ = ["fig3_competitors", "run_fig3"]

#: Dataset / architecture cells of Figure 3.
FIG3_CELLS = (
    ("mnist", "mnist-mlp"),
    ("mnist", "mnist-cnn"),
    ("cifar10", "cifar10-cnn"),
)


def fig3_competitors(scale: ExperimentScale, num_workers: int) -> Dict[str, Dict]:
    """The six competitor configurations of Figure 3 at the given scale."""
    k_log = max(1, int(math.floor(math.log(num_workers))) if num_workers > 1 else 1)
    return {
        f"standalone-b{scale.batch_size_small}": {
            "kind": "standalone",
            "batch_size": scale.batch_size_small,
        },
        f"standalone-b{scale.batch_size_large}": {
            "kind": "standalone",
            "batch_size": scale.batch_size_large,
        },
        f"fl-gan-b{scale.batch_size_small}": {
            "kind": "fl-gan",
            "batch_size": scale.batch_size_small,
        },
        f"fl-gan-b{scale.batch_size_large}": {
            "kind": "fl-gan",
            "batch_size": scale.batch_size_large,
        },
        "md-gan-k1": {
            "kind": "md-gan",
            "batch_size": scale.batch_size_small,
            "num_batches": 1,
        },
        f"md-gan-klog{k_log}": {
            "kind": "md-gan",
            "batch_size": scale.batch_size_small,
            "num_batches": k_log,
        },
    }


def _run_competitor(
    name: str,
    spec: Dict,
    factory,
    train,
    shards,
    evaluator,
    scale: ExperimentScale,
    backend_overrides: Optional[Dict] = None,
) -> TrainingHistory:
    config = TrainingConfig(
        iterations=scale.iterations,
        batch_size=spec["batch_size"],
        disc_steps=1,
        epochs_per_swap=1.0,
        num_batches=spec.get("num_batches"),
        eval_every=scale.eval_every,
        eval_sample_size=scale.eval_sample_size,
        seed=scale.seed,
        **(backend_overrides or {}),
    )
    kind = spec["kind"]
    if kind == "standalone":
        trainer = StandaloneGANTrainer(factory, train, config, evaluator=evaluator)
    elif kind == "fl-gan":
        trainer = FLGANTrainer(factory, shards, config, evaluator=evaluator)
    elif kind == "md-gan":
        trainer = MDGANTrainer(factory, shards, config, evaluator=evaluator)
    else:  # pragma: no cover - defensive
        raise ValueError(f"Unknown competitor kind {kind!r}")
    # The backend is trainer-owned since the serving-layer change: close it
    # (uniform across all trainer kinds) so sweep runs don't pile up pools.
    with trainer:
        history = trainer.train()
    history.config["competitor"] = name
    return history


def run_fig3(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    competitors: Optional[List[str]] = None,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Reproduce one dataset/architecture cell of Figure 3.

    Parameters
    ----------
    dataset, architecture:
        One of the paper's cells, e.g. ``("mnist", "mnist-mlp")``.
    scale:
        Scale preset name or explicit :class:`ExperimentScale`.
    competitors:
        Optional subset of competitor names to run (default: all six).
    backend, max_workers, shm_install, transport, transport_address, pipeline_depth:
        :mod:`repro.runtime` execution settings, threaded into every
        competitor's :class:`~repro.core.TrainingConfig` (same pattern as
        :func:`~repro.experiments.run_fig5`).  All backends produce
        bitwise-identical seeded runs, so the figure's numbers never depend
        on these knobs; they only change wall-clock time.
    """
    scale = get_scale(scale)
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)

    specs = fig3_competitors(scale, scale.num_workers)
    if competitors is not None:
        unknown = set(competitors) - set(specs)
        if unknown:
            raise ValueError(f"Unknown competitors {sorted(unknown)}; known {sorted(specs)}")
        specs = {name: specs[name] for name in competitors}
    backend_overrides = dict(
        backend=backend,
        max_workers=max_workers,
        shm_install=shm_install,
        transport=transport,
        transport_address=transport_address,
        pipeline_depth=pipeline_depth,
    )

    result = ExperimentResult(
        name="Figure 3",
        description=(
            f"Dataset score and FID vs iterations on {dataset} / {architecture} "
            f"({scale.num_workers} workers, scale={scale.name})."
        ),
    )
    histories: Dict[str, TrainingHistory] = {}
    for name, spec in specs.items():
        history = _run_competitor(
            name, spec, factory, train, shards, evaluator, scale, backend_overrides
        )
        histories[name] = history
        for evaluation in history.evaluations:
            result.add_row(
                competitor=name,
                iteration=evaluation.iteration,
                score=evaluation.score,
                fid=evaluation.fid,
                modes_covered=evaluation.modes_covered,
            )
    # Summary note: final scores ordering.
    finals = {
        name: history.final_evaluation
        for name, history in histories.items()
        if history.final_evaluation is not None
    }
    if finals:
        best_score = max(finals.items(), key=lambda item: item[1].score)
        best_fid = min(finals.items(), key=lambda item: item[1].fid)
        result.add_note(
            f"best final score: {best_score[0]} ({best_score[1].score:.3f}); "
            f"best final FID: {best_fid[0]} ({best_fid[1].fid:.3f})"
        )
    result.extras["histories"] = {name: h.as_dict() for name, h in histories.items()}
    return result

"""Deployment-time estimate: how long would one global iteration take?

The paper's emulation cannot report wall-clock numbers ("raw timing
performances of learning tasks are in this context inaccessible and are left
to futurework").  This experiment fills that gap with the estimator of
:mod:`repro.simulation.timeline`: for each paper architecture and for the
three deployment profiles the paper motivates (datacenter, geo-distributed
WAN, edge devices), it breaks one MD-GAN and one FL-GAN iteration into
compute and communication phases and reports where the bottleneck sits.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..datasets import CIFAR10_SPEC, MNIST_SPEC
from ..simulation import HardwareProfile, LinkModel, estimate_iteration_time
from .common import ExperimentResult
from .tables import paper_architecture_params

__all__ = ["run_timing_estimate"]

#: (link model, hardware profile) per deployment scenario.
_SCENARIOS: Dict[str, Tuple[LinkModel, HardwareProfile]] = {
    "datacenter": (LinkModel.datacenter(), HardwareProfile.datacenter()),
    "wan": (LinkModel.wan(), HardwareProfile()),
    "edge": (LinkModel.edge(), HardwareProfile.edge()),
}


def run_timing_estimate(
    batch_size: int = 10,
    num_workers: int = 10,
    disc_steps: int = 1,
    architectures: Sequence[str] = ("mnist-mlp", "cifar10-cnn"),
    scenarios: Sequence[str] = ("datacenter", "wan", "edge"),
) -> ExperimentResult:
    """Estimate per-iteration wall-clock time across deployment scenarios."""
    unknown = set(scenarios) - set(_SCENARIOS)
    if unknown:
        raise ValueError(f"Unknown scenarios {sorted(unknown)}; known {sorted(_SCENARIOS)}")
    params = paper_architecture_params()
    result = ExperimentResult(
        name="Timing estimate",
        description=(
            "Estimated duration of one global iteration (seconds), broken into "
            f"compute and communication phases (b={batch_size}, N={num_workers}, "
            f"L={disc_steps}); the paper leaves measured timings to future work."
        ),
    )
    for architecture in architectures:
        if architecture not in params:
            raise ValueError(
                f"Unknown architecture {architecture!r}; known {sorted(params)}"
            )
        spec = MNIST_SPEC if architecture.startswith("mnist") else CIFAR10_SPEC
        counts = params[architecture]
        for scenario in scenarios:
            link, hardware = _SCENARIOS[scenario]
            for algorithm in ("md-gan", "fl-gan"):
                timeline = estimate_iteration_time(
                    algorithm,
                    generator_params=counts["generator"],
                    discriminator_params=counts["discriminator"],
                    object_size=spec.object_size,
                    batch_size=batch_size,
                    num_workers=num_workers,
                    num_batches=2,
                    disc_steps=disc_steps,
                    swap_this_iteration=(algorithm == "fl-gan"),
                    hardware=hardware,
                    link=link,
                )
                phases = timeline.as_dict()
                communication = (
                    phases["downlink_s"] + phases["uplink_s"] + phases["swap_s"]
                )
                compute = phases["total_s"] - communication
                result.add_row(
                    architecture=architecture,
                    scenario=scenario,
                    algorithm=algorithm,
                    compute_s=compute,
                    communication_s=communication,
                    total_s=phases["total_s"],
                    bottleneck=(
                        "communication" if communication > compute else "compute"
                    ),
                )
    result.add_note(
        "FL-GAN rows include a full model up/down transfer (a round boundary); "
        "between rounds FL-GAN iterations have no communication at all."
    )
    result.add_note(
        "MD-GAN becomes communication-bound on WAN/edge links because it ships "
        "generated images and feedback every iteration — the motivation for the "
        "compression directions discussed in Section VII-2."
    )
    return result

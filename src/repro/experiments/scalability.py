"""Figure 4 runner: MD-GAN score vs number of workers.

The paper's Figure 4 varies the number of workers ``N`` in {1, 10, 25, 50}
for MD-GAN with the MNIST MLP architecture and reports the final MNIST score
and FID under four configurations:

* swapping enabled vs disabled (``E = 1`` vs ``E = infinity``),
* constant workload per worker (the batch size ``b`` stays fixed as ``N``
  grows) vs constant workload at the server (``b`` shrinks as ``1/N`` so the
  server processes the same number of images per iteration).

Because the dataset is split over the workers, increasing ``N`` shrinks the
local shards (``|B_n| = |B| / N``), which is the effect the figure studies.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core import MDGANTrainer, TrainingConfig
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
    prepare_shards,
)

__all__ = ["run_fig4"]


def _batch_size_for_mode(mode: str, base_batch: int, num_workers: int, reference_workers: int) -> int:
    """Batch size under the two workload-normalisation modes of Figure 4."""
    if mode == "constant_worker":
        return base_batch
    if mode == "constant_server":
        return max(1, int(round(base_batch * reference_workers / num_workers)))
    raise ValueError(f"Unknown workload mode {mode!r}")


def run_fig4(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    worker_counts: Optional[Sequence[int]] = None,
    modes: Sequence[str] = ("constant_worker", "constant_server"),
    swap_settings: Sequence[bool] = (True, False),
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 4: final MD-GAN scores as a function of ``N``.

    ``backend`` selects the :mod:`repro.runtime` execution backend for the
    per-worker phase — results are bitwise identical across backends, but
    ``thread``/``process`` let the large-``N`` points of the sweep use the
    host's cores instead of running every worker sequentially.
    ``shm_install``/``transport``/``transport_address`` tune the resident
    backend and are threaded explicitly into each sweep point's
    :class:`TrainingConfig` (no process-global defaults are touched).
    ``pipeline_depth > 0`` additionally overlaps the server's batch
    generation with worker compute (bounded staleness, recorded per
    iteration in each history).
    """
    scale = get_scale(scale)
    if worker_counts is None:
        # The paper uses {1, 10, 25, 50}; scaled presets use a smaller ladder
        # bounded by the dataset size.
        if scale.name == "paper":
            worker_counts = (1, 10, 25, 50)
        else:
            worker_counts = (1, 2, scale.num_workers, scale.num_workers * 2)
    reference_workers = max(1, min(worker_counts, key=lambda n: abs(n - scale.num_workers)))

    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)

    result = ExperimentResult(
        name="Figure 4",
        description=(
            f"Final MD-GAN score/FID vs number of workers on {dataset} / "
            f"{architecture} (scale={scale.name}); swap on/off and constant "
            "worker vs constant server workload."
        ),
    )
    for num_workers in worker_counts:
        if num_workers > len(train):
            continue
        shards = prepare_shards(train, num_workers, scale.seed)
        for mode in modes:
            batch_size = _batch_size_for_mode(
                mode, scale.batch_size_small, num_workers, reference_workers
            )
            for swap in swap_settings:
                config = TrainingConfig(
                    iterations=scale.iterations,
                    batch_size=batch_size,
                    epochs_per_swap=1.0 if swap else math.inf,
                    eval_every=scale.iterations,
                    eval_sample_size=scale.eval_sample_size,
                    seed=scale.seed,
                    backend=backend,
                    max_workers=max_workers,
                    shm_install=shm_install,
                    transport=transport,
                    transport_address=transport_address,
                    pipeline_depth=pipeline_depth,
                )
                with MDGANTrainer(
                    factory,
                    shards,
                    config,
                    evaluator=evaluator,
                    swap_enabled=swap,
                ) as trainer:
                    history = trainer.train()
                final = history.final_evaluation
                result.add_row(
                    num_workers=num_workers,
                    mode=mode,
                    swap=swap,
                    batch_size=batch_size,
                    local_shard_size=len(shards[0]),
                    score=final.score if final else float("nan"),
                    fid=final.fid if final else float("nan"),
                )
    result.add_note(
        "constant_worker keeps b fixed as N grows (higher server load); "
        "constant_server shrinks b ~ 1/N to keep the server workload flat."
    )
    return result

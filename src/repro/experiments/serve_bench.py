"""Serving benchmark: throughput and latency of ``GeneratorService.serve()``.

MD-GAN's north star is a central generator serving samples to a fleet; this
runner measures the request-facing serving layer (:mod:`repro.serving`)
under concurrent load, on both resident transports:

* ``N`` client threads each issue a stream of one-batch generation
  requests (per-request seeds, so samples are independent of arrival
  order); the service coalesces the queue into resident k-batch dispatches
  across the pool slots.
* Per transport (``pipe`` and ``tcp``) the run reports throughput
  (samples/s, requests/s), latency percentiles (p50/p95/p99), the mean
  coalescing factor, and the parameter bytes shipped — which the versioned
  param cache holds at *one install per slot* no matter how many requests
  follow (an unchanged generator ships zero bytes per request).
* A ``serial-inline`` row (the same service on the serial backend) anchors
  the numbers: it is the no-pool, no-IPC reference the warm pool must beat
  at scale.

The CI slow lane's benchmark suite (``benchmarks/test_serve_bench.py``)
runs this at smoke scale and lands the rows in the
``BENCH_<run>_<sha>.json`` artifact.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from ..core.config import TrainingConfig
from ..serving import GeneratorService
from .common import ExperimentResult, ExperimentScale, get_scale, prepare_dataset, prepare_factory

__all__ = ["run_serve_bench"]


def _bench_service(
    factory,
    config: TrainingConfig,
    label: str,
    num_clients: int,
    requests_per_client: int,
) -> dict:
    """Drive one service configuration under concurrent load; return a row."""
    generator = factory.make_generator(np.random.default_rng(config.seed))
    with GeneratorService(generator, factory, config) as service:
        # Warm-up: opens the pool and primes every slot's generator install
        # and param cache, so the measured window reflects steady-state
        # serving (zero param bytes per request on an unchanged generator).
        service.warmup()
        backend = service._backend
        warm_param_bytes = getattr(backend, "param_bytes_sent", 0)

        def client(client_index: int) -> None:
            for i in range(requests_per_client):
                service.serve(seed=1 + client_index * 10_000 + i)

        with ThreadPoolExecutor(max_workers=num_clients) as pool:
            for future in [pool.submit(client, c) for c in range(num_clients)]:
                future.result()

        summary = service.stats.summary()
        row = {
            "config": label,
            "clients": num_clients,
            "requests": int(summary["requests"]),
            "batch_size": config.batch_size,
            "samples_per_s": summary["samples_per_second"],
            "requests_per_s": summary["requests_per_second"],
            "latency_p50_ms": summary["latency_p50_ms"],
            "latency_p95_ms": summary["latency_p95_ms"],
            "latency_p99_ms": summary["latency_p99_ms"],
            "mean_coalesce": summary["mean_coalesce"],
            "steady_param_bytes": float(
                getattr(backend, "param_bytes_sent", 0) - warm_param_bytes
            ),
        }
    return row


def run_serve_bench(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transports: Sequence[str] = ("pipe", "tcp"),
    num_clients: int = 4,
    requests_per_client: int = 8,
) -> ExperimentResult:
    """Benchmark ``GeneratorService`` under concurrent load on both transports."""
    scale = get_scale(scale)
    train, _ = prepare_dataset(dataset, scale)
    factory = prepare_factory(architecture, train, scale)

    result = ExperimentResult(
        name="Serving benchmark",
        description=(
            f"GeneratorService.serve() under {num_clients} concurrent clients x "
            f"{requests_per_client} requests ({dataset} / {architecture}, "
            f"b={scale.batch_size_small}); warm resident pool per transport vs "
            "the serial inline reference."
        ),
    )

    base = TrainingConfig(
        batch_size=scale.batch_size_small,
        seed=scale.seed,
        max_workers=max_workers or min(4, scale.num_workers),
        shm_install=shm_install,
    )
    for transport in transports:
        row = _bench_service(
            factory,
            base.with_overrides(backend="resident", transport=transport),
            label=f"resident/{transport}",
            num_clients=num_clients,
            requests_per_client=requests_per_client,
        )
        result.add_row(**row)
    result.add_row(
        **_bench_service(
            factory,
            base.with_overrides(backend="serial"),
            label="serial-inline",
            num_clients=num_clients,
            requests_per_client=requests_per_client,
        )
    )
    result.add_note(
        "steady_param_bytes counts generator parameter bytes shipped after "
        "warm-up: the versioned param cache keeps it at 0 for an unchanged "
        "generator, regardless of request count."
    )
    result.add_note(
        "per-request seeds make samples independent of arrival order; the "
        "same seeds produce bitwise-identical batches on every config."
    )
    return result

"""``repro.experiments`` — runners regenerating every table and figure.

===========================  ====================================
Paper artefact               Runner
===========================  ====================================
Table II                     :func:`run_table2`
Table III                    :func:`run_table3`
Table IV                     :func:`run_table4`
Figure 2                     :func:`run_fig2`
Figure 3                     :func:`run_fig3`
Figure 4                     :func:`run_fig4`
Figure 5                     :func:`run_fig5`
Figure 6                     :func:`run_fig6`
k ablation (Section IV-B4)   :func:`run_ablation_k`
swap ablation (Section IV-C) :func:`run_ablation_swap`
Section VII extensions       :func:`run_ablation_extensions`
traffic cross-check          :func:`run_traffic_check`
serving benchmark            :func:`run_serve_bench`
staleness sweep              :func:`run_staleness_sweep`
===========================  ====================================
"""

from .ablations import run_ablation_extensions, run_ablation_k, run_ablation_swap
from .celeba_experiment import run_fig6
from .noniid import run_ablation_noniid
from .reporting import ascii_chart, save_csv, save_json, series_from_rows, to_markdown
from .common import (
    PAPER,
    SCALES,
    SMALL,
    SMOKE,
    ExperimentResult,
    ExperimentScale,
    format_table,
    get_scale,
)
from .convergence import FIG3_CELLS, fig3_competitors, run_fig3
from .fault_tolerance import run_fig5
from .scalability import run_fig4
from .serve_bench import run_serve_bench
from .staleness import run_staleness_sweep
from .tables import (
    PAPER_PARAM_COUNTS,
    paper_architecture_params,
    run_fig2,
    run_table2,
    run_table3,
    run_table4,
)
from .timing import run_timing_estimate
from .traffic_check import run_traffic_check

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "format_table",
    "get_scale",
    "SMOKE",
    "SMALL",
    "PAPER",
    "SCALES",
    "PAPER_PARAM_COUNTS",
    "paper_architecture_params",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_ablation_k",
    "run_ablation_swap",
    "run_ablation_extensions",
    "run_ablation_noniid",
    "run_traffic_check",
    "run_serve_bench",
    "run_staleness_sweep",
    "run_timing_estimate",
    "FIG3_CELLS",
    "fig3_competitors",
    "save_json",
    "save_csv",
    "to_markdown",
    "ascii_chart",
    "series_from_rows",
]

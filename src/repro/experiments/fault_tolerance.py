"""Figure 5 runner: MD-GAN fault tolerance under worker crashes.

The paper triggers one fail-stop worker crash every ``I / N`` iterations (so
all workers have crashed by the end of the run), with the crashed worker's
data share disappearing from the system.  MD-GAN with ``k = floor(log N)`` is
compared against the same configuration without crashes and against the
standalone baseline with two batch sizes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core import MDGANTrainer, StandaloneGANTrainer, TrainingConfig, TrainingHistory
from ..simulation import CrashSchedule, worker_name
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
    prepare_shards,
)

__all__ = ["run_fig5"]


def run_fig5(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 5: scores vs iterations with a rolling crash schedule.

    ``backend``/``max_workers`` select the :mod:`repro.runtime` execution
    backend (``shm_install``/``transport``/``transport_address`` tune the
    resident one, threaded explicitly through the config); crash handling is
    backend-independent (crashes apply at iteration boundaries, before the
    per-worker fan-out).
    ``pipeline_depth > 0`` runs the MD-GAN competitors under the pipelined
    schedule, so this figure doubles as the staleness-vs-convergence probe:
    each history records the realised per-iteration batch staleness
    alongside the scores.
    """
    scale = get_scale(scale)
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)

    k_log = max(
        1, int(math.floor(math.log(scale.num_workers))) if scale.num_workers > 1 else 1
    )
    base_config = TrainingConfig(
        iterations=scale.iterations,
        batch_size=scale.batch_size_small,
        num_batches=k_log,
        epochs_per_swap=1.0,
        eval_every=scale.eval_every,
        eval_sample_size=scale.eval_sample_size,
        seed=scale.seed,
        backend=backend,
        max_workers=max_workers,
        shm_install=shm_install,
        transport=transport,
        transport_address=transport_address,
        pipeline_depth=pipeline_depth,
    )
    crash_schedule = CrashSchedule.uniform(
        [worker_name(i) for i in range(scale.num_workers)], scale.iterations
    )

    histories: Dict[str, TrainingHistory] = {}

    with MDGANTrainer(
        factory, shards, base_config, evaluator=evaluator, crash_schedule=crash_schedule
    ) as trainer:
        histories["md-gan-crashes"] = trainer.train()

    with MDGANTrainer(factory, shards, base_config, evaluator=evaluator) as trainer:
        histories["md-gan-no-crash"] = trainer.train()

    for batch_size in (scale.batch_size_small, scale.batch_size_large):
        config = base_config.with_overrides(batch_size=batch_size, num_batches=None)
        with StandaloneGANTrainer(factory, train, config, evaluator=evaluator) as standalone:
            histories[f"standalone-b{batch_size}"] = standalone.train()

    result = ExperimentResult(
        name="Figure 5",
        description=(
            f"Score and FID vs iterations on {dataset} / {architecture} with one "
            f"worker crash every I/N iterations (N={scale.num_workers}, "
            f"scale={scale.name})."
        ),
    )
    for name, history in histories.items():
        for evaluation in history.evaluations:
            result.add_row(
                competitor=name,
                iteration=evaluation.iteration,
                score=evaluation.score,
                fid=evaluation.fid,
            )
    crash_events = histories["md-gan-crashes"].events_of_kind("crash")
    result.add_note(
        f"{len(crash_events)} workers crashed during the MD-GAN run "
        f"(schedule: one crash every {scale.iterations // scale.num_workers} iterations)"
    )
    result.extras["histories"] = {k: h.as_dict() for k, h in histories.items()}
    return result

"""Shared infrastructure for the experiment runners.

Every experiment of the paper's evaluation section has a runner module in
this package.  Runners are deterministic functions taking an
:class:`ExperimentScale` (how big to make the run) and returning an
:class:`ExperimentResult` (named rows plus free-text notes), so the same code
regenerates a table/figure at smoke-test size inside the benchmark suite and
at near-paper size from the command line.

Three scale presets are provided:

* ``SMOKE`` — seconds per experiment; used by the pytest benchmarks.
* ``SMALL`` — a few minutes per experiment; the default for the example
  scripts.
* ``PAPER`` — the paper's dataset sizes, image geometry and iteration counts
  (50,000 iterations, 28x28/32x32 images, full-width architectures).  Only
  practical with substantial CPU time; provided for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

import numpy as np

from ..datasets import ImageDataset, load_dataset, partition_iid
from ..metrics import GeneratorEvaluator
from ..models import build_architecture
from ..models.base import GANFactory

__all__ = [
    "ExperimentScale",
    "SMOKE",
    "SMALL",
    "PAPER",
    "SCALES",
    "get_scale",
    "ExperimentResult",
    "format_table",
    "prepare_dataset",
    "prepare_evaluator",
    "prepare_factory",
    "prepare_shards",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how large an experiment run is."""

    name: str
    n_train: int
    n_test: int
    image_size: int
    iterations: int
    eval_every: int
    num_workers: int
    batch_size_small: int
    batch_size_large: int
    width_factor: float
    classifier_epochs: int
    eval_sample_size: int
    seed: int = 0

    def scaled(self, **overrides) -> "ExperimentScale":
        """Return a copy with some fields overridden."""
        return replace(self, **overrides)


SMOKE = ExperimentScale(
    name="smoke",
    n_train=600,
    n_test=200,
    image_size=16,
    iterations=120,
    eval_every=60,
    num_workers=4,
    batch_size_small=8,
    batch_size_large=32,
    width_factor=0.125,
    classifier_epochs=10,
    eval_sample_size=128,
)

SMALL = ExperimentScale(
    name="small",
    n_train=4000,
    n_test=1000,
    image_size=16,
    iterations=2000,
    eval_every=250,
    num_workers=10,
    batch_size_small=10,
    batch_size_large=100,
    width_factor=0.25,
    classifier_epochs=6,
    eval_sample_size=500,
)

PAPER = ExperimentScale(
    name="paper",
    n_train=60_000,
    n_test=10_000,
    image_size=28,
    iterations=50_000,
    eval_every=1_000,
    num_workers=10,
    batch_size_small=10,
    batch_size_large=100,
    width_factor=1.0,
    classifier_epochs=10,
    eval_sample_size=500,
)

SCALES: Dict[str, ExperimentScale] = {"smoke": SMOKE, "small": SMALL, "paper": PAPER}


def get_scale(name_or_scale) -> ExperimentScale:
    """Resolve a scale preset by name, or pass an explicit scale through."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    try:
        return SCALES[str(name_or_scale)]
    except KeyError as exc:
        raise ValueError(
            f"Unknown scale {name_or_scale!r}; known: {sorted(SCALES)}"
        ) from exc


@dataclass
class ExperimentResult:
    """Named rows produced by one experiment runner."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-text note shown below the table."""
        self.notes.append(note)

    def column(self, key: str) -> List[object]:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(key) for row in self.rows]

    def to_text(self) -> str:
        """Render the result as a plain-text report table."""
        lines = [f"== {self.name} ==", self.description, ""]
        if self.rows:
            headers = list(self.rows[0].keys())
            lines.append(format_table(headers, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Dict[str, object]]) -> str:
    """Format a list of dict rows into an aligned plain-text table."""
    table = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in table)) if table else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "  "
    out = [sep.join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append(sep.join("-" * w for w in widths))
    for r in table:
        out.append(sep.join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# experiment building blocks
# ---------------------------------------------------------------------------

def prepare_dataset(
    dataset: str, scale: ExperimentScale
) -> tuple[ImageDataset, ImageDataset]:
    """Load the train/test pair of a dataset at the given scale."""
    return load_dataset(
        dataset,
        n_train=scale.n_train,
        n_test=scale.n_test,
        image_size=scale.image_size,
        seed=scale.seed,
    )


def prepare_evaluator(
    train: ImageDataset, test: ImageDataset, scale: ExperimentScale
) -> GeneratorEvaluator:
    """Train the frozen score classifier and wrap it in an evaluator."""
    return GeneratorEvaluator.from_datasets(
        train,
        test,
        sample_size=scale.eval_sample_size,
        classifier_epochs=scale.classifier_epochs,
        seed=scale.seed + 97,
    )


def prepare_factory(
    architecture: str, dataset: ImageDataset, scale: ExperimentScale, **overrides
) -> GANFactory:
    """Build a GAN architecture sized for the dataset at the given scale."""
    kwargs = dict(
        image_shape=dataset.spec.shape,
        num_classes=dataset.num_classes,
    )
    if architecture != "mnist-mlp" and architecture != "toy-ring":
        kwargs["width_factor"] = scale.width_factor
    if architecture == "mnist-mlp":
        kwargs["width_factor"] = max(scale.width_factor, 0.25)
    if architecture == "toy-ring":
        kwargs.pop("num_classes", None)
        kwargs["num_classes"] = dataset.num_classes
    kwargs.update(overrides)
    return build_architecture(architecture, **kwargs)


def prepare_shards(
    train: ImageDataset, num_workers: int, seed: int
) -> List[ImageDataset]:
    """Partition the training set i.i.d. over the workers (paper Section III-a)."""
    rng = np.random.default_rng(seed + 11)
    return partition_iid(train, num_workers, rng)

"""Figure 6 runner: validation on the (synthetic) CelebA dataset.

The paper validates MD-GAN on CelebA (200k face images of 128x128) with
``N in {1, 5}`` workers, comparing the Inception score and FID of the
standalone GAN (b=200), FL-GAN (b=200) and MD-GAN (b=40, i.e. 200 images
processed per generator update with 5 workers).  Each competitor uses its own
Adam settings, which the paper tuned separately:

* standalone / FL-GAN: ``lr=0.003 / 0.002``, ``beta1=0.5``, ``beta2=0.999``
  for G / D,
* MD-GAN: ``lr=0.001 / 0.004``, ``beta1=0.0``, ``beta2=0.9`` for G / D.

This runner keeps those relative settings while scaling dataset size, image
size and batch sizes through the experiment scale.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    FLGANTrainer,
    MDGANTrainer,
    OptimizerConfig,
    StandaloneGANTrainer,
    TrainingConfig,
    TrainingHistory,
)
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
    prepare_shards,
)

__all__ = ["run_fig6"]


def run_fig6(
    scale: ExperimentScale | str = "smoke",
    num_workers: int = 5,
) -> ExperimentResult:
    """Reproduce Figure 6: CelebA-like validation of the three competitors."""
    scale = get_scale(scale)
    train, test = prepare_dataset("celeba", scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory("celeba-cnn", train, scale)
    num_workers = min(num_workers, max(1, len(train) // 2))
    shards = prepare_shards(train, num_workers, scale.seed)

    # Batch sizes follow the paper's ratio: MD-GAN uses b / N so that one
    # generator update consumes the same number of images as the baselines.
    standalone_batch = scale.batch_size_large
    mdgan_batch = max(1, standalone_batch // num_workers)

    standalone_opts = dict(
        generator_opt=OptimizerConfig(learning_rate=3e-3 / 10, beta1=0.5, beta2=0.999),
        discriminator_opt=OptimizerConfig(learning_rate=2e-3 / 10, beta1=0.5, beta2=0.999),
    )
    mdgan_opts = dict(
        generator_opt=OptimizerConfig(learning_rate=1e-3 / 10, beta1=0.0, beta2=0.9),
        discriminator_opt=OptimizerConfig(learning_rate=4e-3 / 10, beta1=0.0, beta2=0.9),
    )

    base = TrainingConfig(
        iterations=scale.iterations,
        batch_size=standalone_batch,
        epochs_per_swap=1.0,
        eval_every=scale.eval_every,
        eval_sample_size=scale.eval_sample_size,
        seed=scale.seed,
    )

    histories: Dict[str, TrainingHistory] = {}
    with StandaloneGANTrainer(
        factory, train, base.with_overrides(**standalone_opts), evaluator=evaluator
    ) as standalone:
        histories["standalone"] = standalone.train()

    with FLGANTrainer(
        factory, shards, base.with_overrides(**standalone_opts), evaluator=evaluator
    ) as flgan:
        histories[f"fl-gan-N{num_workers}"] = flgan.train()

    with MDGANTrainer(
        factory,
        shards,
        base.with_overrides(batch_size=mdgan_batch, **mdgan_opts),
        evaluator=evaluator,
    ) as mdgan:
        histories[f"md-gan-N{num_workers}"] = mdgan.train()

    result = ExperimentResult(
        name="Figure 6",
        description=(
            "Inception-style score and FID on the CelebA-like dataset "
            f"(N={num_workers} workers, scale={scale.name}; standalone/FL-GAN "
            f"b={standalone_batch}, MD-GAN b={mdgan_batch})."
        ),
    )
    for name, history in histories.items():
        for evaluation in history.evaluations:
            result.add_row(
                competitor=name,
                iteration=evaluation.iteration,
                score=evaluation.score,
                fid=evaluation.fid,
            )
    finals = {
        name: h.final_evaluation for name, h in histories.items() if h.final_evaluation
    }
    if finals:
        ordering = sorted(finals.items(), key=lambda item: -item[1].score)
        result.add_note(
            "final score ordering: "
            + ", ".join(f"{name} ({ev.score:.3f})" for name, ev in ordering)
        )
    result.extras["histories"] = {k: h.as_dict() for k, h in histories.items()}
    return result

"""Result persistence and terminal rendering for experiment outputs.

The experiment runners return :class:`~repro.experiments.common.ExperimentResult`
objects; this module turns them into artefacts a user can keep or diff:

* :func:`save_json` / :func:`save_csv` — machine-readable exports,
* :func:`to_markdown` — a table suitable for EXPERIMENTS.md,
* :func:`ascii_chart` — a dependency-free line chart for terminals, used to
  eyeball the Figure 3/5/6 trajectories without matplotlib.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .common import ExperimentResult

__all__ = ["save_json", "save_csv", "to_markdown", "ascii_chart", "series_from_rows"]


def save_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write the full result (rows, notes, extras) as JSON; returns the path."""
    path = Path(path)
    payload = {
        "name": result.name,
        "description": result.description,
        "rows": result.rows,
        "notes": result.notes,
        "extras": result.extras,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


def save_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write the result rows as CSV (one column per row key); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not result.rows:
        path.write_text("")
        return path
    fieldnames: List[str] = []
    for row in result.rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
    return path


def to_markdown(result: ExperimentResult, max_rows: Optional[int] = None) -> str:
    """Render the result as a GitHub-flavoured markdown table."""
    lines = [f"### {result.name}", "", result.description, ""]
    rows = result.rows[:max_rows] if max_rows else result.rows
    if rows:
        headers = list(rows[0].keys())
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("| " + " | ".join("---" for _ in headers) + " |")
        for row in rows:
            cells = []
            for header in headers:
                value = row.get(header, "")
                if isinstance(value, float):
                    cells.append(f"{value:.4g}")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        if max_rows and len(result.rows) > max_rows:
            lines.append("")
            lines.append(f"*({len(result.rows) - max_rows} more rows omitted)*")
    for note in result.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[Dict[str, object]],
    group_key: str,
    x_key: str,
    y_key: str,
) -> Dict[str, List[tuple]]:
    """Group result rows into per-competitor ``(x, y)`` series."""
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        name = str(row[group_key])
        series.setdefault(name, []).append((float(row[x_key]), float(row[y_key])))
    for points in series.values():
        points.sort(key=lambda p: p[0])
    return series


def ascii_chart(
    series: Dict[str, List[tuple]],
    width: int = 70,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII line chart.

    Each series gets a distinct marker character; the legend maps markers to
    series names.  Intended for quick terminal inspection of score/FID
    trajectories, not for publication-quality plots.
    """
    if not series or all(not points for points in series.values()):
        return "(no data)"
    markers = "ox+*#@%&"
    all_points = [p for points in series.values() for p in points]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, points) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in points:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  x: {x_min:.4g} .. {x_max:.4g}"
        + (f"   y: {y_label}" if y_label else "")
    )
    lines.append(" " * pad + "  " + "   ".join(legend))
    return "\n".join(lines)

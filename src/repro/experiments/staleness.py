"""Staleness-vs-convergence sweep (beyond the paper's figures).

Both relaxations of the strict synchronous schedule trade staleness for
wall-clock overlap:

* the **pipelined** schedule (``TrainingConfig.pipeline_depth > 0``) lets the
  server pre-generate up to ``depth`` future batch sets, introducing a
  bounded *batch* staleness;
* **asynchronous aggregation** (``TrainingConfig(aggregation="async")``)
  buffers completion-order worker contributions and folds them in
  staleness-weighted flushes under the bounded-staleness gate
  (:mod:`repro.core.async_aggregation`).

:func:`run_staleness_sweep` runs one MD-GAN cell (fig3-style) through the
synchronous baseline, the pipelined schedule at depths 1-4, the async
schedule at staleness bounds 1-4 and the composed ``async+pipelined``
schedule at (bound, depth) pairs, and reports the realised staleness
distribution (mean / max / p95), the final scores and the wall-clock time of
each run — the convergence-vs-staleness picture neither Figure 3 nor
Figure 5 captures.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

from ..core import MDGANTrainer, TrainingConfig, TrainingHistory
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
    prepare_shards,
)

__all__ = ["run_staleness_sweep"]


def run_staleness_sweep(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    depths: Sequence[int] = (1, 2, 3, 4),
    staleness_bounds: Sequence[int] = (1, 2, 3, 4),
    composed: Sequence[Tuple[int, int]] = ((1, 1), (2, 2)),
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
) -> ExperimentResult:
    """Sweep pipeline depths and async staleness bounds on one MD-GAN cell.

    Every run shares the dataset, architecture, shards and seed; only the
    schedule changes.  Rows report the mode (``sync`` / ``pipelined`` /
    ``async`` / ``async+pipelined``), the schedule parameter (depth or
    bound; composed rows carry the bound in ``parameter`` and the lookahead
    window in ``depth``), the realised staleness aggregates from the
    history's overlap summary, the final score/FID and the measured
    wall-clock seconds.  The ``backend``/...
    keywords select the :mod:`repro.runtime` execution settings as in
    :func:`~repro.experiments.run_fig5`; note async rows are only
    *concurrent* (and therefore only interesting) on the parallel backends.
    """
    scale = get_scale(scale)
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)

    base = TrainingConfig(
        iterations=scale.iterations,
        batch_size=scale.batch_size_small,
        epochs_per_swap=1.0,
        eval_every=scale.eval_every,
        eval_sample_size=scale.eval_sample_size,
        seed=scale.seed,
        backend=backend,
        max_workers=max_workers,
        shm_install=shm_install,
        transport=transport,
        transport_address=transport_address,
    )

    runs = [("sync", 0, 0, base)]
    for depth in depths:
        runs.append(
            ("pipelined", int(depth), int(depth), base.with_overrides(pipeline_depth=int(depth)))
        )
    for bound in staleness_bounds:
        runs.append(
            (
                "async",
                int(bound),
                0,
                base.with_overrides(aggregation="async", max_staleness=int(bound)),
            )
        )
    for bound, depth in composed:
        runs.append(
            (
                "async+pipelined",
                int(bound),
                int(depth),
                base.with_overrides(
                    aggregation="async",
                    max_staleness=int(bound),
                    pipeline_depth=int(depth),
                ),
            )
        )

    result = ExperimentResult(
        name="Staleness sweep",
        description=(
            f"Convergence vs realised staleness for the synchronous, pipelined "
            f"(depth 1-{max(depths) if depths else 0}), bounded-staleness "
            f"async (bound 1-{max(staleness_bounds) if staleness_bounds else 0}) "
            f"and composed async+pipelined ({len(tuple(composed))} bound/depth "
            f"pairs) schedules on {dataset} / {architecture} "
            f"(N={scale.num_workers}, backend={backend}, scale={scale.name})."
        ),
    )
    histories: Dict[str, TrainingHistory] = {}
    for mode, param, depth, config in runs:
        label = {
            "sync": "sync",
            "pipelined": f"depth-{param}",
            "async": f"bound-{param}",
            "async+pipelined": f"bound-{param}-depth-{depth}",
        }[mode]
        started = time.perf_counter()
        with MDGANTrainer(factory, shards, config, evaluator=evaluator) as trainer:
            history = trainer.train()
        wall_seconds = time.perf_counter() - started
        histories[label] = history
        final = history.final_evaluation
        overlap = history.overlap
        result.add_row(
            mode=mode,
            parameter=param,
            depth=depth,
            score=final.score if final else float("nan"),
            fid=final.fid if final else float("nan"),
            mean_staleness=overlap.get("mean_staleness", 0.0),
            max_staleness=overlap.get("max_staleness", 0.0),
            p95_staleness=overlap.get("p95_staleness", 0.0),
            max_worker_staleness=history.max_worker_staleness(),
            lookahead_generations=overlap.get("lookahead_generations", 0.0),
            iterations=len(history.iterations),
            wall_seconds=wall_seconds,
        )
        if mode in ("async", "async+pipelined") and history.max_worker_staleness() > param:
            raise AssertionError(
                f"bounded-staleness contract violated: {history.max_worker_staleness()} "
                f"> {param} in run {label}"
            )
    result.add_note(
        "Both schedules bound the recorded staleness by their parameter; "
        "async mode additionally enforces it per worker contribution "
        "(max_worker_staleness column).  Composed async+pipelined rows keep "
        "the per-contribution bound while pre-generating up to `depth` batch "
        "sets (lookahead_generations column)."
    )
    result.extras["histories"] = {name: h.as_dict() for name, h in histories.items()}
    return result

"""Measured-vs-analytic communication cross-check.

Runs a short MD-GAN and FL-GAN training on the emulated cluster and compares
the bytes metered by the network against the closed-form Table III formulas.
This ties the analytic model (Tables III/IV, Figure 2) to the actual
implementation: if the algorithm ever shipped different payloads than the
model assumes, this check would diverge.

A second pass re-runs MD-GAN through the resident pool and compares the
backend's *measured* per-op transport meters (``op_bytes_sent`` /
``op_bytes_received`` / ``op_transfer_seconds``) against the same Table III
payload model and the ``LinkModel`` link presets — real bytes on a real
transport (pipe by default, sockets under ``--transport tcp``) against the
cost model's prediction.
"""

from __future__ import annotations

import math

from ..analysis import CommunicationInputs, table3_communication
from ..core import FLGANTrainer, MDGANTrainer, TrainingConfig
from ..nn.serialize import FLOAT_BYTES
from ..simulation import LinkModel, MessageKind
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_factory,
    prepare_shards,
)

__all__ = ["run_traffic_check"]


def run_traffic_check(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    shm_install: bool | None = None,
    transport: str | None = None,
    transport_address: str | None = None,
) -> ExperimentResult:
    """Compare measured per-iteration traffic to the analytic formulas.

    ``shm_install``/``transport``/``transport_address`` tune the resident
    cross-check section and are threaded explicitly into its
    :class:`TrainingConfig` — ``transport="tcp"`` makes the per-op rows
    measure real socket traffic.
    """
    scale = get_scale(scale)
    train, _ = prepare_dataset(dataset, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)
    iterations = max(10, min(50, scale.iterations))
    config = TrainingConfig(
        iterations=iterations,
        batch_size=scale.batch_size_small,
        epochs_per_swap=1.0,
        eval_every=0,
        seed=scale.seed,
    )

    counts = factory.parameter_counts()
    inputs = CommunicationInputs(
        generator_params=counts["generator"],
        discriminator_params=counts["discriminator"],
        object_size=factory.object_size,
        batch_size=config.batch_size,
        num_workers=scale.num_workers,
        iterations=iterations,
        local_dataset_size=len(shards[0]),
        epochs_per_round=1.0,
    )
    analytic = table3_communication(inputs)

    result = ExperimentResult(
        name="Traffic cross-check",
        description=(
            "Measured bytes from the emulated cluster vs the Table III analytic "
            f"formulas ({dataset} / {architecture}, N={scale.num_workers}, "
            f"I={iterations}, b={config.batch_size})."
        ),
    )

    # --- MD-GAN ---------------------------------------------------------------
    with MDGANTrainer(factory, shards, config) as mdgan:
        mdgan.train()
    meter = mdgan.cluster.meter
    measured_c_to_w = meter.total_bytes(MessageKind.GENERATED_BATCHES)
    measured_w_to_c = meter.total_bytes(MessageKind.ERROR_FEEDBACK)
    measured_swap = meter.total_bytes(MessageKind.DISCRIMINATOR_SWAP)
    expected_c_to_w = (
        analytic["server_to_worker_at_server"]["md-gan"] * iterations * FLOAT_BYTES
    )
    expected_w_to_c = (
        analytic["worker_to_server_at_server"]["md-gan"] * iterations * FLOAT_BYTES
    )
    swap_rounds = math.floor(iterations / max(1, mdgan.swap_period))
    result.add_row(
        algorithm="md-gan",
        quantity="server->workers bytes",
        measured=float(measured_c_to_w),
        analytic=float(expected_c_to_w),
        ratio=measured_c_to_w / expected_c_to_w if expected_c_to_w else float("nan"),
    )
    result.add_row(
        algorithm="md-gan",
        quantity="workers->server bytes",
        measured=float(measured_w_to_c),
        analytic=float(expected_w_to_c),
        ratio=measured_w_to_c / expected_w_to_c if expected_w_to_c else float("nan"),
    )
    result.add_row(
        algorithm="md-gan",
        quantity="worker<->worker swap rounds",
        measured=float(len(mdgan.history.events_of_kind("swap"))),
        analytic=float(swap_rounds),
        ratio=(
            len(mdgan.history.events_of_kind("swap")) / swap_rounds
            if swap_rounds
            else float("nan")
        ),
    )
    result.add_row(
        algorithm="md-gan",
        quantity="swap bytes upper bound",
        measured=float(measured_swap),
        analytic=float(
            swap_rounds
            * scale.num_workers
            * counts["discriminator"]
            * FLOAT_BYTES
        ),
        ratio=float("nan"),
    )

    # --- FL-GAN ---------------------------------------------------------------
    with FLGANTrainer(factory, shards, config) as flgan:
        flgan.train()
    meter = flgan.cluster.meter
    rounds = len(flgan.history.events_of_kind("federated_round"))
    measured_updates = meter.total_bytes(MessageKind.MODEL_UPDATE)
    measured_broadcast = meter.total_bytes(MessageKind.MODEL_BROADCAST)
    expected_per_round = analytic["worker_to_server_at_server"]["fl-gan"] * FLOAT_BYTES
    result.add_row(
        algorithm="fl-gan",
        quantity="workers->server bytes",
        measured=float(measured_updates),
        analytic=float(expected_per_round * rounds),
        ratio=(
            measured_updates / (expected_per_round * rounds)
            if rounds
            else float("nan")
        ),
    )
    result.add_row(
        algorithm="fl-gan",
        quantity="server->workers bytes",
        measured=float(measured_broadcast),
        analytic=float(expected_per_round * rounds),
        ratio=(
            measured_broadcast / (expected_per_round * rounds)
            if rounds
            else float("nan")
        ),
    )
    # --- resident transport: measured per-op bytes vs the cost model ----------
    # Re-run a few MD-GAN iterations through the resident pool and read the
    # backend's per-op transport meters.  The dominant op is "run": its
    # request carries the generated batches (the analytic 2*b*d floats per
    # worker per iteration) and its reply the error feedback (b*d floats per
    # worker), so the measured warm-iteration bytes should sit a small pickle
    # overhead above the Table III prediction.  ``transport="tcp"`` makes
    # these rows measure real socket traffic.
    resident_iterations = min(iterations, 5)
    resident_config = config.with_overrides(
        backend="resident",
        max_workers=min(4, scale.num_workers),
        iterations=resident_iterations,
        shm_install=shm_install,
        transport=transport,
        transport_address=transport_address,
    )
    with MDGANTrainer(factory, shards, resident_config) as resident:
        resident.train_iteration(1)  # cold iteration: install payloads ship
        backend = resident.executor
        warm_sent = backend.op_bytes_sent["run"]
        warm_received = backend.op_bytes_received["run"]
        warm_seconds = backend.op_transfer_seconds["run"]
        for iteration in range(2, resident_iterations + 1):
            resident.train_iteration(iteration)
        warm_iters = resident_iterations - 1
        run_sent = (backend.op_bytes_sent["run"] - warm_sent) / max(1, warm_iters)
        run_received = (backend.op_bytes_received["run"] - warm_received) / max(
            1, warm_iters
        )
        run_seconds = (backend.op_transfer_seconds["run"] - warm_seconds) / max(
            1, warm_iters
        )
        transport_name = getattr(backend._transport, "name", "pipe")
    model_sent = analytic["server_to_worker_at_server"]["md-gan"] * FLOAT_BYTES
    model_received = analytic["worker_to_server_at_server"]["md-gan"] * FLOAT_BYTES
    link = LinkModel.datacenter()
    modeled_seconds = link.transfer_time(int(run_sent)) + link.transfer_time(
        int(run_received)
    )
    result.add_row(
        algorithm="md-gan",
        quantity=f"resident 'run' op bytes/iter sent ({transport_name})",
        measured=float(run_sent),
        analytic=float(model_sent),
        ratio=run_sent / model_sent if model_sent else float("nan"),
    )
    result.add_row(
        algorithm="md-gan",
        quantity=f"resident 'run' op bytes/iter received ({transport_name})",
        measured=float(run_received),
        analytic=float(model_received),
        ratio=run_received / model_received if model_received else float("nan"),
    )
    result.add_row(
        algorithm="md-gan",
        quantity=f"resident 'run' op transfer s/iter vs {link.name} LinkModel",
        measured=float(run_seconds),
        analytic=float(modeled_seconds),
        ratio=run_seconds / modeled_seconds if modeled_seconds else float("nan"),
    )

    result.add_note(
        "MD-GAN swap bytes are an upper bound because the random permutation "
        "may map a worker to itself (no transfer for that worker that round)."
    )
    result.add_note(
        "The resident rows compare the pool transport's per-op byte meters "
        "(warm iterations, installs excluded) against the Table III payload "
        "model and the LinkModel datacenter link.  The received ratio sits a "
        "small pickle overhead above 1; the sent ratio can drop below 1 "
        "because pickling dedups shared objects — with k < N the same "
        "generated batch serves several per-worker payloads in one slot "
        "message, so it crosses the transport once where the model counts it "
        "per worker.  The time ratio can exceed 1 at small scales: the "
        "datacenter model charges almost nothing for tiny payloads, while "
        "real transfer pays per-message overhead regardless of size.  It "
        "falls below the slower wan/edge links as payloads grow — "
        "benchmarks/test_socket_transport.py pins that direction."
    )
    return result

"""Ablation runners for MD-GAN design choices.

The paper motivates two design knobs without dedicating a figure to each:

* the number of generated batches ``k`` per iteration (Section IV-B4: the
  complexity vs data-diversity trade-off) — :func:`run_ablation_k` sweeps
  ``k in {1, floor(log N), N}``;
* the swap period ``E`` (Section IV-C1: discriminator overfitting) —
  :func:`run_ablation_swap` sweeps ``E in {1, 5, infinity}``;
* the Section VII extensions (asynchronous per-feedback updates, partial
  worker participation) — :func:`run_ablation_extensions` compares them to
  the synchronous full-participation baseline.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core import (
    AsyncMDGANTrainer,
    MDGANTrainer,
    SampledMDGANTrainer,
    TrainingConfig,
)
from .common import (
    ExperimentResult,
    ExperimentScale,
    get_scale,
    prepare_dataset,
    prepare_evaluator,
    prepare_factory,
    prepare_shards,
)

__all__ = ["run_ablation_k", "run_ablation_swap", "run_ablation_extensions"]


def _runtime_overrides(
    backend: str,
    max_workers: Optional[int],
    shm_install: Optional[bool],
    transport: Optional[str],
    transport_address: Optional[str],
    pipeline_depth: int,
) -> dict:
    """Bundle the shared runtime keywords for :func:`_base_config`."""
    return dict(
        backend=backend,
        max_workers=max_workers,
        shm_install=shm_install,
        transport=transport,
        transport_address=transport_address,
        pipeline_depth=pipeline_depth,
    )


def _base_config(scale: ExperimentScale, **backend_overrides) -> TrainingConfig:
    return TrainingConfig(
        iterations=scale.iterations,
        batch_size=scale.batch_size_small,
        epochs_per_swap=1.0,
        eval_every=scale.iterations,
        eval_sample_size=scale.eval_sample_size,
        seed=scale.seed,
        **backend_overrides,
    )


def run_ablation_k(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    k_values: Sequence[int] | None = None,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Sweep the number of generated batches ``k`` (data-diversity trade-off).

    The ``backend``/... keywords select the :mod:`repro.runtime` execution
    settings (bitwise-neutral; wall-clock only), as in
    :func:`~repro.experiments.run_fig5`.
    """
    scale = get_scale(scale)
    overrides = _runtime_overrides(
        backend, max_workers, shm_install, transport, transport_address, pipeline_depth
    )
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)
    if k_values is None:
        k_log = max(
            1,
            int(math.floor(math.log(scale.num_workers))) if scale.num_workers > 1 else 1,
        )
        k_values = sorted({1, k_log, scale.num_workers})

    result = ExperimentResult(
        name="Ablation: k",
        description=(
            f"Final MD-GAN scores for different numbers of generated batches k "
            f"on {dataset} / {architecture} (N={scale.num_workers}, scale={scale.name})."
        ),
    )
    for k in k_values:
        config = _base_config(scale, **overrides).with_overrides(num_batches=int(k))
        with MDGANTrainer(factory, shards, config, evaluator=evaluator) as trainer:
            history = trainer.train()
        final = history.final_evaluation
        result.add_row(
            k=int(k),
            score=final.score if final else float("nan"),
            fid=final.fid if final else float("nan"),
            server_egress_bytes=history.traffic.get("server_egress_bytes", 0.0),
            server_flops=history.compute.get("server_flops", 0.0),
        )
    result.add_note(
        "Larger k increases the diversity of generated data across workers at "
        "the cost of server workload (Section IV-B4)."
    )
    return result


def run_ablation_swap(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    epochs_values: Sequence[float] = (1.0, 5.0, math.inf),
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Sweep the swap period ``E`` (discriminator overfitting mitigation)."""
    scale = get_scale(scale)
    overrides = _runtime_overrides(
        backend, max_workers, shm_install, transport, transport_address, pipeline_depth
    )
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)

    result = ExperimentResult(
        name="Ablation: swap period E",
        description=(
            f"Final MD-GAN scores for different swap periods E on {dataset} / "
            f"{architecture} (N={scale.num_workers}, scale={scale.name}); "
            "E=inf disables swapping."
        ),
    )
    for epochs in epochs_values:
        swap_enabled = not math.isinf(epochs)
        config = _base_config(scale, **overrides).with_overrides(
            epochs_per_swap=epochs if swap_enabled else math.inf
        )
        with MDGANTrainer(
            factory, shards, config, evaluator=evaluator, swap_enabled=swap_enabled
        ) as trainer:
            history = trainer.train()
        final = history.final_evaluation
        result.add_row(
            epochs_per_swap=("inf" if math.isinf(epochs) else epochs),
            swaps=len(history.events_of_kind("swap")),
            score=final.score if final else float("nan"),
            fid=final.fid if final else float("nan"),
            swap_bytes=history.traffic.get("swap_bytes", 0.0),
        )
    result.add_note(
        "Swapping counters per-shard overfitting of the discriminators "
        "(Section IV-C1); E=inf corresponds to the dotted curves of Figure 4."
    )
    return result


def run_ablation_extensions(
    dataset: str = "mnist",
    architecture: str = "mnist-mlp",
    scale: ExperimentScale | str = "smoke",
    participation_fraction: float = 0.5,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    shm_install: Optional[bool] = None,
    transport: Optional[str] = None,
    transport_address: Optional[str] = None,
    pipeline_depth: int = 0,
) -> ExperimentResult:
    """Compare the Section VII extensions against the reference MD-GAN."""
    scale = get_scale(scale)
    overrides = _runtime_overrides(
        backend, max_workers, shm_install, transport, transport_address, pipeline_depth
    )
    train, test = prepare_dataset(dataset, scale)
    evaluator = prepare_evaluator(train, test, scale)
    factory = prepare_factory(architecture, train, scale)
    shards = prepare_shards(train, scale.num_workers, scale.seed)
    config = _base_config(scale, **overrides)

    result = ExperimentResult(
        name="Ablation: Section VII extensions",
        description=(
            f"Reference MD-GAN vs per-feedback updates and partial participation "
            f"on {dataset} / {architecture} (N={scale.num_workers}, scale={scale.name})."
        ),
    )
    variants = {
        "md-gan": MDGANTrainer(factory, shards, config, evaluator=evaluator),
        "md-gan-async": AsyncMDGANTrainer(factory, shards, config, evaluator=evaluator),
        f"md-gan-sampled-{participation_fraction}": SampledMDGANTrainer(
            factory,
            shards,
            config,
            participation_fraction=participation_fraction,
            evaluator=evaluator,
        ),
    }
    for name, trainer in variants.items():
        with trainer:
            history = trainer.train()
        final = history.final_evaluation
        result.add_row(
            variant=name,
            score=final.score if final else float("nan"),
            fid=final.fid if final else float("nan"),
            total_bytes=history.traffic.get("total_bytes", 0.0),
        )
    return result

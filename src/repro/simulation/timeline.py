"""Wall-clock estimation for distributed GAN training.

The paper leaves "raw timing performances of learning tasks" to future work
because its emulation shares one machine between all workers.  This module
provides the missing estimator: it combines

* the compute cost model of Section IV-B3/IV-C2 (operations proportional to
  the parameter counts, charged to each node's
  :class:`~repro.simulation.node.ComputeLedger` during training), and
* a :class:`~repro.simulation.network.LinkModel` (bandwidth + latency), with
  the per-message byte counts produced by the traffic meter,

to estimate the duration of one global iteration — and of a full training
run — for a given hardware profile (device throughput in FLOP/s) and network
profile (datacenter / WAN / edge).  Workers run in parallel, so the compute
part of an iteration is bounded by the *slowest* worker plus the server;
communication phases are modelled as the maximum transfer over the parallel
links plus the serialised server-side aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .network import LinkModel

__all__ = ["HardwareProfile", "IterationTimeline", "estimate_iteration_time"]


@dataclass(frozen=True)
class HardwareProfile:
    """Sustained throughput of the participating machines, in FLOP/s.

    Defaults approximate the paper's setup: server GPUs around 5 TFLOP/s
    sustained, workers an order of magnitude slower (edge-class devices).
    """

    server_flops_per_s: float = 5e12
    worker_flops_per_s: float = 5e11

    def __post_init__(self) -> None:
        if self.server_flops_per_s <= 0 or self.worker_flops_per_s <= 0:
            raise ValueError("Throughputs must be positive")

    @staticmethod
    def datacenter() -> "HardwareProfile":
        """Server and workers are all datacenter GPUs."""
        return HardwareProfile(5e12, 5e12)

    @staticmethod
    def edge() -> "HardwareProfile":
        """Server is a GPU, workers are edge devices (CPU / mobile SoC)."""
        return HardwareProfile(5e12, 5e10)


@dataclass
class IterationTimeline:
    """Breakdown of one global iteration's estimated duration (seconds)."""

    server_generate_s: float
    downlink_s: float
    worker_compute_s: float
    uplink_s: float
    server_update_s: float
    swap_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total estimated duration of the iteration."""
        return (
            self.server_generate_s
            + self.downlink_s
            + self.worker_compute_s
            + self.uplink_s
            + self.server_update_s
            + self.swap_s
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "server_generate_s": self.server_generate_s,
            "downlink_s": self.downlink_s,
            "worker_compute_s": self.worker_compute_s,
            "uplink_s": self.uplink_s,
            "server_update_s": self.server_update_s,
            "swap_s": self.swap_s,
            "total_s": self.total_s,
        }


def estimate_iteration_time(
    algorithm: str,
    generator_params: int,
    discriminator_params: int,
    object_size: int,
    batch_size: int,
    num_workers: int,
    num_batches: int = 1,
    disc_steps: int = 1,
    swap_this_iteration: bool = False,
    hardware: Optional[HardwareProfile] = None,
    link: Optional[LinkModel] = None,
    float_bytes: int = 4,
) -> IterationTimeline:
    """Estimate the duration of one global iteration of MD-GAN or FL-GAN.

    For MD-GAN an iteration is: server generates ``k`` batches, ships two per
    worker, workers run ``L`` discriminator steps and one feedback pass in
    parallel, feedbacks return, the server chains them through the generator.
    For FL-GAN an "iteration" is one local iteration on every worker (model
    transfers are charged on the iterations where a round completes — pass
    ``swap_this_iteration=True`` for those and the model size is used for the
    up/down links instead of image batches).

    The cost constants follow the paper: one forward pass over one object
    costs ``~|params|`` operations, a backward pass twice that.
    """
    if algorithm not in ("md-gan", "fl-gan"):
        raise ValueError(f"algorithm must be 'md-gan' or 'fl-gan', got {algorithm!r}")
    if min(generator_params, discriminator_params, object_size, batch_size, num_workers) <= 0:
        raise ValueError("All model/batch/worker quantities must be positive")
    hardware = hardware or HardwareProfile()
    link = link or LinkModel.wan()

    w, theta = float(generator_params), float(discriminator_params)
    b, n, k, steps = float(batch_size), float(num_workers), float(num_batches), float(disc_steps)
    forward, backward = 1.0, 2.0

    if algorithm == "md-gan":
        # Server: generate k batches (forward only), later backprop the
        # feedbacks of every worker through the generator.
        generate_ops = k * b * w * forward
        update_ops = n * b * w * (forward + backward)
        # Worker (parallel): L discriminator steps on 2b images + one
        # feedback pass (forward + backward w.r.t. the input) on b images.
        worker_ops = steps * 2.0 * b * theta * (forward + backward) + b * theta * (
            forward + backward
        )
        downlink_bytes = 2.0 * b * object_size * float_bytes
        uplink_bytes = b * object_size * float_bytes
        swap_bytes = theta * float_bytes if swap_this_iteration else 0.0
    else:
        # FL-GAN: every worker trains a full local GAN; the server only acts
        # at round boundaries, when full models travel both ways.
        generate_ops = 0.0
        update_ops = 0.0
        worker_ops = steps * 2.0 * b * theta * (forward + backward) + b * (w + theta) * (
            forward + backward
        )
        round_bytes = (w + theta) * float_bytes if swap_this_iteration else 0.0
        downlink_bytes = round_bytes
        uplink_bytes = round_bytes
        swap_bytes = 0.0

    timeline = IterationTimeline(
        server_generate_s=generate_ops / hardware.server_flops_per_s,
        # Links to the N workers operate in parallel: the phase lasts one
        # worker's transfer (the server NIC is modelled per-link, as in the
        # paper's per-worker ingress accounting).
        downlink_s=link.transfer_time(int(downlink_bytes)) if downlink_bytes else 0.0,
        worker_compute_s=worker_ops / hardware.worker_flops_per_s,
        uplink_s=link.transfer_time(int(uplink_bytes)) if uplink_bytes else 0.0,
        server_update_s=update_ops / hardware.server_flops_per_s,
        swap_s=link.transfer_time(int(swap_bytes)) if swap_bytes else 0.0,
    )
    return timeline

"""Cluster container: nodes + network + event log.

The cluster mirrors the paper's computation setup (Section III): one central
server ``C`` and ``N`` workers ``W_1..W_N`` connected through the parameter
server communication pattern, with MD-GAN adding worker-to-worker links for
discriminator swaps.  The trainers in ``repro.core`` drive the cluster; this
module owns membership, liveness, crash application and a structured event
log used by the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .failures import CrashSchedule
from .network import LinkModel, SimulatedNetwork
from .node import Node

__all__ = ["ClusterEvent", "Cluster", "SERVER_NAME", "worker_name"]

#: Canonical name of the central server node (the paper's ``C``).
SERVER_NAME = "server"


def worker_name(index: int) -> str:
    """Canonical name of worker ``index`` (0-based internally, ``W_{i+1}`` in the paper)."""
    return f"worker-{index}"


@dataclass
class ClusterEvent:
    """One structured entry of the cluster event log."""

    iteration: int
    kind: str
    node: str
    detail: str = ""


class Cluster:
    """One server plus ``N`` workers on a shared simulated network."""

    def __init__(
        self,
        num_workers: int,
        link_model: Optional[LinkModel] = None,
        crash_schedule: Optional[CrashSchedule] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.network = SimulatedNetwork(link_model=link_model)
        self.server = Node(SERVER_NAME, self.network)
        self.workers: List[Node] = [
            Node(worker_name(i), self.network) for i in range(num_workers)
        ]
        self.crash_schedule = crash_schedule or CrashSchedule.none()
        self.events: List[ClusterEvent] = []
        self._workers_by_name: Dict[str, Node] = {w.name: w for w in self.workers}

    # -- membership ----------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Total number of workers (including crashed ones)."""
        return len(self.workers)

    def alive_workers(self) -> List[Node]:
        """Workers that have not crashed."""
        return [w for w in self.workers if w.alive]

    def worker(self, name: str) -> Node:
        """Look up a worker node by name."""
        return self._workers_by_name[name]

    # -- failures ------------------------------------------------------------
    def apply_crashes(self, iteration: int) -> List[str]:
        """Crash every worker scheduled for ``iteration``; returns their names."""
        crashed = []
        for name in self.crash_schedule.crashes_at(iteration):
            node = self._workers_by_name.get(name)
            if node is not None and node.alive:
                node.crash()
                crashed.append(name)
                self.log(iteration, "crash", name, "fail-stop crash (data share lost)")
        return crashed

    # -- compute accounting ----------------------------------------------------
    def absorb_tape(self, node_name: str, tape) -> None:
        """Fold a detached :class:`~repro.simulation.node.ComputeTape` into a node.

        Execution backends (:mod:`repro.runtime`) hand worker compute charges
        back as tapes; the trainers absorb them here, serially and in
        worker-index order, so ledgers never get mutated concurrently.
        """
        if node_name == SERVER_NAME:
            self.server.compute.absorb(tape)
        else:
            self._workers_by_name[node_name].compute.absorb(tape)

    # -- logging ---------------------------------------------------------------
    def log(self, iteration: int, kind: str, node: str, detail: str = "") -> None:
        """Append a structured event to the cluster log."""
        self.events.append(ClusterEvent(iteration, kind, node, detail))

    def events_of_kind(self, kind: str) -> List[ClusterEvent]:
        """All logged events of the given kind."""
        return [e for e in self.events if e.kind == kind]

    # -- traffic convenience ---------------------------------------------------
    @property
    def meter(self):
        """The network's traffic meter."""
        return self.network.meter

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        alive = len(self.alive_workers())
        return f"Cluster(workers={self.num_workers}, alive={alive})"

"""Emulated network connecting the server and the workers.

The paper runs its experiments as an *emulation*: all workers live on the
same machine, but the ordering of interactions of Algorithm 1 is preserved.
This module reproduces that emulation style with two additions:

* every message is routed through a :class:`SimulatedNetwork` so traffic is
  metered per link and per message kind (feeding Tables III/IV and Fig. 2);
* an optional :class:`LinkModel` converts bytes to transfer time, so the
  harness can also report estimated communication time per global iteration
  for WAN / LAN / edge-device style deployments (the settings motivating the
  paper).

Delivery is synchronous and loss-free by default; crashed nodes are
disconnected and silently drop any traffic addressed to them, matching the
fail-stop model of the Figure 5 experiment.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .messages import Message, MessageKind
from .traffic import TrafficMeter

__all__ = ["LinkModel", "SimulatedNetwork", "NodeDisconnected"]


class NodeDisconnected(RuntimeError):
    """Raised when a node attempts to communicate after being disconnected."""


@dataclass(frozen=True)
class LinkModel:
    """Simple latency + bandwidth model for one network link.

    ``transfer_time(nbytes) = latency_s + nbytes / bandwidth_bytes_per_s``.
    """

    bandwidth_bytes_per_s: float
    latency_s: float = 0.0
    name: str = "link"

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                "bandwidth_bytes_per_s must be positive, got "
                f"{self.bandwidth_bytes_per_s}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {self.latency_s}")

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    # Convenience presets for the deployment scenarios the paper targets.
    @staticmethod
    def datacenter() -> "LinkModel":
        """10 Gb/s, 0.1 ms — workers co-located in one datacenter."""
        return LinkModel(10e9 / 8, 1e-4, "datacenter")

    @staticmethod
    def wan() -> "LinkModel":
        """100 Mb/s, 50 ms — geo-distributed datacenters (Gaia-style)."""
        return LinkModel(100e6 / 8, 0.05, "wan")

    @staticmethod
    def edge() -> "LinkModel":
        """10 Mb/s, 100 ms — devices at the edge of the Internet."""
        return LinkModel(10e6 / 8, 0.1, "edge")


class SimulatedNetwork:
    """Synchronous, metered message-passing fabric between named nodes."""

    def __init__(self, link_model: Optional[LinkModel] = None) -> None:
        self.link_model = link_model
        self.meter = TrafficMeter()
        self._mailboxes: Dict[str, Deque[Message]] = defaultdict(deque)
        self._nodes: Dict[str, bool] = {}
        #: Estimated cumulative transfer time per recipient (seconds), only
        #: maintained when a link model is configured.
        self.transfer_time: Dict[str, float] = defaultdict(float)
        self.dropped_messages = 0

    # -- membership ----------------------------------------------------------
    def register(self, node: str) -> None:
        """Register a node; idempotent."""
        self._nodes.setdefault(node, True)

    def disconnect(self, node: str) -> None:
        """Mark a node as crashed/disconnected and drop its pending mail."""
        if node not in self._nodes:
            raise KeyError(f"Unknown node {node!r}")
        self._nodes[node] = False
        self._mailboxes[node].clear()

    def reconnect(self, node: str) -> None:
        """Bring a previously disconnected node back into the fabric.

        Its mailbox starts empty — traffic addressed to it while it was
        down stays dropped (elastic rejoin recovers *state* from the last
        merged mirror, never the missed messages).
        """
        if node not in self._nodes:
            raise KeyError(f"Unknown node {node!r}")
        self._nodes[node] = True
        self._mailboxes[node].clear()

    def is_connected(self, node: str) -> bool:
        """Whether ``node`` is registered and currently reachable."""
        return self._nodes.get(node, False)

    def connected_nodes(self) -> List[str]:
        """Names of all currently reachable nodes."""
        return [n for n, up in self._nodes.items() if up]

    # -- messaging -----------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Route a message; returns ``True`` if it was delivered.

        Messages from a disconnected sender raise (a crashed node cannot
        act); messages *to* a disconnected recipient are silently dropped,
        which is how fail-stop crashes manifest to the rest of the system.
        """
        if message.sender not in self._nodes:
            raise KeyError(f"Unknown sender {message.sender!r}")
        if message.recipient not in self._nodes:
            raise KeyError(f"Unknown recipient {message.recipient!r}")
        if not self._nodes[message.sender]:
            raise NodeDisconnected(
                f"Sender {message.sender!r} is disconnected and cannot send"
            )
        if not self._nodes[message.recipient]:
            self.dropped_messages += 1
            return False
        self.meter.record(message)
        if self.link_model is not None:
            self.transfer_time[message.recipient] += self.link_model.transfer_time(
                message.nbytes
            )
        self._mailboxes[message.recipient].append(message)
        return True

    def receive(
        self, node: str, kind: Optional[MessageKind] = None
    ) -> List[Message]:
        """Drain (and return) all pending messages for ``node``.

        When ``kind`` is given only matching messages are drained; others are
        left queued.
        """
        if node not in self._nodes:
            raise KeyError(f"Unknown node {node!r}")
        if not self._nodes[node]:
            raise NodeDisconnected(f"Node {node!r} is disconnected and cannot receive")
        mailbox = self._mailboxes[node]
        if kind is None:
            out = list(mailbox)
            mailbox.clear()
            return out
        kept: Deque[Message] = deque()
        out = []
        while mailbox:
            msg = mailbox.popleft()
            (out if msg.kind == kind else kept).append(msg)
        self._mailboxes[node] = kept
        return out

    def pending(self, node: str) -> int:
        """Number of undelivered messages currently queued for ``node``."""
        return len(self._mailboxes[node])

    def reset_traffic(self) -> None:
        """Clear traffic statistics (membership and mailboxes are preserved)."""
        self.meter.reset()
        self.transfer_time.clear()
        self.dropped_messages = 0

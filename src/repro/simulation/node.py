"""Node abstractions for the emulated cluster.

A :class:`Node` is a named participant bound to a :class:`SimulatedNetwork`.
The concrete server / worker behaviours of the three training algorithms live
in ``repro.core``; this module only provides the communication plumbing and
liveness state shared by all of them, plus a tiny compute-cost ledger used by
the workload analyses (Table II's computation columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .messages import Message, MessageKind
from .network import SimulatedNetwork

__all__ = ["ComputeTape", "ComputeLedger", "Node"]


@dataclass
class ComputeTape:
    """A detached, picklable recording of compute charges.

    Parallel execution backends (:mod:`repro.runtime`) run the per-worker
    phase of an iteration off the main thread or in another process, where
    mutating a shared :class:`ComputeLedger` would race (threads) or be lost
    (processes).  Worker tasks therefore record their charges on a private
    tape with the same ``charge``/``observe_memory`` interface, and the
    trainer absorbs the tapes into the real node ledgers serially, in
    worker-index order, during the merge phase.
    """

    charges: List[tuple] = field(default_factory=list)
    peak_memory_floats: float = 0.0

    def charge(self, category: str, flops: float) -> None:
        """Record ``flops`` operations under ``category``."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self.charges.append((category, flops))

    def observe_memory(self, floats: float) -> None:
        """Record a transient memory requirement (keeps the running peak)."""
        self.peak_memory_floats = max(self.peak_memory_floats, float(floats))


@dataclass
class ComputeLedger:
    """Accumulates abstract floating-point-operation and memory estimates.

    The trainers charge costs to this ledger using the paper's own cost
    model: generating one object costs ``O(|w|)`` operations, one
    discriminator feed-forward costs ``D_op`` operations, etc.  The measured
    totals are compared against Table II's asymptotic expressions in the
    benchmark harness.
    """

    flops: float = 0.0
    peak_memory_floats: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, flops: float) -> None:
        """Add ``flops`` operations under ``category``."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self.flops += flops
        self.by_category[category] = self.by_category.get(category, 0.0) + flops

    def observe_memory(self, floats: float) -> None:
        """Record a transient memory requirement (keeps the running peak)."""
        self.peak_memory_floats = max(self.peak_memory_floats, float(floats))

    def absorb(self, tape: "ComputeTape") -> None:
        """Fold a worker task's :class:`ComputeTape` into this ledger.

        Charges replay in recording order, so absorbing tapes serially in
        worker-index order reproduces the exact ledger state of a serial run.
        """
        for category, flops in tape.charges:
            self.charge(category, flops)
        if tape.peak_memory_floats:
            self.observe_memory(tape.peak_memory_floats)

    def reset(self) -> None:
        self.flops = 0.0
        self.peak_memory_floats = 0.0
        self.by_category.clear()


class Node:
    """A named participant of the emulated cluster."""

    def __init__(self, name: str, network: SimulatedNetwork) -> None:
        self.name = name
        self.network = network
        self.compute = ComputeLedger()
        network.register(name)

    # -- liveness ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether this node is still connected to the network."""
        return self.network.is_connected(self.name)

    def crash(self) -> None:
        """Fail-stop crash: disconnect from the network permanently."""
        if self.alive:
            self.network.disconnect(self.name)

    def rejoin(self) -> None:
        """Reconnect a crashed node (elastic membership revival).

        The node comes back with an empty mailbox; its training state is the
        revival path's problem (restored from the last merged mirror).
        """
        if not self.alive:
            self.network.reconnect(self.name)

    # -- messaging -----------------------------------------------------------
    def send(
        self,
        recipient: str,
        kind: MessageKind,
        payload: Any = None,
        iteration: Optional[int] = None,
        **metadata: Any,
    ) -> bool:
        """Send a message to ``recipient``; returns ``True`` if delivered."""
        message = Message(
            sender=self.name,
            recipient=recipient,
            kind=kind,
            payload=payload,
            iteration=iteration,
            metadata=dict(metadata),
        )
        return self.network.send(message)

    def receive(self, kind: Optional[MessageKind] = None) -> List[Message]:
        """Drain pending messages addressed to this node."""
        return self.network.receive(self.name, kind=kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "alive" if self.alive else "crashed"
        return f"{self.__class__.__name__}(name={self.name!r}, {state})"

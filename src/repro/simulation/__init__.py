"""``repro.simulation`` — emulated distributed-system substrate.

Provides the message-passing fabric, traffic accounting, node/cluster
abstractions and fail-stop crash injection that the MD-GAN / FL-GAN trainers
run on.  The emulation preserves the interaction ordering of the paper's
Algorithm 1 while measuring every byte that crosses a link.
"""

from .cluster import SERVER_NAME, Cluster, ClusterEvent, worker_name
from .failures import CrashSchedule
from .messages import Message, MessageKind, payload_nbytes
from .network import LinkModel, NodeDisconnected, SimulatedNetwork
from .node import ComputeLedger, ComputeTape, Node
from .timeline import HardwareProfile, IterationTimeline, estimate_iteration_time
from .traffic import LinkStats, TrafficMeter

__all__ = [
    "SERVER_NAME",
    "worker_name",
    "Cluster",
    "ClusterEvent",
    "CrashSchedule",
    "Message",
    "MessageKind",
    "payload_nbytes",
    "LinkModel",
    "NodeDisconnected",
    "SimulatedNetwork",
    "Node",
    "ComputeLedger",
    "ComputeTape",
    "TrafficMeter",
    "LinkStats",
    "HardwareProfile",
    "IterationTimeline",
    "estimate_iteration_time",
]

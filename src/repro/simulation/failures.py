"""Fail-stop crash injection.

The Figure 5 experiment crashes one worker every ``I / N`` iterations; when a
worker crashes its local data shard disappears from the system.  A
:class:`CrashSchedule` captures an arbitrary iteration -> workers-to-crash
mapping, with constructors for the paper's uniform schedule and for random
schedules used in the extended fault-tolerance ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["CrashSchedule"]


@dataclass
class CrashSchedule:
    """Maps global iteration indices to the worker names crashing there."""

    crashes: Dict[int, List[str]] = field(default_factory=dict)

    @staticmethod
    def none() -> "CrashSchedule":
        """A schedule with no crashes."""
        return CrashSchedule({})

    @staticmethod
    def uniform(
        worker_names: Sequence[str], total_iterations: int
    ) -> "CrashSchedule":
        """The paper's Figure 5 schedule: one crash every ``I / N`` iterations.

        Workers crash in order; by iteration ``I`` every worker has crashed.
        The first crash happens at iteration ``I / N`` (not at 0), matching
        the description "we trigger a worker to crash every I/N iterations".
        """
        n = len(worker_names)
        if n == 0:
            return CrashSchedule({})
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        step = total_iterations / n
        crashes: Dict[int, List[str]] = {}
        for idx, name in enumerate(worker_names):
            iteration = int(round((idx + 1) * step))
            iteration = min(iteration, total_iterations)
            crashes.setdefault(iteration, []).append(name)
        return CrashSchedule(crashes)

    @staticmethod
    def random(
        worker_names: Sequence[str],
        total_iterations: int,
        crash_fraction: float,
        rng: np.random.Generator,
    ) -> "CrashSchedule":
        """Crash a random ``crash_fraction`` of workers at random iterations."""
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError("crash_fraction must be in [0, 1]")
        n_crash = int(round(crash_fraction * len(worker_names)))
        if n_crash == 0:
            return CrashSchedule({})
        victims = rng.choice(len(worker_names), size=n_crash, replace=False)
        crashes: Dict[int, List[str]] = {}
        for v in victims:
            iteration = int(rng.integers(1, max(2, total_iterations)))
            crashes.setdefault(iteration, []).append(worker_names[int(v)])
        return CrashSchedule(crashes)

    def crashes_at(self, iteration: int) -> List[str]:
        """Worker names scheduled to crash at ``iteration``."""
        return list(self.crashes.get(iteration, []))

    @property
    def total_crashes(self) -> int:
        """Total number of scheduled crash events."""
        return sum(len(v) for v in self.crashes.values())

    def all_victims(self) -> List[str]:
        """All worker names that will crash, in schedule order."""
        out: List[str] = []
        for iteration in sorted(self.crashes):
            out.extend(self.crashes[iteration])
        return out

"""Typed messages exchanged in the emulated distributed system.

Every communication of the three training algorithms is represented as a
:class:`Message` with an explicit payload and byte size, so the traffic
accounting that feeds Tables III/IV and Figure 2 is *measured* from the same
code paths that implement the algorithms (rather than only derived from the
analytic formulas).

Byte sizes follow the paper's conventions: one transmitted scalar (model
parameter, image feature, or error-feedback feature) is a 32-bit float.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..nn.serialize import FLOAT_BYTES

__all__ = ["MessageKind", "Message", "payload_nbytes"]

_message_counter = itertools.count()


class MessageKind(enum.Enum):
    """Classification of messages, matching the rows of Table III."""

    #: Server -> worker: generated batches X^(d), X^(g)   (MD-GAN)
    GENERATED_BATCHES = "generated_batches"
    #: Worker -> server: error feedback F_n                (MD-GAN)
    ERROR_FEEDBACK = "error_feedback"
    #: Worker -> worker: discriminator parameters swap     (MD-GAN)
    DISCRIMINATOR_SWAP = "discriminator_swap"
    #: Server -> worker: global model parameters           (FL-GAN)
    MODEL_BROADCAST = "model_broadcast"
    #: Worker -> server: locally updated model parameters  (FL-GAN)
    MODEL_UPDATE = "model_update"
    #: Control-plane messages (join/leave/crash notifications); their size is
    #: negligible and excluded from the paper's accounting.
    CONTROL = "control"


def payload_nbytes(payload: Any) -> int:
    """Number of bytes needed to transmit ``payload`` as 32-bit floats.

    Arrays count ``4 * size`` bytes; containers are summed recursively;
    non-array scalars count one float.  ``None`` counts zero.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size) * FLOAT_BYTES
    if isinstance(payload, (list, tuple, set)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating, bool)):
        return FLOAT_BYTES
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    raise TypeError(f"Cannot size payload of type {type(payload)!r}")


@dataclass
class Message:
    """A single directed communication between two nodes."""

    sender: str
    recipient: str
    kind: MessageKind
    payload: Any = None
    iteration: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if not isinstance(self.kind, MessageKind):
            self.kind = MessageKind(self.kind)
        self.nbytes = payload_nbytes(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.recipient} "
            f"{self.kind.value} {self.nbytes}B iter={self.iteration})"
        )

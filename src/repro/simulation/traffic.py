"""Traffic accounting for the emulated network.

``TrafficMeter`` aggregates the bytes and message counts carried by every
(sender, recipient, message-kind) combination.  The experiment harness uses
it to regenerate the measured counterparts of Table III (communication
complexities), Table IV (CIFAR10 example costs) and Figure 2 (maximum ingress
traffic per iteration).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .messages import Message, MessageKind

__all__ = ["LinkStats", "TrafficMeter"]


@dataclass
class LinkStats:
    """Accumulated statistics for one directed (sender, recipient, kind) link."""

    messages: int = 0
    bytes: int = 0

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes += int(nbytes)


@dataclass
class TrafficMeter:
    """Aggregate per-link, per-endpoint and per-kind traffic statistics."""

    links: Dict[Tuple[str, str, MessageKind], LinkStats] = field(
        default_factory=lambda: defaultdict(LinkStats)
    )
    ingress: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    egress: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: Per-iteration ingress bytes, used for "per communication" figures:
    #: iteration -> node -> bytes.
    ingress_by_iteration: Dict[int, Dict[str, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def record(self, message: Message) -> None:
        """Account for one delivered message."""
        key = (message.sender, message.recipient, message.kind)
        self.links[key].record(message.nbytes)
        self.ingress[message.recipient] += message.nbytes
        self.egress[message.sender] += message.nbytes
        if message.iteration is not None:
            self.ingress_by_iteration[message.iteration][message.recipient] += (
                message.nbytes
            )

    # -- queries -------------------------------------------------------------
    def total_bytes(self, kind: Optional[MessageKind] = None) -> int:
        """Total bytes carried, optionally restricted to one message kind."""
        return sum(
            stats.bytes
            for (_, _, k), stats in self.links.items()
            if kind is None or k == kind
        )

    def total_messages(self, kind: Optional[MessageKind] = None) -> int:
        """Total number of messages, optionally restricted to one kind."""
        return sum(
            stats.messages
            for (_, _, k), stats in self.links.items()
            if kind is None or k == kind
        )

    def bytes_by_kind(self) -> Dict[MessageKind, int]:
        """Total bytes per message kind."""
        out: Dict[MessageKind, int] = defaultdict(int)
        for (_, _, kind), stats in self.links.items():
            out[kind] += stats.bytes
        return dict(out)

    def messages_by_kind(self) -> Dict[MessageKind, int]:
        """Message counts per message kind."""
        out: Dict[MessageKind, int] = defaultdict(int)
        for (_, _, kind), stats in self.links.items():
            out[kind] += stats.messages
        return dict(out)

    def node_ingress(self, node: str, kind: Optional[MessageKind] = None) -> int:
        """Bytes received by ``node``, optionally restricted to one kind."""
        if kind is None:
            return self.ingress.get(node, 0)
        return sum(
            stats.bytes
            for (_, recipient, k), stats in self.links.items()
            if recipient == node and k == kind
        )

    def node_egress(self, node: str, kind: Optional[MessageKind] = None) -> int:
        """Bytes sent by ``node``, optionally restricted to one kind."""
        if kind is None:
            return self.egress.get(node, 0)
        return sum(
            stats.bytes
            for (sender, _, k), stats in self.links.items()
            if sender == node and k == kind
        )

    def max_ingress_per_iteration(self, nodes: Iterable[str]) -> int:
        """Maximum per-iteration ingress over the given nodes (Figure 2)."""
        nodes = set(nodes)
        best = 0
        for per_node in self.ingress_by_iteration.values():
            for node, nbytes in per_node.items():
                if node in nodes:
                    best = max(best, nbytes)
        return best

    def summary_rows(self) -> List[Dict[str, object]]:
        """Flat per-link rows suitable for report tables."""
        rows = []
        for (sender, recipient, kind), stats in sorted(
            self.links.items(), key=lambda item: (item[0][2].value, item[0][0], item[0][1])
        ):
            rows.append(
                {
                    "sender": sender,
                    "recipient": recipient,
                    "kind": kind.value,
                    "messages": stats.messages,
                    "bytes": stats.bytes,
                }
            )
        return rows

    def reset(self) -> None:
        """Clear all accumulated statistics."""
        self.links.clear()
        self.ingress.clear()
        self.egress.clear()
        self.ingress_by_iteration.clear()

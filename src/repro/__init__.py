"""MD-GAN reproduction: multi-discriminator GANs for distributed datasets.

A pure-NumPy, from-scratch reproduction of *MD-GAN: Multi-Discriminator
Generative Adversarial Networks for Distributed Datasets* (Hardy, Le Merrer,
Sericola - IPDPS 2019), including:

* ``repro.nn`` - the neural-network substrate (layers, losses, optimizers),
* ``repro.datasets`` - synthetic MNIST/CIFAR10/CelebA-like datasets and
  worker partitioning,
* ``repro.simulation`` - the emulated cluster (messages, traffic metering,
  crash injection),
* ``repro.models`` - the paper's GAN architectures,
* ``repro.metrics`` - dataset score (MNIST/Inception-style) and FID,
* ``repro.core`` - standalone, FL-GAN and MD-GAN trainers,
* ``repro.runtime`` - execution backends (serial/thread/process) for the
  per-worker training phase,
* ``repro.analysis`` - analytic complexity and communication models
  (Tables II-IV, Figure 2),
* ``repro.experiments`` - runners regenerating every table and figure.
"""

__version__ = "1.1.0"

from . import core, datasets, metrics, models, nn, runtime, simulation

__all__ = [
    "__version__",
    "nn",
    "datasets",
    "simulation",
    "models",
    "metrics",
    "core",
    "runtime",
]

"""CIFAR10 CNN architecture from the paper (Section V-A-b).

The generator has one dense layer of 6,144 neurons (384 feature maps of
4 x 4) followed by three stride-2 transposed convolutions of 192, 96 and 3
kernels (5 x 5); the discriminator reuses the six-convolution schedule of the
MNIST CNN (16..512 kernels of 3 x 3) with a minibatch-discrimination layer
and a dense output.
"""

from __future__ import annotations

from typing import List, Tuple

from ..nn import (
    BatchNorm,
    Conv2D,
    Conv2DTranspose,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MinibatchDiscrimination,
    ReLU,
    Reshape,
    Tanh,
)
from ..nn.layers import Layer
from .base import GANFactory
from .mnist import conv_channel_schedule

__all__ = ["build_cifar10_cnn_gan"]


def _scaled(width: int, factor: float) -> int:
    return max(1, int(round(width * factor)))


def build_cifar10_cnn_gan(
    image_shape: Tuple[int, int, int] = (3, 32, 32),
    latent_dim: int = 100,
    num_classes: int = 10,
    conditional: bool = True,
    width_factor: float = 1.0,
    use_minibatch_discrimination: bool = True,
) -> GANFactory:
    """CNN-based GAN for CIFAR10-like data.

    Adapts to any image size divisible by 8 (the generator upsamples three
    times by a factor of two from ``H/8 x W/8``).
    """
    c, height, width = image_shape
    if height % 8 or width % 8:
        raise ValueError(
            f"CIFAR10 CNN architecture needs image sides divisible by 8, got {image_shape}"
        )
    base_h, base_w = height // 8, width // 8
    g_ch0 = _scaled(384, width_factor)
    g_ch1 = _scaled(192, width_factor)
    g_ch2 = _scaled(96, width_factor)
    d_channels = conv_channel_schedule(width_factor)

    def gen_builder(factory: GANFactory) -> List[Layer]:
        return [
            Dense(g_ch0 * base_h * base_w, name="g_fc"),
            ReLU(),
            Reshape((g_ch0, base_h, base_w)),
            BatchNorm(),
            Conv2DTranspose(
                g_ch1, 5, stride=2, padding=2, output_padding=1, name="g_deconv1"
            ),
            BatchNorm(),
            ReLU(),
            Conv2DTranspose(
                g_ch2, 5, stride=2, padding=2, output_padding=1, name="g_deconv2"
            ),
            BatchNorm(),
            ReLU(),
            Conv2DTranspose(
                c, 5, stride=2, padding=2, output_padding=1, name="g_deconv3"
            ),
            Tanh(),
        ]

    def disc_builder(factory: GANFactory) -> List[Layer]:
        layers: List[Layer] = []
        for i, channels in enumerate(d_channels):
            stride = 2 if i % 2 == 0 else 1
            layers.append(
                Conv2D(channels, 3, stride=stride, padding=1, name=f"d_conv{i + 1}")
            )
            layers.append(LeakyReLU(0.2))
            if i in (2, 4):
                layers.append(Dropout(0.3))
        layers.append(Flatten())
        if use_minibatch_discrimination:
            layers.append(MinibatchDiscrimination(num_kernels=16, kernel_dim=8))
        layers.append(Dense(factory.discriminator_output_dim, name="d_out"))
        return layers

    return GANFactory(
        name="cifar10-cnn",
        latent_dim=latent_dim,
        image_shape=image_shape,
        num_classes=num_classes,
        conditional=conditional,
        generator_builder=gen_builder,
        discriminator_builder=disc_builder,
        metadata={
            "width_factor": width_factor,
            "generator_channels": (g_ch0, g_ch1, g_ch2),
            "discriminator_channels": tuple(d_channels),
        },
    )

"""Tiny GAN architecture for fast tests and the quickstart example.

Pairs with :func:`repro.datasets.make_gaussian_ring`: a few dense layers on
8 x 8 single-channel images, small enough that end-to-end distributed
training runs in seconds on CPU while still exhibiting the qualitative
behaviours (mode coverage, discriminator overfitting, benefit of swapping)
that the full architectures show at scale.
"""

from __future__ import annotations

from typing import List, Tuple

from ..nn import Dense, Flatten, LeakyReLU, ReLU, Reshape, Tanh
from ..nn.layers import Layer
from .base import GANFactory

__all__ = ["build_toy_gan"]


def build_toy_gan(
    image_shape: Tuple[int, int, int] = (1, 8, 8),
    latent_dim: int = 16,
    num_classes: int = 8,
    conditional: bool = True,
    hidden: int = 64,
) -> GANFactory:
    """Small dense GAN used by tests, the quickstart and fast benchmarks."""
    c, height, width = image_shape
    flat = c * height * width

    def gen_builder(factory: GANFactory) -> List[Layer]:
        return [
            Dense(hidden, name="g_fc1"),
            ReLU(),
            Dense(hidden, name="g_fc2"),
            ReLU(),
            Dense(flat, name="g_out"),
            Tanh(),
            Reshape(image_shape),
        ]

    def disc_builder(factory: GANFactory) -> List[Layer]:
        return [
            Flatten(),
            Dense(hidden, name="d_fc1"),
            LeakyReLU(0.2),
            Dense(hidden, name="d_fc2"),
            LeakyReLU(0.2),
            Dense(factory.discriminator_output_dim, name="d_out"),
        ]

    return GANFactory(
        name="toy-ring",
        latent_dim=latent_dim,
        image_shape=image_shape,
        num_classes=num_classes,
        conditional=conditional,
        generator_builder=gen_builder,
        discriminator_builder=disc_builder,
        metadata={"hidden": hidden},
    )

"""Architecture registry used by experiment configuration files.

Maps the paper's architecture names to factory constructors so experiments
can be declared with plain strings (``"mnist-mlp"``, ``"mnist-cnn"``,
``"cifar10-cnn"``, ``"celeba-cnn"``, ``"toy-ring"``).
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import GANFactory
from .celeba import build_celeba_cnn_gan
from .cifar import build_cifar10_cnn_gan
from .mnist import build_mnist_cnn_gan, build_mnist_mlp_gan
from .toy import build_toy_gan

__all__ = ["ARCHITECTURES", "build_architecture"]

ARCHITECTURES: Dict[str, Callable[..., GANFactory]] = {
    "mnist-mlp": build_mnist_mlp_gan,
    "mnist-cnn": build_mnist_cnn_gan,
    "cifar10-cnn": build_cifar10_cnn_gan,
    "celeba-cnn": build_celeba_cnn_gan,
    "toy-ring": build_toy_gan,
}


def build_architecture(name: str, **kwargs) -> GANFactory:
    """Build a registered architecture by name, forwarding keyword overrides."""
    try:
        builder = ARCHITECTURES[name]
    except KeyError as exc:
        raise ValueError(
            f"Unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        ) from exc
    return builder(**kwargs)

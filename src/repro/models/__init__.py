"""``repro.models`` — GAN architecture zoo matching the paper's Section V-A-b."""

from .base import FactorySpec, GANFactory, generator_input, one_hot
from .celeba import build_celeba_cnn_gan
from .cifar import build_cifar10_cnn_gan
from .mnist import build_mnist_cnn_gan, build_mnist_mlp_gan, conv_channel_schedule
from .registry import ARCHITECTURES, build_architecture
from .toy import build_toy_gan

__all__ = [
    "FactorySpec",
    "GANFactory",
    "one_hot",
    "generator_input",
    "build_mnist_mlp_gan",
    "build_mnist_cnn_gan",
    "build_cifar10_cnn_gan",
    "build_celeba_cnn_gan",
    "build_toy_gan",
    "conv_channel_schedule",
    "ARCHITECTURES",
    "build_architecture",
]

"""GAN architecture factories.

The distributed trainers need to instantiate *several* copies of the same
architecture (one discriminator per worker in MD-GAN, a full GAN per worker
in FL-GAN), each with its own parameters.  A :class:`GANFactory` captures the
architecture recipe — latent dimensionality, conditioning mode, builder
callables for generator and discriminator — and stamps out freshly
initialised :class:`~repro.nn.model.Sequential` models on demand.

Conditioning follows the ACGAN recipe used in the paper's experiments: the
discriminator's final dense layer emits ``1 + num_classes`` values (real/fake
logit plus class logits) and the generator receives the class as a one-hot
vector concatenated to the latent noise.  ``conditional=False`` yields the
plain GAN variant used for the CelebA experiment (single-logit
discriminator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..nn.model import Sequential
from ..nn.precision import PrecisionLike, resolve_dtype

__all__ = ["FactorySpec", "GANFactory", "one_hot", "generator_input"]


@dataclass(frozen=True)
class FactorySpec:
    """Picklable architecture facts of a :class:`GANFactory`.

    The concrete factories capture builder *closures* (hidden sizes, layer
    stacks), which do not survive pickling.  The per-worker tasks of
    :mod:`repro.runtime` never stamp out new models — they only need the
    dimensional facts used by the loss/feedback helpers — so the trainers
    hand them this frozen view instead of the full factory, keeping the
    ``process`` backend's pickle round-trip possible for every architecture.
    """

    name: str
    latent_dim: int
    image_shape: Tuple[int, int, int]
    num_classes: int
    conditional: bool

    @property
    def generator_input_dim(self) -> int:
        """Size of the generator's input vector (noise plus optional one-hot)."""
        return self.latent_dim + (self.num_classes if self.conditional else 0)

    @property
    def discriminator_output_dim(self) -> int:
        """Number of discriminator outputs (1, or 1 + num_classes for ACGAN)."""
        return 1 + (self.num_classes if self.conditional else 0)

    @property
    def object_size(self) -> int:
        """Number of scalar features per data object — the paper's ``d``."""
        c, h, w = self.image_shape
        return c * h * w


def one_hot(
    labels: np.ndarray, num_classes: int, dtype: PrecisionLike = None
) -> np.ndarray:
    """One-hot encode integer labels into shape ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}); got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.size, num_classes), dtype=resolve_dtype(dtype))
    out[np.arange(labels.size), labels] = 1.0
    return out


def generator_input(
    noise: np.ndarray, labels: Optional[np.ndarray], num_classes: int
) -> np.ndarray:
    """Assemble the generator input from noise and (optionally) labels.

    The one-hot block is materialised in the noise's dtype so the
    concatenation does not upcast under a float32 policy.
    """
    if labels is None:
        return noise
    noise = np.asarray(noise)
    dtype = noise.dtype if np.issubdtype(noise.dtype, np.floating) else None
    return np.concatenate([noise, one_hot(labels, num_classes, dtype)], axis=1)


@dataclass
class GANFactory:
    """Recipe for creating matched generator / discriminator pairs.

    Attributes
    ----------
    name:
        Architecture identifier, e.g. ``"mnist-mlp"``.
    latent_dim:
        Dimensionality ``l`` of the noise vector ``z``.
    image_shape:
        Per-sample output shape ``(C, H, W)`` of the generator.
    num_classes:
        Number of classes for the auxiliary classifier head.
    conditional:
        Whether the ACGAN conditioning is enabled.
    generator_builder / discriminator_builder:
        Zero-argument-free callables ``builder(factory) -> list[Layer]``
        returning the layer stacks (unbuilt).
    """

    name: str
    latent_dim: int
    image_shape: Tuple[int, int, int]
    num_classes: int
    conditional: bool
    generator_builder: Callable[["GANFactory"], list]
    discriminator_builder: Callable[["GANFactory"], list]
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- derived dimensions ----------------------------------------------------
    def spec(self) -> FactorySpec:
        """The picklable dimensional facts of this architecture."""
        return FactorySpec(
            name=self.name,
            latent_dim=self.latent_dim,
            image_shape=tuple(self.image_shape),
            num_classes=self.num_classes,
            conditional=self.conditional,
        )

    @property
    def generator_input_dim(self) -> int:
        """Size of the generator's input vector (noise plus optional one-hot)."""
        return self.latent_dim + (self.num_classes if self.conditional else 0)

    @property
    def discriminator_output_dim(self) -> int:
        """Number of discriminator outputs (1, or 1 + num_classes for ACGAN)."""
        return 1 + (self.num_classes if self.conditional else 0)

    @property
    def object_size(self) -> int:
        """Number of scalar features per data object — the paper's ``d``."""
        c, h, w = self.image_shape
        return c * h * w

    # -- model construction ------------------------------------------------------
    def make_generator(
        self, rng: np.random.Generator, dtype: PrecisionLike = None
    ) -> Sequential:
        """Create and build a freshly initialised generator.

        ``dtype`` selects the precision policy for the model's parameters and
        activations; ``None`` follows the process-wide default (float32).
        """
        layers = self.generator_builder(self)
        model = Sequential(layers, name=f"{self.name}-G", dtype=dtype)
        model.build((self.generator_input_dim,), rng)
        if model.output_shape != self.image_shape:
            raise ValueError(
                f"Generator of {self.name!r} produces shape {model.output_shape}, "
                f"expected {self.image_shape}"
            )
        return model

    def make_discriminator(
        self, rng: np.random.Generator, dtype: PrecisionLike = None
    ) -> Sequential:
        """Create and build a freshly initialised discriminator.

        ``dtype`` selects the precision policy for the model's parameters and
        activations; ``None`` follows the process-wide default (float32).
        """
        layers = self.discriminator_builder(self)
        model = Sequential(layers, name=f"{self.name}-D", dtype=dtype)
        model.build(self.image_shape, rng)
        if model.output_shape != (self.discriminator_output_dim,):
            raise ValueError(
                f"Discriminator of {self.name!r} produces shape "
                f"{model.output_shape}, expected ({self.discriminator_output_dim},)"
            )
        return model

    def parameter_counts(self) -> Dict[str, int]:
        """Return ``{'generator': |w|, 'discriminator': |theta|}``.

        Used by the analytic complexity and communication models
        (Tables II-IV, Figure 2).
        """
        rng = np.random.default_rng(0)
        return {
            "generator": self.make_generator(rng).num_parameters,
            "discriminator": self.make_discriminator(rng).num_parameters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GANFactory(name={self.name!r}, latent={self.latent_dim}, "
            f"image={self.image_shape}, conditional={self.conditional})"
        )

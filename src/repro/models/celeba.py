"""CelebA architecture from the paper (Section V-B-4).

The CelebA generator has one fully-connected layer of 16,384 neurons
(1,024 feature maps of 4 x 4) and two transposed convolutions of 128 and 3
kernels (5 x 5); the discriminator is the usual six-convolution stack ending
in a *single* output neuron — the CelebA experiment uses a plain
(unconditional) GAN rather than ACGAN.

The builder adapts to any image size divisible by 4 so that a scaled-down
variant (default 32 x 32 instead of 128 x 128) stays tractable on CPU.
"""

from __future__ import annotations

from typing import List, Tuple

from ..nn import (
    BatchNorm,
    Conv2D,
    Conv2DTranspose,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Tanh,
)
from ..nn.layers import Layer
from .base import GANFactory
from .mnist import conv_channel_schedule

__all__ = ["build_celeba_cnn_gan"]


def _scaled(width: int, factor: float) -> int:
    return max(1, int(round(width * factor)))


def build_celeba_cnn_gan(
    image_shape: Tuple[int, int, int] = (3, 32, 32),
    latent_dim: int = 100,
    num_classes: int = 10,
    conditional: bool = False,
    width_factor: float = 1.0,
) -> GANFactory:
    """CNN-based GAN for CelebA-like data (unconditional by default)."""
    c, height, width = image_shape
    if height % 4 or width % 4:
        raise ValueError(
            f"CelebA CNN architecture needs image sides divisible by 4, got {image_shape}"
        )
    base_h, base_w = height // 4, width // 4
    g_ch0 = _scaled(1024, width_factor)
    g_ch1 = _scaled(128, width_factor)
    d_channels = conv_channel_schedule(width_factor)

    def gen_builder(factory: GANFactory) -> List[Layer]:
        return [
            Dense(g_ch0 * base_h * base_w, name="g_fc"),
            ReLU(),
            Reshape((g_ch0, base_h, base_w)),
            BatchNorm(),
            Conv2DTranspose(
                g_ch1, 5, stride=2, padding=2, output_padding=1, name="g_deconv1"
            ),
            BatchNorm(),
            ReLU(),
            Conv2DTranspose(
                c, 5, stride=2, padding=2, output_padding=1, name="g_deconv2"
            ),
            Tanh(),
        ]

    def disc_builder(factory: GANFactory) -> List[Layer]:
        layers: List[Layer] = []
        for i, channels in enumerate(d_channels):
            stride = 2 if i % 2 == 0 else 1
            layers.append(
                Conv2D(channels, 3, stride=stride, padding=1, name=f"d_conv{i + 1}")
            )
            layers.append(LeakyReLU(0.2))
            if i in (2, 4):
                layers.append(Dropout(0.3))
        layers.append(Flatten())
        layers.append(Dense(factory.discriminator_output_dim, name="d_out"))
        return layers

    return GANFactory(
        name="celeba-cnn",
        latent_dim=latent_dim,
        image_shape=image_shape,
        num_classes=num_classes,
        conditional=conditional,
        generator_builder=gen_builder,
        discriminator_builder=disc_builder,
        metadata={
            "width_factor": width_factor,
            "generator_channels": (g_ch0, g_ch1),
            "discriminator_channels": tuple(d_channels),
        },
    )

"""MNIST architectures from the paper (Section V-A-b).

Two variants are provided:

* **MLP** — generator and discriminator of three fully-connected layers each
  (512, 512, 784 and 512, 512, 11 neurons).  With the paper's latent size of
  100 this gives 716,560 generator parameters, matching the paper's count;
  the ACGAN conditioning used here (one-hot concatenated to the noise) adds
  ``num_classes x 512`` parameters on the first layer, which is documented in
  EXPERIMENTS.md.
* **CNN** — generator of one dense layer (6,272 neurons = 128 x 7 x 7) and two
  transposed convolutions (32 and ``C`` kernels of 5x5); discriminator of six
  3x3 convolutions (16..512 kernels), a minibatch-discrimination layer and a
  final dense layer.

Both builders accept a ``width_factor`` that scales every hidden width, and
adapt to any image size divisible by 4, so the same code runs the paper-exact
28x28 architectures and the scaled-down configurations used for CPU-friendly
tests and benchmarks.
"""

from __future__ import annotations

from typing import List, Tuple

from ..nn import (
    BatchNorm,
    Conv2D,
    Conv2DTranspose,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MinibatchDiscrimination,
    ReLU,
    Reshape,
    Tanh,
)
from ..nn.layers import Layer
from .base import GANFactory

__all__ = ["build_mnist_mlp_gan", "build_mnist_cnn_gan", "conv_channel_schedule"]


def _scaled(width: int, factor: float) -> int:
    """Scale a layer width, keeping at least one unit."""
    return max(1, int(round(width * factor)))


def conv_channel_schedule(width_factor: float) -> List[int]:
    """The paper's six-layer discriminator channel schedule, scaled."""
    return [_scaled(c, width_factor) for c in (16, 32, 64, 128, 256, 512)]


def build_mnist_mlp_gan(
    image_shape: Tuple[int, int, int] = (1, 28, 28),
    latent_dim: int = 100,
    num_classes: int = 10,
    conditional: bool = True,
    hidden: int = 512,
    width_factor: float = 1.0,
) -> GANFactory:
    """MLP-based GAN for MNIST-like data (paper's first architecture)."""
    h = _scaled(hidden, width_factor)
    c, height, width = image_shape
    flat = c * height * width

    def gen_builder(factory: GANFactory) -> List[Layer]:
        return [
            Dense(h, name="g_fc1"),
            ReLU(),
            Dense(h, name="g_fc2"),
            ReLU(),
            Dense(flat, name="g_out"),
            Tanh(),
            Reshape(image_shape),
        ]

    def disc_builder(factory: GANFactory) -> List[Layer]:
        return [
            Flatten(),
            Dense(h, name="d_fc1"),
            LeakyReLU(0.2),
            Dropout(0.3),
            Dense(h, name="d_fc2"),
            LeakyReLU(0.2),
            Dropout(0.3),
            Dense(factory.discriminator_output_dim, name="d_out"),
        ]

    return GANFactory(
        name="mnist-mlp",
        latent_dim=latent_dim,
        image_shape=image_shape,
        num_classes=num_classes,
        conditional=conditional,
        generator_builder=gen_builder,
        discriminator_builder=disc_builder,
        metadata={"hidden": h, "width_factor": width_factor},
    )


def build_mnist_cnn_gan(
    image_shape: Tuple[int, int, int] = (1, 28, 28),
    latent_dim: int = 100,
    num_classes: int = 10,
    conditional: bool = True,
    width_factor: float = 1.0,
    use_minibatch_discrimination: bool = True,
) -> GANFactory:
    """CNN-based GAN for MNIST-like data (paper's second architecture).

    The generator upsamples from ``H/4 x W/4`` with two stride-2 transposed
    convolutions of 5x5 kernels; the discriminator stacks six 3x3
    convolutions with the 16..512 channel schedule (three of them stride-2),
    a minibatch-discrimination layer and a dense output layer.
    """
    c, height, width = image_shape
    if height % 4 or width % 4:
        raise ValueError(
            f"MNIST CNN architecture needs image sides divisible by 4, got {image_shape}"
        )
    base_h, base_w = height // 4, width // 4
    g_ch1 = _scaled(128, width_factor)
    g_ch2 = _scaled(32, width_factor)
    d_channels = conv_channel_schedule(width_factor)

    def gen_builder(factory: GANFactory) -> List[Layer]:
        return [
            Dense(g_ch1 * base_h * base_w, name="g_fc"),
            ReLU(),
            Reshape((g_ch1, base_h, base_w)),
            BatchNorm(),
            Conv2DTranspose(
                g_ch2, 5, stride=2, padding=2, output_padding=1, name="g_deconv1"
            ),
            BatchNorm(),
            ReLU(),
            Conv2DTranspose(
                c, 5, stride=2, padding=2, output_padding=1, name="g_deconv2"
            ),
            Tanh(),
        ]

    def disc_builder(factory: GANFactory) -> List[Layer]:
        layers: List[Layer] = []
        for i, channels in enumerate(d_channels):
            stride = 2 if i % 2 == 0 else 1
            layers.append(
                Conv2D(channels, 3, stride=stride, padding=1, name=f"d_conv{i + 1}")
            )
            layers.append(LeakyReLU(0.2))
            if i in (2, 4):
                layers.append(Dropout(0.3))
        layers.append(Flatten())
        if use_minibatch_discrimination:
            layers.append(MinibatchDiscrimination(num_kernels=16, kernel_dim=8))
        layers.append(Dense(factory.discriminator_output_dim, name="d_out"))
        return layers

    return GANFactory(
        name="mnist-cnn",
        latent_dim=latent_dim,
        image_shape=image_shape,
        num_classes=num_classes,
        conditional=conditional,
        generator_builder=gen_builder,
        discriminator_builder=disc_builder,
        metadata={
            "width_factor": width_factor,
            "generator_channels": (g_ch1, g_ch2),
            "discriminator_channels": tuple(d_channels),
        },
    )

"""``repro.metrics`` — GAN evaluation metrics (dataset score, FID)."""

from .classifier import ScoreClassifier, train_score_classifier
from .evaluator import EvaluationResult, GeneratorEvaluator
from .scores import (
    frechet_distance,
    frechet_distance_from_features,
    gaussian_statistics,
    inception_score,
    mode_coverage,
)

__all__ = [
    "ScoreClassifier",
    "train_score_classifier",
    "EvaluationResult",
    "GeneratorEvaluator",
    "inception_score",
    "frechet_distance",
    "frechet_distance_from_features",
    "gaussian_statistics",
    "mode_coverage",
]

"""Periodic generator evaluation, mirroring the paper's protocol.

The paper computes the MNIST score / Inception score and the FID every 1,000
iterations from a sample of 500 generated images, with the FID using an
equally sized batch from the test dataset.  :class:`GeneratorEvaluator`
encapsulates that protocol: it owns the frozen score classifier, the test
set, and the sample sizes, and scores any callable that produces generated
images.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..datasets.base import ImageDataset
from .classifier import ScoreClassifier, train_score_classifier
from .scores import frechet_distance_from_features, inception_score, mode_coverage

__all__ = ["EvaluationResult", "GeneratorEvaluator"]

#: A sampler is a callable ``sampler(n, rng) -> images`` returning ``n``
#: generated images in NCHW layout.
Sampler = Callable[[int, np.random.Generator], np.ndarray]


@dataclass
class EvaluationResult:
    """Scores of one evaluation round."""

    iteration: int
    score: float
    score_std: float
    fid: float
    modes_covered: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "iteration": self.iteration,
            "score": self.score,
            "score_std": self.score_std,
            "fid": self.fid,
            "modes_covered": self.modes_covered,
        }


@dataclass
class GeneratorEvaluator:
    """Scores a generator sampler with the dataset score and the FID."""

    classifier: ScoreClassifier
    test_dataset: ImageDataset
    sample_size: int = 500
    seed: int = 4321
    _real_features_cache: Optional[np.ndarray] = field(default=None, repr=False)

    @staticmethod
    def from_datasets(
        train: ImageDataset,
        test: ImageDataset,
        sample_size: int = 500,
        classifier_epochs: int = 3,
        seed: int = 4321,
    ) -> "GeneratorEvaluator":
        """Train the frozen score classifier and build an evaluator."""
        classifier = train_score_classifier(
            train, epochs=classifier_epochs, seed=seed, validation=test
        )
        return GeneratorEvaluator(classifier, test, sample_size=sample_size, seed=seed)

    def _real_features(self, rng: np.random.Generator) -> np.ndarray:
        if self._real_features_cache is None:
            n = min(self.sample_size, len(self.test_dataset))
            images, _ = self.test_dataset.sample_batch(n, rng)
            self._real_features_cache = self.classifier.features(images)
        return self._real_features_cache

    def evaluate(self, sampler: Sampler, iteration: int = 0) -> EvaluationResult:
        """Score a generator sampler at a given training iteration."""
        rng = np.random.default_rng(self.seed + iteration)
        n = min(self.sample_size, len(self.test_dataset))
        generated = sampler(n, rng)
        if generated.shape[0] != n:
            raise ValueError(
                f"Sampler returned {generated.shape[0]} images, expected {n}"
            )
        probs = self.classifier.probabilities(generated)
        score, score_std = inception_score(probs)
        gen_features = self.classifier.features(generated)
        fid = frechet_distance_from_features(self._real_features(rng), gen_features)
        covered, _ = mode_coverage(probs)
        return EvaluationResult(
            iteration=iteration,
            score=score,
            score_std=score_std,
            fid=fid,
            modes_covered=covered,
        )

    def evaluate_dataset(self, dataset: ImageDataset, iteration: int = 0) -> EvaluationResult:
        """Score real data (useful as an upper-bound reference in reports)."""

        def sampler(n: int, rng: np.random.Generator) -> np.ndarray:
            images, _ = dataset.sample_batch(n, rng)
            return images

        return self.evaluate(sampler, iteration)

"""Dataset-score classifier used by the evaluation metrics.

The paper scores generators with the Inception Score / MNIST score and the
Fréchet Inception Distance, replacing the Inception network by a classifier
"adapted to the MNIST data" for MNIST.  We follow the same recipe for every
dataset: a small classifier is trained once on the labelled training split
and then frozen; its softmax output feeds the score and its penultimate
features feed the FID.

Because all competitors are evaluated with the same frozen classifier, the
relative ordering of the approaches — which is what the reproduction targets
— is independent of the classifier's exact accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..datasets.base import ImageDataset
from ..nn import (
    Adam,
    Conv2D,
    Dense,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)

__all__ = ["ScoreClassifier", "train_score_classifier"]


@dataclass
class ScoreClassifier:
    """Frozen classifier exposing class probabilities and feature embeddings."""

    feature_model: Sequential
    head: Sequential
    num_classes: int

    def features(self, images: np.ndarray) -> np.ndarray:
        """Penultimate-layer features, shape ``(N, feature_dim)``."""
        return self.feature_model.predict(images)

    def logits(self, images: np.ndarray) -> np.ndarray:
        """Raw class logits, shape ``(N, num_classes)``."""
        return self.head.predict(self.features(images))

    def probabilities(self, images: np.ndarray) -> np.ndarray:
        """Softmax class probabilities, shape ``(N, num_classes)``."""
        logits = self.logits(images)
        shifted = logits - logits.max(axis=1, keepdims=True)
        ex = np.exp(shifted)
        return ex / ex.sum(axis=1, keepdims=True)

    def accuracy(self, dataset: ImageDataset, batch_size: int = 256) -> float:
        """Top-1 accuracy on a labelled dataset."""
        correct = 0
        for images, labels in dataset.iter_batches(batch_size):
            pred = self.logits(images).argmax(axis=1)
            correct += int((pred == labels).sum())
        return correct / len(dataset)

    @property
    def feature_dim(self) -> int:
        """Dimensionality of the FID feature embedding."""
        return int(self.feature_model.output_shape[0])


def _build_classifier(
    image_shape: Tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    convolutional: bool,
    hidden: int,
    feature_dim: int,
) -> ScoreClassifier:
    c, h, w = image_shape
    if convolutional and h >= 8 and w >= 8:
        feature_layers = [
            Conv2D(16, 3, stride=1, padding=1),
            LeakyReLU(0.1),
            MaxPool2D(2),
            Conv2D(32, 3, stride=1, padding=1),
            LeakyReLU(0.1),
            MaxPool2D(2),
            Flatten(),
            Dense(feature_dim),
            ReLU(),
        ]
    else:
        feature_layers = [
            Flatten(),
            Dense(hidden),
            ReLU(),
            Dense(feature_dim),
            ReLU(),
        ]
    feature_model = Sequential(feature_layers, input_shape=image_shape, rng=rng,
                               name="score-features")
    head = Sequential(
        [Dense(num_classes)], input_shape=(feature_dim,), rng=rng, name="score-head"
    )
    return ScoreClassifier(feature_model, head, num_classes)


def train_score_classifier(
    train: ImageDataset,
    epochs: int = 3,
    batch_size: int = 64,
    learning_rate: float = 1e-3,
    convolutional: bool = True,
    hidden: int = 128,
    feature_dim: int = 64,
    seed: int = 1234,
    validation: Optional[ImageDataset] = None,
    verbose: bool = False,
) -> ScoreClassifier:
    """Train the frozen dataset-score classifier on the labelled train split."""
    rng = np.random.default_rng(seed)
    clf = _build_classifier(
        train.spec.shape, train.num_classes, rng, convolutional, hidden, feature_dim
    )
    opt_feat = Adam(learning_rate=learning_rate, beta1=0.9)
    opt_head = Adam(learning_rate=learning_rate, beta1=0.9)
    for epoch in range(epochs):
        total_loss, batches = 0.0, 0
        for images, labels in train.iter_batches(batch_size, rng=rng, drop_last=True):
            features = clf.feature_model.forward(images, training=True)
            logits = clf.head.forward(features, training=True)
            loss, grad_logits = softmax_cross_entropy(logits, labels)
            clf.head.zero_grad()
            clf.feature_model.zero_grad()
            grad_features = clf.head.backward(grad_logits)
            clf.feature_model.backward(grad_features)
            opt_head.step(clf.head)
            opt_feat.step(clf.feature_model)
            total_loss += loss
            batches += 1
        if verbose:  # pragma: no cover - logging only
            msg = f"[score-classifier] epoch {epoch + 1}/{epochs} loss={total_loss / max(1, batches):.4f}"
            if validation is not None:
                msg += f" val_acc={clf.accuracy(validation):.3f}"
            print(msg)
    return clf

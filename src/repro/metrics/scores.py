"""Generator quality scores: Inception-style score and Fréchet distance.

Two metrics reproduce the paper's evaluation protocol:

* :func:`inception_score` — the Inception Score of Salimans et al. (the
  "MNIST score" when the classifier is the MNIST-adapted one): the
  exponential of the average KL divergence between the per-sample class
  posterior and the marginal class distribution of the generated samples.
  Higher is better; it rewards samples that are confidently classified *and*
  diverse across classes.
* :func:`frechet_distance` — the Fréchet Inception Distance of Heusel et
  al.: the Fréchet (2-Wasserstein) distance between Gaussians fitted to the
  classifier features of real and generated samples.  Lower is better.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import linalg

__all__ = [
    "inception_score",
    "gaussian_statistics",
    "frechet_distance",
    "frechet_distance_from_features",
    "mode_coverage",
]

_EPS = 1e-12


def inception_score(
    probabilities: np.ndarray, splits: int = 1
) -> Tuple[float, float]:
    """Inception/MNIST score from per-sample class probabilities.

    Parameters
    ----------
    probabilities:
        Array of shape ``(N, K)`` with rows summing to one.
    splits:
        Number of splits to average over (the original implementation uses
        10; with the small sample sizes of the reproduction 1 is the
        default).

    Returns
    -------
    (mean, std):
        Mean and standard deviation of the score across splits.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got shape {probs.shape}")
    if probs.shape[0] < splits:
        raise ValueError(
            f"Need at least {splits} samples for {splits} splits, got {probs.shape[0]}"
        )
    row_sums = probs.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-3):
        raise ValueError("Each row of probabilities must sum to 1")
    scores = []
    chunks = np.array_split(probs, splits)
    for chunk in chunks:
        marginal = chunk.mean(axis=0, keepdims=True)
        kl = chunk * (np.log(chunk + _EPS) - np.log(marginal + _EPS))
        scores.append(float(np.exp(kl.sum(axis=1).mean())))
    return float(np.mean(scores)), float(np.std(scores))


def gaussian_statistics(features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mean vector and covariance matrix of a feature sample."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if features.shape[0] < 2:
        raise ValueError("Need at least two samples to estimate a covariance")
    mu = features.mean(axis=0)
    sigma = np.cov(features, rowvar=False)
    return mu, np.atleast_2d(sigma)


def frechet_distance(
    mu1: np.ndarray, sigma1: np.ndarray, mu2: np.ndarray, sigma2: np.ndarray
) -> float:
    """Fréchet distance between two Gaussians ``N(mu1, sigma1)`` and ``N(mu2, sigma2)``.

    ``d^2 = |mu1 - mu2|^2 + Tr(sigma1 + sigma2 - 2 sqrt(sigma1 sigma2))``.
    """
    mu1 = np.asarray(mu1, dtype=np.float64)
    mu2 = np.asarray(mu2, dtype=np.float64)
    sigma1 = np.atleast_2d(np.asarray(sigma1, dtype=np.float64))
    sigma2 = np.atleast_2d(np.asarray(sigma2, dtype=np.float64))
    if mu1.shape != mu2.shape or sigma1.shape != sigma2.shape:
        raise ValueError("Mean/covariance shapes of the two Gaussians must match")
    diff = mu1 - mu2
    # Stabilise the matrix square root with a small diagonal offset, the
    # standard trick from the reference TensorFlow implementation.
    offset = np.eye(sigma1.shape[0]) * 1e-6
    covmean = linalg.sqrtm((sigma1 + offset) @ (sigma2 + offset))
    if isinstance(covmean, tuple):  # older SciPy returns (sqrtm, error_estimate)
        covmean = covmean[0]
    if np.iscomplexobj(covmean):
        covmean = covmean.real
    fid = diff @ diff + np.trace(sigma1 + sigma2 - 2.0 * covmean)
    return float(max(fid, 0.0))


def frechet_distance_from_features(
    real_features: np.ndarray, generated_features: np.ndarray
) -> float:
    """FID computed directly from two feature samples."""
    mu_r, sigma_r = gaussian_statistics(real_features)
    mu_g, sigma_g = gaussian_statistics(generated_features)
    return frechet_distance(mu_r, sigma_r, mu_g, sigma_g)


def mode_coverage(
    probabilities: np.ndarray, threshold: float = 0.5
) -> Tuple[int, np.ndarray]:
    """Number of classes the generator covers, plus the predicted class histogram.

    A class counts as covered when at least one generated sample is assigned
    to it with probability above ``threshold``.  Used by the mode-collapse
    ablation (not part of the paper's headline metrics).
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    predictions = probs.argmax(axis=1)
    confident = probs.max(axis=1) >= threshold
    histogram = np.bincount(predictions, minlength=probs.shape[1])
    covered = np.unique(predictions[confident]).size
    return int(covered), histogram

"""Dataset partitioning across workers.

The paper assumes the training set ``B`` is split equally and i.i.d. over the
``N`` workers (Section III-a).  Besides that reference scheme, the module
provides label-skewed (non-i.i.d.) partitioning so the sensitivity of MD-GAN
to the i.i.d. assumption can be studied as an ablation, plus helpers to merge
shards back (used when a crashed worker's data must be *removed* from the
system, as in the Figure 5 experiment).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .base import ImageDataset

__all__ = [
    "partition_iid",
    "partition_by_label",
    "partition_dirichlet",
    "merge_shards",
]


def _shard_sizes(total: int, num_workers: int) -> List[int]:
    """Split ``total`` samples into ``num_workers`` near-equal shard sizes."""
    base = total // num_workers
    remainder = total % num_workers
    return [base + (1 if i < remainder else 0) for i in range(num_workers)]


def partition_iid(
    dataset: ImageDataset, num_workers: int, rng: np.random.Generator
) -> List[ImageDataset]:
    """Split a dataset into ``num_workers`` equal i.i.d. shards.

    This is the paper's reference setting: samples are shuffled uniformly and
    distributed so that each shard follows the global distribution
    ``P_data``.
    """
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    if len(dataset) < num_workers:
        raise ValueError(
            f"Cannot split {len(dataset)} samples over {num_workers} workers"
        )
    order = rng.permutation(len(dataset))
    sizes = _shard_sizes(len(dataset), num_workers)
    shards = []
    offset = 0
    for worker, size in enumerate(sizes):
        idx = order[offset : offset + size]
        shards.append(dataset.subset(idx, name=f"{dataset.name}/worker{worker}"))
        offset += size
    return shards


def partition_by_label(
    dataset: ImageDataset,
    num_workers: int,
    classes_per_worker: int,
    rng: np.random.Generator,
) -> List[ImageDataset]:
    """Pathological non-i.i.d. split: each worker sees only a few classes.

    Used by the non-i.i.d. ablation; the paper explicitly assumes i.i.d.
    shards, so this lets us quantify how much that assumption matters.
    """
    if classes_per_worker <= 0:
        raise ValueError("classes_per_worker must be positive")
    num_classes = dataset.num_classes
    shards_idx: List[List[int]] = [[] for _ in range(num_workers)]
    # Assign class groups round-robin, then distribute each class's samples
    # among the workers that own it.
    owners: List[List[int]] = [[] for _ in range(num_classes)]
    for worker in range(num_workers):
        start = (worker * classes_per_worker) % num_classes
        for j in range(classes_per_worker):
            owners[(start + j) % num_classes].append(worker)
    for cls in range(num_classes):
        cls_idx = np.where(dataset.labels == cls)[0]
        rng.shuffle(cls_idx)
        cls_owners = owners[cls] or [cls % num_workers]
        for part, owner in enumerate(cls_owners):
            shards_idx[owner].extend(
                cls_idx[part::len(cls_owners)].tolist()
            )
    shards = []
    for worker, idx in enumerate(shards_idx):
        arr = np.asarray(sorted(idx), dtype=np.int64)
        shards.append(dataset.subset(arr, name=f"{dataset.name}/worker{worker}-skew"))
    return shards


def partition_dirichlet(
    dataset: ImageDataset,
    num_workers: int,
    alpha: float,
    rng: np.random.Generator,
) -> List[ImageDataset]:
    """Dirichlet label-skew partition (standard federated-learning benchmark).

    ``alpha`` controls heterogeneity: large alpha approaches the i.i.d.
    split, small alpha concentrates each class on few workers.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    num_classes = dataset.num_classes
    shards_idx: List[List[int]] = [[] for _ in range(num_workers)]
    for cls in range(num_classes):
        cls_idx = np.where(dataset.labels == cls)[0]
        rng.shuffle(cls_idx)
        proportions = rng.dirichlet(alpha * np.ones(num_workers))
        counts = np.floor(proportions * cls_idx.size).astype(int)
        # Distribute the rounding remainder to the largest shares.
        remainder = cls_idx.size - counts.sum()
        for i in np.argsort(-proportions)[:remainder]:
            counts[i] += 1
        offset = 0
        for worker in range(num_workers):
            shards_idx[worker].extend(cls_idx[offset : offset + counts[worker]].tolist())
            offset += counts[worker]
    shards = []
    for worker, idx in enumerate(shards_idx):
        arr = np.asarray(sorted(idx), dtype=np.int64)
        shards.append(
            dataset.subset(arr, name=f"{dataset.name}/worker{worker}-dir{alpha}")
        )
    return shards


def merge_shards(shards: Sequence[ImageDataset]) -> ImageDataset:
    """Concatenate shards back into a single dataset (order preserved)."""
    if not shards:
        raise ValueError("Cannot merge an empty list of shards")
    spec = shards[0].spec
    for shard in shards:
        if shard.spec.shape != spec.shape:
            raise ValueError("All shards must share the same image geometry")
    images = np.concatenate([s.images for s in shards], axis=0)
    labels = np.concatenate([s.labels for s in shards], axis=0)
    return ImageDataset(images, labels, spec, name=f"{spec.name}-merged")

"""Batch samplers used by the trainers.

``EpochSampler`` reproduces the paper's notion of an *epoch*: a worker has
completed one epoch after it has processed ``m = |B_n|`` samples, i.e. after
``m / b`` batches (Algorithm 1 tests ``i mod (mE/b) == 0`` to decide when to
swap discriminators).  The sampler therefore tracks how many samples have
been drawn so trainers can trigger per-epoch actions consistently for both
FL-GAN and MD-GAN.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import ImageDataset

__all__ = ["EpochSampler", "noise_batch", "sample_labels"]


class EpochSampler:
    """Shuffled without-replacement batch sampler with epoch accounting."""

    def __init__(
        self,
        dataset: ImageDataset,
        batch_size: int,
        rng: np.random.Generator,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if len(dataset) == 0:
            raise ValueError("Cannot sample from an empty dataset")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self._rng = rng
        self._order = rng.permutation(len(dataset))
        self._cursor = 0
        self.samples_drawn = 0
        self.epochs_completed = 0

    def __len__(self) -> int:
        return len(self.dataset)

    @property
    def batches_per_epoch(self) -> int:
        """Number of ``next_batch`` calls that complete one pass over the shard.

        Uses ceiling division to match the wrap-around epoch accounting of
        :meth:`next_batch`: a 101-sample shard with batch size 10 finishes its
        first epoch *during* the 11th batch (after ~10.1 batches), so 11 calls
        are needed before ``epochs_completed`` advances — not 10.
        """
        return -(-len(self.dataset) // self.batch_size)

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next ``(images, labels)`` batch, reshuffling per epoch.

        Batches wrap around shard boundaries so every batch has exactly
        ``batch_size`` samples even when the shard size is not a multiple of
        the batch size (matching sampling with reshuffling in Keras'
        ``fit``-style loops).
        """
        idx = np.empty(self.batch_size, dtype=np.int64)
        filled = 0
        while filled < self.batch_size:
            take = min(self.batch_size - filled, len(self._order) - self._cursor)
            idx[filled : filled + take] = self._order[self._cursor : self._cursor + take]
            filled += take
            self._cursor += take
            if self._cursor >= len(self._order):
                self._order = self._rng.permutation(len(self.dataset))
                self._cursor = 0
                self.epochs_completed += 1
        self.samples_drawn += self.batch_size
        return self.dataset.images[idx], self.dataset.labels[idx]

    def cursor_state(self) -> dict:
        """Snapshot the sampler's position: shuffle order, cursor, counters.

        Everything needed to resume sampling bitwise-exactly on another copy
        of the same dataset — used by the resident pool's end-of-run mirror
        (:meth:`repro.runtime.resident.ResidentBackend.pull_mirror`), which
        must carry the complete sampler position without re-shipping the
        dataset itself.  Restore with :meth:`restore_cursor_state`.
        """
        return {
            "order": self._order,
            "cursor": self._cursor,
            "samples_drawn": self.samples_drawn,
            "epochs_completed": self.epochs_completed,
        }

    def restore_cursor_state(self, state: dict) -> None:
        """Restore a :meth:`cursor_state` snapshot (the dataset is untouched)."""
        self._order = state["order"]
        self._cursor = state["cursor"]
        self.samples_drawn = state["samples_drawn"]
        self.epochs_completed = state["epochs_completed"]

    def replace_dataset(self, dataset: ImageDataset) -> None:
        """Swap the underlying shard (used when reassigning data after churn).

        Epoch-accounting semantics (pinned by ``tests/datasets/test_sampler.py``):

        * the shuffle order and cursor are **reset** — the next batch starts a
          fresh pass over the new shard, with the order drawn from the
          sampler's own RNG so seeded trajectories stay deterministic;
        * ``samples_drawn`` and ``epochs_completed`` **carry over** — they
          count the worker's lifetime progress, not per-shard progress, so
          swap/round triggers (``i mod (mE/b)``) keep their cadence across a
          replacement.

        If the worker's state lives in a resident execution pool
        (``backend="resident"``), sync it back first
        (``trainer.sync_worker_state([worker])``) so the replacement reaches
        the authoritative copy.
        """
        if len(dataset) == 0:
            raise ValueError("Cannot sample from an empty dataset")
        self.dataset = dataset
        self._order = self._rng.permutation(len(dataset))
        self._cursor = 0


def noise_batch(
    batch_size: int, latent_dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw a batch of latent vectors ``z ~ N(0, I)`` (the paper's ``N^l``)."""
    if batch_size <= 0 or latent_dim <= 0:
        raise ValueError("batch_size and latent_dim must be positive")
    return rng.normal(0.0, 1.0, size=(batch_size, latent_dim))


def sample_labels(
    batch_size: int, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample uniform class labels for conditional (ACGAN) generation."""
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    return rng.integers(0, num_classes, size=batch_size)

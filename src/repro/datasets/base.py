"""Dataset containers shared by every data source in the reproduction.

A :class:`ImageDataset` is an immutable pair of image tensor (NCHW, values in
``[-1, 1]`` as expected by a ``tanh`` generator output) and integer labels.
It also records the provenance metadata used by the analytic communication
models (per-object size ``d`` in floats, number of classes, image geometry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from ..nn.precision import resolve_dtype

__all__ = ["ImageDataset", "DatasetSpec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset family.

    Attributes
    ----------
    name:
        Dataset identifier (``"mnist"``, ``"cifar10"``, ``"celeba"``).
    channels, height, width:
        Image geometry (NCHW per-sample shape is ``(channels, height, width)``).
    num_classes:
        Number of semantic classes (10 for MNIST/CIFAR10; CelebA is treated as
        a single-class dataset with attribute-driven appearance variation).
    train_size, test_size:
        Reference sizes of the original dataset splits, used when the paper's
        full-scale parameters are requested.
    """

    name: str
    channels: int
    height: int
    width: int
    num_classes: int
    train_size: int
    test_size: int

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Per-sample tensor shape ``(C, H, W)``."""
        return (self.channels, self.height, self.width)

    @property
    def object_size(self) -> int:
        """Number of scalar features per object — the paper's ``d``."""
        return self.channels * self.height * self.width


@dataclass
class ImageDataset:
    """Labelled image dataset in NCHW layout with values in ``[-1, 1]``.

    Images are stored in ``dtype`` — by default the precision policy's dtype
    (float32), so batches feed the models without per-step casts and the
    in-memory size matches the paper's 32-bit wire accounting.  Pass
    ``dtype`` (or use :meth:`astype`) to override, e.g. for a float64
    numerics run.
    """

    images: np.ndarray
    labels: np.ndarray
    spec: DatasetSpec
    name: str = field(default="")
    dtype: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.dtype = resolve_dtype(self.dtype)
        self.images = np.asarray(self.images, dtype=self.dtype)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(
                f"images must be 4-D (N, C, H, W); got shape {self.images.shape}"
            )
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"images ({self.images.shape[0]}) and labels "
                f"({self.labels.shape[0]}) disagree on the number of samples"
            )
        if self.images.shape[1:] != self.spec.shape:
            raise ValueError(
                f"images have per-sample shape {self.images.shape[1:]}, "
                f"spec expects {self.spec.shape}"
            )
        if not self.name:
            self.name = self.spec.name

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of semantic classes."""
        return self.spec.num_classes

    @property
    def object_size(self) -> int:
        """Number of scalar features per object — the paper's ``d``."""
        return self.spec.object_size

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "ImageDataset":
        """Return a new dataset restricted to ``indices`` (copies data)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(
                f"Indices out of range [0, {len(self)}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return ImageDataset(
            images=self.images[indices].copy(),
            labels=self.labels[indices].copy(),
            spec=self.spec,
            name=name or f"{self.name}[{indices.size}]",
            dtype=self.dtype,
        )

    def astype(self, dtype) -> "ImageDataset":
        """Return this dataset with images in ``dtype`` (self if it already is).

        Trainers call this once at construction so an explicit
        ``TrainingConfig(precision=...)`` reaches the data, not only the
        models — a float64 opt-in must not train on float32-quantized images.
        """
        dtype = resolve_dtype(dtype)
        if self.images.dtype == dtype:
            return self
        return ImageDataset(
            images=self.images,
            labels=self.labels,
            spec=self.spec,
            name=self.name,
            dtype=dtype,
        )

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a batch of ``batch_size`` images/labels uniformly with replacement."""
        if len(self) == 0:
            raise ValueError("Cannot sample from an empty dataset")
        idx = rng.integers(0, len(self), size=batch_size)
        return self.images[idx], self.labels[idx]

    def iter_batches(
        self,
        batch_size: int,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over the dataset once in (optionally shuffled) batches."""
        n = len(self)
        order = np.arange(n)
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            if drop_last and idx.size < batch_size:
                break
            yield self.images[idx], self.labels[idx]

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts, shape ``(num_classes,)``."""
        return np.bincount(self.labels, minlength=self.spec.num_classes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ImageDataset(name={self.name!r}, n={len(self)}, "
            f"shape={self.spec.shape}, classes={self.spec.num_classes})"
        )

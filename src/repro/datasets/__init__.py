"""``repro.datasets`` — synthetic image datasets and worker partitioning.

Stands in for the public MNIST / CIFAR10 / CelebA datasets used by the paper
(no network access in this environment).  See ``DESIGN.md`` for the
substitution rationale.
"""

from .base import DatasetSpec, ImageDataset
from .partition import (
    merge_shards,
    partition_by_label,
    partition_dirichlet,
    partition_iid,
)
from .sampler import EpochSampler, noise_batch, sample_labels
from .synthetic import (
    CELEBA_SPEC,
    CIFAR10_SPEC,
    DATASET_FACTORIES,
    MNIST_SPEC,
    load_dataset,
    make_celeba_like,
    make_cifar10_like,
    make_gaussian_ring,
    make_mnist_like,
)

__all__ = [
    "DatasetSpec",
    "ImageDataset",
    "partition_iid",
    "partition_by_label",
    "partition_dirichlet",
    "merge_shards",
    "EpochSampler",
    "noise_batch",
    "sample_labels",
    "MNIST_SPEC",
    "CIFAR10_SPEC",
    "CELEBA_SPEC",
    "DATASET_FACTORIES",
    "load_dataset",
    "make_mnist_like",
    "make_cifar10_like",
    "make_celeba_like",
    "make_gaussian_ring",
]

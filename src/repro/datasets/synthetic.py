"""Procedural synthetic datasets standing in for MNIST, CIFAR10 and CelebA.

The original experiments download the public MNIST / CIFAR10 / CelebA image
datasets.  This environment has no network access, so each dataset is replaced
by a *procedurally generated* equivalent that preserves the properties the
MD-GAN evaluation actually exercises:

* identical tensor geometry and channel count (so every communication /
  complexity figure that depends on the object size ``d`` is unchanged),
* 10 well-separated semantic classes (so the auxiliary-classifier losses,
  the dataset-score classifier and the FID feature extractor all have real
  structure to learn),
* substantial intra-class appearance variation driven by continuous latent
  factors (position, scale, rotation, colour, texture) so that a generator
  has a non-trivial multi-modal distribution to fit and discriminators can
  overfit a small local shard — the phenomenon discriminator swapping is
  designed to mitigate.

All generators are deterministic for a given seed and vectorised across the
samples of a class (the per-class Python loop runs only ``num_classes``
times).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .base import DatasetSpec, ImageDataset

__all__ = [
    "MNIST_SPEC",
    "CIFAR10_SPEC",
    "CELEBA_SPEC",
    "make_mnist_like",
    "make_cifar10_like",
    "make_celeba_like",
    "make_gaussian_ring",
]

MNIST_SPEC = DatasetSpec(
    name="mnist", channels=1, height=28, width=28, num_classes=10,
    train_size=60_000, test_size=10_000,
)
CIFAR10_SPEC = DatasetSpec(
    name="cifar10", channels=3, height=32, width=32, num_classes=10,
    train_size=50_000, test_size=10_000,
)
CELEBA_SPEC = DatasetSpec(
    name="celeba", channels=3, height=128, width=128, num_classes=10,
    train_size=190_000, test_size=10_000,
)


# ---------------------------------------------------------------------------
# drawing primitives (vectorised over samples)
# ---------------------------------------------------------------------------

def _grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised coordinate grid in [-1, 1] x [-1, 1]."""
    ys = np.linspace(-1.0, 1.0, height)
    xs = np.linspace(-1.0, 1.0, width)
    yy, xx = np.meshgrid(ys, xs, indexing="ij")
    return yy, xx


def _soft(mask_dist: np.ndarray, sharpness: float = 18.0) -> np.ndarray:
    """Smooth indicator from a signed distance-like field (<= 0 is inside)."""
    return 1.0 / (1.0 + np.exp(sharpness * mask_dist))


def _ring(yy, xx, cy, cx, radius, thickness, sharpness=18.0):
    """Ring (annulus) of the given centre, radius and thickness."""
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return _soft(np.abs(dist - radius) - thickness, sharpness)


def _disk(yy, xx, cy, cx, radius, sharpness=18.0):
    """Filled disk."""
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return _soft(dist - radius, sharpness)


def _ellipse(yy, xx, cy, cx, ry, rx, sharpness=18.0):
    """Filled axis-aligned ellipse."""
    dist = np.sqrt(((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2)
    return _soft(dist - 1.0, sharpness * 0.5)


def _segment(yy, xx, y0, x0, y1, x1, thickness, sharpness=18.0):
    """Line segment between (y0, x0) and (y1, x1) with the given thickness."""
    dy, dx = y1 - y0, x1 - x0
    length_sq = dy**2 + dx**2 + 1e-12
    t = ((yy - y0) * dy + (xx - x0) * dx) / length_sq
    t = np.clip(t, 0.0, 1.0)
    py, px = y0 + t * dy, x0 + t * dx
    dist = np.sqrt((yy - py) ** 2 + (xx - px) ** 2)
    return _soft(dist - thickness, sharpness)


def _stack(*masks: np.ndarray) -> np.ndarray:
    """Combine intensity masks with a soft max (union of strokes)."""
    out = masks[0]
    for m in masks[1:]:
        out = 1.0 - (1.0 - out) * (1.0 - m)
    return out


# ---------------------------------------------------------------------------
# MNIST-like digits
# ---------------------------------------------------------------------------

def _digit_masks(
    label: int,
    n: int,
    yy: np.ndarray,
    xx: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render ``n`` samples of digit-evoking strokes for class ``label``.

    Each class has a fixed stroke program whose control points are jittered
    per sample, giving the intra-class variability a GAN must capture.
    """
    # Per-sample jitter: translation, scale, stroke thickness.
    ty = rng.uniform(-0.14, 0.14, size=(n, 1, 1))
    tx = rng.uniform(-0.14, 0.14, size=(n, 1, 1))
    sc = rng.uniform(0.8, 1.1, size=(n, 1, 1))
    th = rng.uniform(0.06, 0.11, size=(n, 1, 1))
    y = (yy[None] - ty) / sc
    x = (xx[None] - tx) / sc

    if label == 0:
        return _ring(y, x, 0.0, 0.0, 0.55, th)
    if label == 1:
        return _segment(y, x, -0.65, 0.05, 0.65, -0.05, th)
    if label == 2:
        top = _ring(y, x, -0.32, 0.0, 0.3, th) * _soft(y - (-0.30))
        diag = _segment(y, x, -0.1, 0.3, 0.6, -0.4, th)
        base = _segment(y, x, 0.6, -0.4, 0.6, 0.45, th)
        return _stack(top, diag, base)
    if label == 3:
        top = _ring(y, x, -0.3, 0.0, 0.3, th) * _soft(-x - 0.05)
        bot = _ring(y, x, 0.3, 0.0, 0.3, th) * _soft(-x - 0.05)
        return _stack(top, bot)
    if label == 4:
        left = _segment(y, x, -0.6, -0.3, 0.05, -0.3, th)
        bar = _segment(y, x, 0.05, -0.4, 0.05, 0.4, th)
        right = _segment(y, x, -0.6, 0.25, 0.65, 0.25, th)
        return _stack(left, bar, right)
    if label == 5:
        top = _segment(y, x, -0.6, -0.3, -0.6, 0.35, th)
        left = _segment(y, x, -0.6, -0.3, -0.05, -0.3, th)
        belly = _ring(y, x, 0.25, 0.02, 0.34, th)
        return _stack(top, left, belly)
    if label == 6:
        spine = _segment(y, x, -0.6, -0.15, 0.2, -0.33, th)
        loop = _ring(y, x, 0.3, 0.0, 0.32, th)
        return _stack(spine, loop)
    if label == 7:
        top = _segment(y, x, -0.6, -0.35, -0.6, 0.4, th)
        diag = _segment(y, x, -0.6, 0.4, 0.65, -0.15, th)
        return _stack(top, diag)
    if label == 8:
        top = _ring(y, x, -0.3, 0.0, 0.3, th)
        bot = _ring(y, x, 0.32, 0.0, 0.33, th)
        return _stack(top, bot)
    if label == 9:
        loop = _ring(y, x, -0.28, 0.0, 0.3, th)
        tail = _segment(y, x, -0.28, 0.3, 0.62, 0.18, th)
        return _stack(loop, tail)
    raise ValueError(f"MNIST-like labels are 0..9, got {label}")


def make_mnist_like(
    n_train: int = 2000,
    n_test: int = 500,
    image_size: int = 28,
    noise: float = 0.04,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Create an MNIST-like dataset of digit-evoking grayscale strokes.

    Returns ``(train, test)`` datasets in NCHW layout with values in
    ``[-1, 1]``.  ``image_size`` can be reduced (e.g. 16) for fast CI runs;
    the default matches MNIST's 28x28 geometry.
    """
    spec = DatasetSpec(
        name="mnist", channels=1, height=image_size, width=image_size,
        num_classes=10, train_size=MNIST_SPEC.train_size,
        test_size=MNIST_SPEC.test_size,
    )
    rng = np.random.default_rng(seed)
    yy, xx = _grid(image_size, image_size)

    def _make(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 10, size=n)
        images = np.zeros((n, 1, image_size, image_size), dtype=np.float64)
        for label in range(10):
            idx = np.where(labels == label)[0]
            if idx.size == 0:
                continue
            masks = _digit_masks(label, idx.size, yy, xx, rng)
            images[idx, 0] = masks
        if noise > 0:
            images += rng.normal(0.0, noise, size=images.shape)
        images = np.clip(images, 0.0, 1.0)
        return images * 2.0 - 1.0, labels

    train_x, train_y = _make(n_train)
    test_x, test_y = _make(n_test)
    return (
        ImageDataset(train_x, train_y, spec, name="mnist-train"),
        ImageDataset(test_x, test_y, spec, name="mnist-test"),
    )


# ---------------------------------------------------------------------------
# CIFAR10-like coloured textured objects
# ---------------------------------------------------------------------------

_CIFAR_BASE_COLORS = np.array(
    [
        [0.55, 0.70, 0.95],  # airplane  : sky blue
        [0.80, 0.20, 0.20],  # automobile: red
        [0.35, 0.60, 0.30],  # bird      : green
        [0.85, 0.60, 0.25],  # cat       : orange
        [0.50, 0.40, 0.25],  # deer      : brown
        [0.45, 0.45, 0.50],  # dog       : grey
        [0.25, 0.75, 0.45],  # frog      : bright green
        [0.60, 0.35, 0.20],  # horse     : chestnut
        [0.30, 0.45, 0.80],  # ship      : navy
        [0.70, 0.70, 0.25],  # truck     : yellow
    ]
)


def _cifar_shape(label: int, n, yy, xx, rng):
    """Foreground mask per class: alternating disks, boxes and triangles."""
    cy = rng.uniform(-0.2, 0.2, size=(n, 1, 1))
    cx = rng.uniform(-0.2, 0.2, size=(n, 1, 1))
    size = rng.uniform(0.35, 0.6, size=(n, 1, 1))
    kind = label % 4
    if kind == 0:
        return _disk(yy[None], xx[None], cy, cx, size, 10.0)
    if kind == 1:
        return _ellipse(yy[None], xx[None], cy, cx, size * 0.6, size, 10.0)
    if kind == 2:
        box = _soft(np.abs(yy[None] - cy) - size * 0.7, 10.0) * _soft(
            np.abs(xx[None] - cx) - size * 0.7, 10.0
        )
        return box
    # triangle-ish wedge
    wedge = _soft((yy[None] - cy) * -1.0 - size * 0.7, 10.0) * _soft(
        np.abs(xx[None] - cx) - (yy[None] - cy + size) * 0.6, 10.0
    )
    return wedge


def make_cifar10_like(
    n_train: int = 2000,
    n_test: int = 500,
    image_size: int = 32,
    noise: float = 0.05,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Create a CIFAR10-like dataset of coloured textured objects.

    Each class pairs a characteristic hue with a shape family and a textured
    background; per-sample latent factors vary position, scale, hue jitter
    and texture frequency.
    """
    spec = DatasetSpec(
        name="cifar10", channels=3, height=image_size, width=image_size,
        num_classes=10, train_size=CIFAR10_SPEC.train_size,
        test_size=CIFAR10_SPEC.test_size,
    )
    rng = np.random.default_rng(seed)
    yy, xx = _grid(image_size, image_size)

    def _make(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 10, size=n)
        images = np.zeros((n, 3, image_size, image_size), dtype=np.float64)
        for label in range(10):
            idx = np.where(labels == label)[0]
            if idx.size == 0:
                continue
            m = idx.size
            mask = _cifar_shape(label, m, yy, xx, rng)
            base = _CIFAR_BASE_COLORS[label]
            color = base[None, :] + rng.normal(0.0, 0.06, size=(m, 3))
            color = np.clip(color, 0.05, 0.95)
            # Textured background: low-frequency sinusoidal pattern whose
            # phase/frequency differ per sample and per class.
            freq = rng.uniform(2.0, 5.0, size=(m, 1, 1)) + label * 0.3
            phase = rng.uniform(0.0, 2 * np.pi, size=(m, 1, 1))
            bg = 0.35 + 0.15 * np.sin(freq * np.pi * xx[None] + phase) * np.cos(
                freq * np.pi * yy[None]
            )
            bg_color = np.clip(
                0.5 + rng.normal(0.0, 0.1, size=(m, 3)), 0.2, 0.8
            )
            for ch in range(3):
                fg = color[:, ch, None, None] * (0.8 + 0.2 * np.cos(
                    3.0 * np.pi * yy[None] + phase
                ))
                images[idx, ch] = mask * fg + (1.0 - mask) * bg * bg_color[:, ch, None, None]
        if noise > 0:
            images += rng.normal(0.0, noise, size=images.shape)
        images = np.clip(images, 0.0, 1.0)
        return images * 2.0 - 1.0, labels

    train_x, train_y = _make(n_train)
    test_x, test_y = _make(n_test)
    return (
        ImageDataset(train_x, train_y, spec, name="cifar10-train"),
        ImageDataset(test_x, test_y, spec, name="cifar10-test"),
    )


# ---------------------------------------------------------------------------
# CelebA-like synthetic faces
# ---------------------------------------------------------------------------

def make_celeba_like(
    n_train: int = 1000,
    n_test: int = 200,
    image_size: int = 32,
    noise: float = 0.03,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Create a CelebA-like dataset of synthetic face compositions.

    Faces are composed of a skin-tone ellipse, hair region, two eyes and a
    mouth whose curvature/width vary continuously.  The ten "classes" are
    coarse appearance bins (hair colour x skin tone x smile), giving the
    score classifier a supervised signal analogous to CelebA attributes.

    The paper uses 128x128 crops; ``image_size`` defaults to a scaled-down 32
    so CPU benchmarks stay tractable, and can be raised to 128 to match the
    paper exactly.
    """
    spec = DatasetSpec(
        name="celeba", channels=3, height=image_size, width=image_size,
        num_classes=10, train_size=CELEBA_SPEC.train_size,
        test_size=CELEBA_SPEC.test_size,
    )
    rng = np.random.default_rng(seed)
    yy, xx = _grid(image_size, image_size)

    hair_colors = np.array(
        [[0.1, 0.08, 0.06], [0.45, 0.3, 0.12], [0.8, 0.7, 0.3], [0.4, 0.4, 0.42], [0.6, 0.2, 0.15]]
    )
    skin_tones = np.array([[0.95, 0.8, 0.7], [0.6, 0.45, 0.35]])

    def _make(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.zeros(n, dtype=np.int64)
        images = np.zeros((n, 3, image_size, image_size), dtype=np.float64)
        hair_idx = rng.integers(0, len(hair_colors), size=n)
        skin_idx = rng.integers(0, len(skin_tones), size=n)
        smile = rng.uniform(-1.0, 1.0, size=n)
        labels = (hair_idx * 2 + skin_idx) % 10

        face_ry = rng.uniform(0.5, 0.65, size=(n, 1, 1))
        face_rx = rng.uniform(0.38, 0.5, size=(n, 1, 1))
        cy = rng.uniform(-0.05, 0.1, size=(n, 1, 1))
        cx = rng.uniform(-0.08, 0.08, size=(n, 1, 1))

        face = _ellipse(yy[None], xx[None], cy, cx, face_ry, face_rx, 14.0)
        hair = _ellipse(yy[None], xx[None], cy - 0.25, cx, face_ry * 0.9, face_rx * 1.15, 14.0)
        hair = np.clip(hair - face * 0.85, 0.0, 1.0)
        eye_y = cy - 0.12
        eye_dx = rng.uniform(0.16, 0.22, size=(n, 1, 1))
        eye_r = rng.uniform(0.045, 0.07, size=(n, 1, 1))
        eyes = _stack(
            _disk(yy[None], xx[None], eye_y, cx - eye_dx, eye_r, 25.0),
            _disk(yy[None], xx[None], eye_y, cx + eye_dx, eye_r, 25.0),
        )
        mouth_y = cy + face_ry * 0.45
        mouth_w = rng.uniform(0.12, 0.22, size=(n, 1, 1))
        curve = smile[:, None, None] * 0.12
        mouth = _soft(
            np.abs(yy[None] - (mouth_y + curve * (xx[None] - cx) ** 2 / (mouth_w**2 + 1e-6)))
            - 0.03,
            25.0,
        ) * _soft(np.abs(xx[None] - cx) - mouth_w, 25.0)

        bg_shade = rng.uniform(0.25, 0.75, size=(n, 1, 1))
        for ch in range(3):
            skin = skin_tones[skin_idx, ch, None, None]
            hairc = hair_colors[hair_idx, ch, None, None]
            img = bg_shade * (0.7 + 0.1 * ch)
            img = img * (1 - face) + face * skin
            img = img * (1 - hair) + hair * hairc
            img = img * (1 - eyes) + eyes * 0.08
            img = img * (1 - mouth) + mouth * np.array([0.75, 0.25, 0.3])[ch]
            images[:, ch] = img
        if noise > 0:
            images += rng.normal(0.0, noise, size=images.shape)
        images = np.clip(images, 0.0, 1.0)
        return images * 2.0 - 1.0, labels

    train_x, train_y = _make(n_train)
    test_x, test_y = _make(n_test)
    return (
        ImageDataset(train_x, train_y, spec, name="celeba-train"),
        ImageDataset(test_x, test_y, spec, name="celeba-test"),
    )


# ---------------------------------------------------------------------------
# Tiny analytic dataset for unit tests / toy examples
# ---------------------------------------------------------------------------

def make_gaussian_ring(
    n_train: int = 2000,
    n_test: int = 500,
    image_size: int = 8,
    num_modes: int = 8,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Tiny dataset of single-blob images arranged on a ring of modes.

    Useful for fast unit/integration tests: each class places a Gaussian blob
    at one of ``num_modes`` angular positions, so mode coverage (and mode
    collapse) is directly observable.
    """
    spec = DatasetSpec(
        name="ring", channels=1, height=image_size, width=image_size,
        num_classes=num_modes, train_size=n_train, test_size=n_test,
    )
    rng = np.random.default_rng(seed)
    yy, xx = _grid(image_size, image_size)

    def _make(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_modes, size=n)
        angles = 2 * np.pi * labels / num_modes + rng.normal(0, 0.08, size=n)
        radius = 0.55 + rng.normal(0, 0.04, size=n)
        cy = (radius * np.sin(angles))[:, None, None]
        cx = (radius * np.cos(angles))[:, None, None]
        width = rng.uniform(0.18, 0.26, size=(n, 1, 1))
        blobs = np.exp(-(((yy[None] - cy) ** 2 + (xx[None] - cx) ** 2) / (2 * width**2)))
        images = np.clip(blobs, 0.0, 1.0)[:, None, :, :]
        return images * 2.0 - 1.0, labels

    train_x, train_y = _make(n_train)
    test_x, test_y = _make(n_test)
    return (
        ImageDataset(train_x, train_y, spec, name="ring-train"),
        ImageDataset(test_x, test_y, spec, name="ring-test"),
    )


#: Registry used by experiment configs to resolve dataset factories by name.
DATASET_FACTORIES: Dict[str, Callable[..., Tuple[ImageDataset, ImageDataset]]] = {
    "mnist": make_mnist_like,
    "cifar10": make_cifar10_like,
    "celeba": make_celeba_like,
    "ring": make_gaussian_ring,
}


def load_dataset(
    name: str,
    n_train: int,
    n_test: int,
    image_size: Optional[int] = None,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Load a dataset pair by registry name with optional size override."""
    try:
        factory = DATASET_FACTORIES[name]
    except KeyError as exc:
        raise ValueError(
            f"Unknown dataset {name!r}; known: {sorted(DATASET_FACTORIES)}"
        ) from exc
    kwargs = dict(n_train=n_train, n_test=n_test, seed=seed)
    if image_size is not None:
        kwargs["image_size"] = image_size
    return factory(**kwargs)


__all__ += ["DATASET_FACTORIES", "load_dataset"]

"""Configuration objects for the three training algorithms.

The configuration mirrors the notation of the paper's Table I:

=============  =====================================================
``batch_size``    ``b`` — batch size
``iterations``    ``I`` — number of global training iterations
``disc_steps``    ``L`` — discriminator learning steps per iteration
``epochs_per_swap``  ``E`` — local epochs between discriminator swaps
                    (MD-GAN) or between federated rounds (FL-GAN)
``num_batches``   ``k`` — number of generated batches per iteration
                    (MD-GAN only; ``None`` means ``max(1, floor(log N))``)
=============  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["OptimizerConfig", "TrainingConfig", "resolve_num_batches"]


@dataclass(frozen=True)
class OptimizerConfig:
    """Adam settings for one network (generator or discriminator).

    The paper's CelebA experiment tunes the Adam hyper-parameters separately
    per competitor and per network, hence a dedicated config object.
    """

    learning_rate: float = 2e-4
    beta1: float = 0.5
    beta2: float = 0.999
    eps: float = 1e-8

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if not (0 <= self.beta1 < 1 and 0 <= self.beta2 < 1):
            raise ValueError("beta1/beta2 must lie in [0, 1)")

    def build(self):
        """Instantiate the corresponding :class:`repro.nn.Adam` optimizer."""
        from ..nn.optim import Adam

        return Adam(
            learning_rate=self.learning_rate,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
        )


@dataclass(frozen=True)
class TrainingConfig:
    """Shared configuration for standalone, FL-GAN and MD-GAN training."""

    iterations: int = 1000
    batch_size: int = 10
    disc_steps: int = 1
    epochs_per_swap: float = 1.0
    num_batches: Optional[int] = None
    generator_opt: OptimizerConfig = field(default_factory=OptimizerConfig)
    discriminator_opt: OptimizerConfig = field(default_factory=OptimizerConfig)
    non_saturating: bool = True
    label_smoothing: float = 1.0
    seed: int = 0
    eval_every: int = 0
    eval_sample_size: int = 500
    #: Fraction of workers participating in each MD-GAN iteration
    #: (Section VII-4 extension; 1.0 reproduces the paper's algorithm).
    participation_fraction: float = 1.0
    #: Record traffic/compute statistics in the history (cheap, on by default).
    record_traffic: bool = True
    #: Floating-point policy for models/optimizers: ``"float32"`` (fast path,
    #: matches the 32-bit wire format), ``"float64"`` (numerics opt-in), or
    #: ``None`` to follow the process-wide default from
    #: :mod:`repro.nn.precision`.
    precision: Optional[str] = None
    #: Execution backend for the per-worker phase of each global iteration:
    #: ``"serial"`` (reference), ``"thread"``, ``"process"`` or
    #: ``"resident"`` (persistent pool holding worker state across
    #: iterations; see :mod:`repro.runtime`).  All backends produce
    #: bitwise-identical seeded runs; the parallel ones only change
    #: wall-clock time.
    backend: str = "serial"
    #: Pool size for the parallel backends (``None`` = cores - 1).
    max_workers: Optional[int] = None
    #: Ship resident-pool install payloads (dataset shards, large weight
    #: tensors) through ``multiprocessing.shared_memory`` instead of the
    #: pool pipes, so install cost stops scaling with shard bytes.  ``None``
    #: (the default) follows the process-wide default (on unless the
    #: platform lacks shared memory); ``True``/``False`` force it for this
    #: run — the CLI's ``--shm-install``/``--no-shm-install`` flags thread
    #: into this field.  Ignored by non-resident backends.  Bitwise-neutral
    #: either way — the transport moves the same bytes.
    shm_install: Optional[bool] = None
    #: Transport carrying the resident pool's wire protocol: ``"pipe"``
    #: (local child processes over ``multiprocessing`` pipes), ``"tcp"``
    #: (length-prefixed frames over one socket per slot — loopback workers,
    #: or real machines running ``python -m repro.runtime.worker_host``), or
    #: ``None`` to follow the process-wide default (normally ``pipe``) — the
    #: CLI's ``--transport`` flag threads into this field.  Bitwise-neutral:
    #: seeded runs are identical over either transport.  Ignored by
    #: non-resident backends.
    transport: Optional[str] = None
    #: ``"HOST:PORT"`` the tcp transport should listen on for externally
    #: started worker hosts; ``None`` (with ``transport="tcp"``) binds
    #: loopback and spawns local workers.  Ignored by ``pipe``.
    transport_address: Optional[str] = None
    #: Pipelined execution depth (:mod:`repro.runtime.pipeline`).  ``0`` (the
    #: default) keeps the strictly phase-serial schedule — bitwise identical
    #: across all backends.  ``d > 0`` lets the server run up to ``d``
    #: iterations ahead of the workers: MD-GAN pre-generates future batch
    #: sets while workers compute (introducing a bounded, recorded batch
    #: staleness ``<= d``), and FL-GAN on the ``resident`` backend keeps up
    #: to ``d`` local iterations in flight (no staleness — FL-GAN pipelining
    #: is parity-preserving).
    pipeline_depth: int = 0
    #: Feedback/merge aggregation discipline.  ``"sync"`` (the default) is
    #: the paper's algorithm: every iteration waits for all participants
    #: before the generator update / FedAvg merge — bitwise identical across
    #: all backends and pipeline depths.  ``"async"`` takes the merge off the
    #: critical path: worker contributions are collected in completion order
    #: (:meth:`repro.runtime.ExecutorBackend.open_collector`), buffered, and
    #: applied with staleness-decayed weights under the bounded-staleness
    #: gate below.  Async runs are *not* bitwise-reproducible on concurrent
    #: backends (completion order is real-time nondeterminism); on the serial
    #: backend they degenerate to a deterministic round-robin.
    aggregation: str = "sync"
    #: Bounded-staleness window for ``aggregation="async"``: no worker's
    #: contribution may be folded in more than this many global updates after
    #: the state it was computed against.  Enforced by *blocking dispatch* —
    #: the scheduler refuses to apply an update that would push any in-flight
    #: worker past the bound, so fast workers throttle to the straggler only
    #: when the bound binds.  ``0`` degenerates to a completion-order barrier
    #: (every update sees only fresh contributions).  Ignored when
    #: ``aggregation="sync"``.
    max_staleness: int = 2
    #: Pool-membership policy when a resident slot dies mid-run (see
    #: :mod:`repro.runtime.membership`).  ``"fail_stop"`` (the default) is
    #: the paper's discipline: the pool poisons and the run fails — bitwise
    #: identical across all backends.  ``"degrade"`` quarantines the dead
    #: slot, evicts the workers living on it (their shards redistribute to
    #: survivors at the next aggregation boundary) and keeps training on the
    #: remaining pool; late joiners are admitted mid-run and revive evicted
    #: workers from the last merged mirror.  ``"wait"`` quarantines the slot
    #: but keeps its workers: the run blocks at the loss boundary until
    #: replacement capacity is respawned/admitted (up to
    #: ``rejoin_timeout``), then reassigns the lost workers there.  Ignored
    #: by non-resident backends.
    on_slot_loss: str = "fail_stop"
    #: Elastic floor: an eviction that would leave fewer than this many live
    #: workers escalates to a run failure instead.  Only meaningful with
    #: ``on_slot_loss="degrade"``.
    min_workers: int = 1
    #: Seconds between replacement/rejoin attempts under elastic policies.
    rejoin_backoff: float = 0.25
    #: Seconds the ``"wait"`` policy blocks for replacement capacity before
    #: escalating to a run failure.
    rejoin_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.disc_steps < 1:
            raise ValueError(f"disc_steps must be >= 1, got {self.disc_steps}")
        if self.epochs_per_swap <= 0 and not math.isinf(self.epochs_per_swap):
            raise ValueError(
                "epochs_per_swap must be positive (use math.inf to disable swaps)"
            )
        if self.num_batches is not None and self.num_batches < 1:
            raise ValueError(f"num_batches must be >= 1, got {self.num_batches}")
        if not 0.0 < self.participation_fraction <= 1.0:
            raise ValueError("participation_fraction must be in (0, 1]")
        if self.eval_every < 0:
            raise ValueError("eval_every must be >= 0 (0 disables evaluation)")
        if self.precision is not None and self.precision not in ("float32", "float64"):
            raise ValueError(
                f"precision must be 'float32', 'float64' or None, got "
                f"{self.precision!r}"
            )
        from ..runtime.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.shm_install is not None and not isinstance(self.shm_install, bool):
            raise ValueError(
                f"shm_install must be True, False or None, got {self.shm_install!r}"
            )
        if self.transport is not None:
            from ..runtime.transport import TRANSPORTS

            if self.transport not in TRANSPORTS:
                raise ValueError(
                    f"transport must be one of {TRANSPORTS} or None, got "
                    f"{self.transport!r}"
                )
        if self.transport_address is not None:
            from ..runtime.transport import parse_address

            parse_address(self.transport_address)  # raises ValueError if malformed
            if self.transport == "pipe":
                raise ValueError(
                    "transport_address is only meaningful with transport='tcp'"
                )
        if self.pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0 (0 = synchronous), got "
                f"{self.pipeline_depth}"
            )
        if self.aggregation not in ("sync", "async"):
            raise ValueError(
                f"aggregation must be 'sync' or 'async', got {self.aggregation!r}"
            )
        if self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )
        from ..runtime.membership import ON_SLOT_LOSS_POLICIES

        if self.on_slot_loss not in ON_SLOT_LOSS_POLICIES:
            raise ValueError(
                f"on_slot_loss must be one of {ON_SLOT_LOSS_POLICIES}, got "
                f"{self.on_slot_loss!r}"
            )
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.rejoin_backoff <= 0:
            raise ValueError(f"rejoin_backoff must be > 0, got {self.rejoin_backoff}")
        if self.rejoin_timeout <= 0:
            raise ValueError(f"rejoin_timeout must be > 0, got {self.rejoin_timeout}")
        # Mode composition (aggregation x pipeline x membership x
        # participation) is validated against the execution engine's
        # capability matrix — the single source of truth for which
        # combinations run and why the rest do not.
        from .engine import check_composition

        check_composition(self)

    @property
    def dtype(self):
        """Resolved numpy dtype of the configured precision policy."""
        from ..nn.precision import resolve_dtype

        return resolve_dtype(self.precision)

    def membership_policy(self):
        """The resolved :class:`repro.runtime.membership.MembershipPolicy`.

        Returns ``None`` under the default fail-stop discipline, so the
        entire elastic path stays unreferenced (and trivially bitwise-inert)
        unless explicitly opted into.
        """
        if self.on_slot_loss == "fail_stop":
            return None
        from ..runtime.membership import MembershipPolicy

        return MembershipPolicy(
            on_slot_loss=self.on_slot_loss,
            min_workers=self.min_workers,
            rejoin_backoff=self.rejoin_backoff,
            rejoin_timeout=self.rejoin_timeout,
        )

    def build_backend(self):
        """Instantiate the configured :class:`repro.runtime.ExecutorBackend`.

        Explicit ``shm_install`` / ``transport`` / ``transport_address``
        settings are forwarded to backends that understand them (the resident
        backend, or any third-party backend exposing the attributes) by
        assignment after construction, so the factory signature of other
        backends never has to change; backends without the attributes ignore
        the settings.
        """
        from ..runtime.backend import create_backend

        backend = create_backend(self.backend, self.max_workers)
        if self.shm_install is not None and hasattr(backend, "shm_install"):
            backend.shm_install = self.shm_install
        if self.transport is not None and hasattr(backend, "transport"):
            backend.transport = self.transport
        if self.transport_address is not None and hasattr(backend, "transport_address"):
            backend.transport_address = self.transport_address
        policy = self.membership_policy()
        if policy is not None and hasattr(backend, "membership_policy"):
            backend.membership_policy = policy
        return backend

    def with_overrides(self, **kwargs) -> "TrainingConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def resolve_num_batches(config: TrainingConfig, num_workers: int) -> int:
    """Resolve the paper's ``k`` parameter for a given worker count.

    ``None`` selects the paper's default ``max(1, floor(log N))``; explicit
    values are clamped to ``[1, N]`` (the paper requires ``k <= N``).
    """
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    if config.num_batches is None:
        k = max(1, int(math.floor(math.log(num_workers))) if num_workers > 1 else 1)
    else:
        k = config.num_batches
    return max(1, min(k, num_workers))

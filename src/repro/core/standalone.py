"""Standalone (single-server) GAN training — the paper's baseline.

The standalone GAN has access to the whole dataset ``B`` and trains on a
single machine, exactly as in the original GAN formulation: ``L``
discriminator learning steps followed by one generator learning step per
iteration, both with the Adam optimizer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.base import ImageDataset
from ..datasets.sampler import EpochSampler
from ..metrics.evaluator import GeneratorEvaluator
from ..models.base import GANFactory, generator_input
from ..nn.model import Sequential
from .config import TrainingConfig
from .gan_ops import (
    GANObjective,
    discriminator_update,
    generator_update,
    sample_generator_images,
)
from .history import TrainingHistory

__all__ = ["StandaloneGANTrainer"]


class StandaloneGANTrainer:
    """Classic single-machine GAN trainer (paper's "standalone GAN")."""

    def __init__(
        self,
        factory: GANFactory,
        dataset: ImageDataset,
        config: TrainingConfig,
        evaluator: Optional[GeneratorEvaluator] = None,
    ) -> None:
        self.factory = factory
        dtype = config.dtype
        self.dataset = dataset.astype(dtype)
        self.config = config
        self.evaluator = evaluator

        self._rng = np.random.default_rng(config.seed)
        self.generator: Sequential = factory.make_generator(self._rng, dtype=dtype)
        self.discriminator: Sequential = factory.make_discriminator(self._rng, dtype=dtype)
        self._gen_opt = config.generator_opt.build()
        self._disc_opt = config.discriminator_opt.build()
        self._objective = GANObjective(
            factory,
            non_saturating=config.non_saturating,
            label_smoothing=config.label_smoothing,
        )
        self._sampler = EpochSampler(self.dataset, config.batch_size, self._rng)
        self.history = TrainingHistory(
            algorithm="standalone",
            config={
                "batch_size": config.batch_size,
                "iterations": config.iterations,
                "disc_steps": config.disc_steps,
                "dataset": dataset.name,
                "architecture": factory.name,
            },
        )

    # -- sampling interface used by the evaluator -----------------------------
    def sample_images(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` images from the current generator (evaluation mode)."""
        noise = rng.normal(0.0, 1.0, size=(n, self.factory.latent_dim)).astype(
            self.generator.dtype, copy=False
        )
        labels = (
            rng.integers(0, self.factory.num_classes, size=n)
            if self.factory.conditional
            else None
        )
        g_input = generator_input(noise, labels, self.factory.num_classes)
        return self.generator.predict(g_input)

    # -- training ---------------------------------------------------------------
    def train_iteration(self, iteration: int) -> None:
        """Run one global iteration (L discriminator steps + 1 generator step)."""
        cfg = self.config
        disc_loss = 0.0
        for _ in range(cfg.disc_steps):
            real_images, real_labels = self._sampler.next_batch()
            generated = sample_generator_images(
                self.generator, self.factory, cfg.batch_size, self._rng
            )
            disc_loss = discriminator_update(
                self.discriminator,
                self._objective,
                self._disc_opt,
                real_images,
                real_labels if self.factory.conditional else None,
                generated.images,
                generated.labels,
            )
        gen_loss = generator_update(
            self.generator,
            self.discriminator,
            self.factory,
            self._objective,
            self._gen_opt,
            cfg.batch_size,
            self._rng,
        )
        self.history.record_losses(iteration, gen_loss, disc_loss)

    def train(self) -> TrainingHistory:
        """Train for ``config.iterations`` iterations and return the history."""
        cfg = self.config
        for iteration in range(1, cfg.iterations + 1):
            self.train_iteration(iteration)
            if (
                self.evaluator is not None
                and cfg.eval_every
                and (iteration % cfg.eval_every == 0 or iteration == cfg.iterations)
            ):
                result = self.evaluator.evaluate(self.sample_images, iteration)
                self.history.record_evaluation(result)
        return self.history

    def close(self) -> None:
        """Release resources — a no-op, for parity with the distributed trainers.

        The standalone trainer holds no execution backend or process pool;
        ``close`` (and the context-manager form) exists so experiment runners
        can dispose of every trainer uniformly.
        """

    def __enter__(self) -> "StandaloneGANTrainer":
        """Context-manager entry (interface parity with the other trainers)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: no resources to release."""
        self.close()

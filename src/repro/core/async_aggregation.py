"""Bounded-staleness scheduling for asynchronous aggregation.

The synchronous trainers run a rigid begin → dispatch → merge → finish
sequence: every global update waits for *all* participants, so one straggler
stalls the fleet.  Under ``TrainingConfig(aggregation="async")`` both
trainers instead run an event-driven loop over the runtime's
completion-order collection API
(:meth:`repro.runtime.ExecutorBackend.open_collector`): worker contributions
arrive in completion order, are *buffered*, and are folded into the model in
whole-buffer flushes — each flush is one global update.

:class:`BoundedStalenessScheduler` is the bookkeeping between those two
halves, and the enforcement point for the staleness bound:

* ``note_dispatch(key)`` marks the global update count a worker's unit of
  work was dispatched against (its *read point*);
* ``note_completion(key, payload)`` moves the worker's finished unit into
  the buffer as a :class:`Contribution`;
* ``gate_open`` answers whether applying the buffer *now* is safe: one more
  update must not push any still-in-flight worker past ``max_staleness``
  (``updates + 1 - mark <= max_staleness`` for every in-flight mark).  When
  the gate is closed the trainer simply keeps collecting — it never
  re-dispatches a buffered worker, so the effective back-pressure is
  *blocking dispatch*: fast workers wait exactly when the bound binds, and
  the straggler whose completion re-opens the gate is always in flight,
  which makes the discipline deadlock-free;
* ``take_buffered()`` + ``note_applied()`` consume the buffer as one update.

Induction gives the bound: a contribution enters the buffer with age
``updates - mark <= max_staleness`` (its worker was protected by the gate
while in flight) and the whole buffer is applied in the *same* update, so
every applied contribution has age ``<= max_staleness`` — the quantity
recorded per worker in :attr:`TrainingHistory.worker_staleness` and pinned
by the async regression tests.

Staleness also decides the *weight* of a contribution:
:func:`staleness_weights` decays each contribution by ``1 / (1 + age)`` and
normalises across the flush, so a fresh flush reproduces the synchronous
uniform ``1/n`` weighting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["BoundedStalenessScheduler", "Contribution", "staleness_weights"]


@dataclass
class Contribution:
    """One worker's finished unit of work, buffered until the next flush."""

    #: Worker index the unit ran on.
    key: int
    #: Global update count the unit was dispatched against (read point).
    dispatched_at: int
    #: Trainer-specific payload (feedback + batch for MD-GAN, local model
    #: parameters for FL-GAN) plus whatever bookkeeping the flush needs.
    payload: Any


@dataclass
class BoundedStalenessScheduler:
    """Tracks in-flight and buffered work against the staleness bound."""

    max_staleness: int
    #: Global updates applied so far (MD-GAN: generator updates; FL-GAN:
    #: federated merges).
    updates: int = 0
    _in_flight: Dict[int, int] = field(default_factory=dict)
    _buffer: List[Contribution] = field(default_factory=list)

    # -- bookkeeping -----------------------------------------------------------
    def note_dispatch(self, key: int, mark: Optional[int] = None) -> None:
        """Mark ``key`` in flight; ``mark`` backdates the read point.

        The default read point is the current update count (the unit reads
        the model as of *now*).  A pipelined dispatch hands a unit that was
        pre-generated earlier and passes the update count it was generated
        against — the staleness of the eventual contribution is measured
        from that mark, so pre-generation cannot hide age from the bound.
        """
        if key in self._in_flight:
            raise RuntimeError(f"worker {key} is already in flight")
        if mark is None:
            mark = self.updates
        elif not 0 <= mark <= self.updates:
            raise ValueError(
                f"dispatch mark {mark} outside [0, {self.updates}] for worker {key}"
            )
        self._in_flight[key] = mark

    def note_completion(self, key: int, payload: Any) -> Contribution:
        """Move ``key``'s finished unit from in-flight to the buffer."""
        mark = self._in_flight.pop(key)
        contribution = Contribution(key=key, dispatched_at=mark, payload=payload)
        self._buffer.append(contribution)
        return contribution

    def discard(self, key: int) -> None:
        """Drop ``key``'s in-flight unit (crashed worker; nothing to apply)."""
        self._in_flight.pop(key, None)

    def tracked_keys(self) -> set:
        """Keys currently in flight or buffered — i.e. not idle.

        An idle worker is eligible for (re-)dispatch; a buffered worker is
        *not* until its contribution has been applied, which is what makes
        the back-pressure "blocking dispatch".
        """
        return set(self._in_flight) | {c.key for c in self._buffer}

    # -- the gate --------------------------------------------------------------
    @property
    def gate_open(self) -> bool:
        """Whether one more update keeps every in-flight worker within bound."""
        return all(
            self.updates + 1 - mark <= self.max_staleness
            for mark in self._in_flight.values()
        )

    # -- flushing --------------------------------------------------------------
    @property
    def buffered(self) -> int:
        """Contributions waiting for the next flush."""
        return len(self._buffer)

    @property
    def in_flight(self) -> int:
        """Workers with a dispatched, unfinished unit."""
        return len(self._in_flight)

    def take_buffered(self) -> List[Contribution]:
        """Hand the whole buffer to the caller (who must apply it as ONE update)."""
        contributions, self._buffer = self._buffer, []
        return contributions

    def staleness_of(self, contribution: Contribution) -> int:
        """Age of a contribution, in updates, if applied right now."""
        return self.updates - contribution.dispatched_at

    def note_applied(self) -> None:
        """Count one applied flush; assert no in-flight worker crossed the bound."""
        self.updates += 1
        overdue = {
            key: self.updates - mark
            for key, mark in self._in_flight.items()
            if self.updates - mark > self.max_staleness
        }
        if overdue:  # pragma: no cover - gate violation is a programming error
            raise RuntimeError(
                f"staleness bound {self.max_staleness} violated for {overdue}; "
                "the gate must be consulted before applying"
            )


def staleness_weights(stalenesses: List[int]) -> List[float]:
    """Normalised ``1 / (1 + age)`` contribution weights for one flush.

    All-fresh flushes (every age 0) reproduce the synchronous uniform
    ``1/n`` average; stale contributions are down-weighted relative to
    fresher ones in the same flush.
    """
    raw = [1.0 / (1.0 + float(s)) for s in stalenesses]
    total = sum(raw)
    return [w / total for w in raw]

"""The unified execution engine: one dispatch → collect → merge schedule.

Both trainers (:class:`~repro.core.mdgan.MDGANTrainer`,
:class:`~repro.core.flgan.FLGANTrainer`) used to carry four hand-rolled
loops — synchronous, pipelined, asynchronous and elastic — that were
pairwise forbidden by ``TrainingConfig`` guards because each loop owned its
own notion of a barrier.  :class:`ExecutionEngine` owns the schedule once
and expresses the modes as composable policies on it:

* **sync** is a depth-0 lookahead with a full-drain barrier: every
  iteration dispatches, collects everything, merges, and only then starts
  the next iteration;
* **pipelining** is a lookahead window on the same schedule — up to
  ``pipeline_depth`` units of future work (batch sets for MD-GAN, local
  iterations for FL-GAN) run ahead of the barrier;
* **async** replaces the full-drain barrier with the
  :class:`~repro.core.async_aggregation.BoundedStalenessScheduler` gate:
  the barrier "opens" (a flush is applied) whenever contributions are
  buffered and one more update cannot push any in-flight unit past the
  staleness bound;
* **elastic** is a membership hook at the dispatch/merge boundaries: slot
  losses drain whatever window is in flight, then the
  :class:`~repro.core.elastic.ElasticMembershipMixin` boundary pipeline
  (evict/wait, admit, revive, rebalance) runs against a quiescent pool.

The engine is deliberately thin: trainer-specific bodies (what a unit *is*,
how it merges) stay on the trainers as hook methods, declared with inert
defaults on :class:`EngineHooks`.  Every mode that was legal before this
engine existed runs **bitwise identical** schedules through it — the parity
suite pins that — and the previously forbidden compositions now run through
the same code path instead of raising.

``CAPABILITY_MATRIX`` + :func:`check_composition` are the single source of
truth for which compositions are supported; ``TrainingConfig`` validation
delegates here so an unsupported combination fails at construction time
with an error naming the matrix, never as a deep runtime error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..runtime.pipeline import PipelineStats
from .async_aggregation import BoundedStalenessScheduler

__all__ = [
    "CAPABILITY_MATRIX",
    "check_composition",
    "AsyncContext",
    "EngineHooks",
    "ExecutionEngine",
]


#: The mode-composition support matrix.  ``TrainingConfig.__post_init__``
#: validates against this table via :func:`check_composition`; README's
#: support matrix and the ARCHITECTURE.md "execution engine" section render
#: the same facts for humans.  Keep the three views in sync.
CAPABILITY_MATRIX: Dict[str, Any] = {
    "axes": {
        "aggregation": ("sync", "async"),
        "pipeline_depth": "0 (synchronous barrier) or a positive lookahead window",
        "on_slot_loss": ("fail_stop", "degrade", "wait"),
        "participation_fraction": "(0, 1]",
        "backend": ("serial", "thread", "process", "resident"),
    },
    "supported": (
        "sync x any pipeline_depth x any membership policy x any participation",
        "async x pipeline_depth > 0: the server pre-generates batch sets "
        "while the staleness gate is open (MD-GAN); FL-GAN's async unit is "
        "already a single local iteration, so the depth is accepted and "
        "recorded but adds no extra lookahead",
        "async x participation_fraction < 1: units from deselected workers "
        "are discarded through the scheduler, the same accounting as the "
        "synchronous schedule's final-round discard",
        "async x on_slot_loss in (degrade, wait): the engine's drain "
        "barrier provides the blocking boundary the wait-policy heal needs",
        "elastic (degrade/wait) x pipeline_depth > 0: the in-flight window "
        "drains before any membership remap touches the pool",
    ),
    "unsupported": {
        "elastic x non-resident backend": (
            "only the resident pool has slots to lose and a membership "
            "layer to heal them; on_slot_loss != 'fail_stop' requires "
            "backend='resident'"
        ),
    },
}


def check_composition(config: Any) -> None:
    """Validate a config's mode composition against :data:`CAPABILITY_MATRIX`.

    Raises ``ValueError`` naming the capability matrix for any combination
    listed under ``CAPABILITY_MATRIX["unsupported"]``; everything else is a
    supported composition and passes silently.
    """
    if config.on_slot_loss != "fail_stop" and config.backend != "resident":
        raise ValueError(
            "unsupported mode composition 'elastic x non-resident backend': "
            + CAPABILITY_MATRIX["unsupported"]["elastic x non-resident backend"]
            + " (see repro.core.engine.CAPABILITY_MATRIX)"
        )


@dataclass
class AsyncContext:
    """Mutable per-run state threaded through the async schedule's hooks.

    The engine owns the common fields (scheduler, stats, collector, the
    lookahead store, swap bookkeeping, the participation set); trainers may
    attach extra per-run state (FL-GAN keeps its round progress here) —
    the dataclass is intentionally not slotted.
    """

    #: The staleness gate deciding when the barrier opens.
    sched: BoundedStalenessScheduler
    #: Overlap/staleness accounting shared with the pipelined schedule.
    stats: PipelineStats
    #: The backend's completion-order collector for this run.
    collector: Any
    #: The engine driving this run (hooks may reach its helpers).
    engine: Optional["ExecutionEngine"] = None
    #: Pre-generated units waiting for dispatch: ``(unit, dispatch_mark)``.
    lookahead: List[Tuple[Any, int]] = field(default_factory=list)
    #: Worker keys selected for the current participation window, or
    #: ``None`` when every alive worker participates.
    participants: Optional[Set[int]] = None
    #: True while a due SWAP waits behind the drain barrier (MD-GAN).
    swap_pending: bool = False
    #: SWAP period in updates (0 disables), and the next due update.
    swap_period: int = 0
    next_swap: int = 0


class EngineHooks:
    """Default (inert) trainer hooks for :class:`ExecutionEngine`.

    Trainers inherit this and override the hooks their schedule needs; the
    defaults make every optional behaviour a no-op so a minimal trainer
    only implements its unit bodies.
    """

    #: Program name handed to ``backend.open_collector`` for async runs.
    _async_program: str = ""

    # -- synchronous schedule ----------------------------------------------------
    def _sync_schedule(self, engine: "ExecutionEngine") -> Callable[[int], None]:
        """Return the per-iteration body for the synchronous schedule.

        Called once before the iteration loop; implementations choose the
        depth-0 or windowed body and may set ``engine.stats`` to record an
        overlap summary.
        """
        raise NotImplementedError  # pragma: no cover - trainers override

    def _sync_should_continue(self, iteration: int) -> bool:
        """Pre-iteration continue check (e.g. the all-crashed early exit)."""
        return True

    # -- asynchronous schedule ---------------------------------------------------
    def _async_begin(self, ctx: AsyncContext) -> None:
        """Set up per-run async state and issue any initial dispatches."""

    def _async_active(self, ctx: AsyncContext) -> bool:
        """Whether the async loop should run another turn."""
        raise NotImplementedError  # pragma: no cover - trainers override

    def _async_dispatch(self, ctx: AsyncContext) -> None:
        """Refill idle workers / the lookahead store (start of each turn)."""

    def _async_collect(self, ctx: AsyncContext) -> None:
        """Block for one completion and buffer/merge/discard it."""
        raise NotImplementedError  # pragma: no cover - trainers override

    def _async_apply(self, ctx: AsyncContext) -> int:
        """Flush the buffer as ONE global update; return the update count."""
        raise NotImplementedError  # pragma: no cover - trainers override

    def _async_after_update(self, ctx: AsyncContext, update: int) -> None:
        """Post-flush bookkeeping: eval cadence, crash schedule, reselection."""

    def _async_barrier(self, ctx: AsyncContext) -> None:
        """Work that runs only behind a drained barrier (e.g. MD-GAN SWAP)."""

    def _async_generate_unit(self, ctx: AsyncContext) -> Any:
        """Produce one pre-generatable unit for the lookahead store."""
        raise NotImplementedError  # pragma: no cover - trainers override

    def _async_finish(self, ctx: AsyncContext) -> None:
        """Post-loop trainer bookkeeping (e.g. FL-GAN's final evaluation)."""


class ExecutionEngine:
    """Drives one training run for a trainer exposing the hook protocol.

    The engine owns only control flow — loop structure, barrier placement,
    the shared eval/cleanup/summary scaffolding.  All model math stays on
    the trainer.  One engine instance drives one ``train()`` call.
    """

    def __init__(self, trainer: Any) -> None:
        """Bind the engine to ``trainer`` (an :class:`EngineHooks` host)."""
        self.trainer = trainer
        #: Overlap stats for the run, or ``None`` when nothing overlaps.
        self.stats: Optional[PipelineStats] = None

    # -- entry point -------------------------------------------------------------
    def run(self) -> Any:
        """Run the configured schedule and return the trainer's history."""
        if self.trainer.config.aggregation == "async":
            return self._run_async()
        return self._run_sync()

    # -- shared scaffolding ------------------------------------------------------
    def _evaluate_if_due(self, iteration: int) -> None:
        """Record an evaluation at the shared sync-loop cadence."""
        trainer = self.trainer
        cfg = trainer.config
        if (
            trainer.evaluator is not None
            and cfg.eval_every
            and (iteration % cfg.eval_every == 0 or iteration == cfg.iterations)
        ):
            result = trainer.evaluator.evaluate(trainer.sample_images, iteration)
            trainer.history.record_evaluation(result)

    # -- the synchronous schedule (full-drain barrier, depth >= 0) ---------------
    def _run_sync(self) -> Any:
        """Iteration loop: barrier per iteration, lookahead inside the body."""
        trainer = self.trainer
        cfg = trainer.config
        step = trainer._sync_schedule(self)
        try:
            for iteration in range(1, cfg.iterations + 1):
                if not trainer._sync_should_continue(iteration):
                    break
                step(iteration)
                self._evaluate_if_due(iteration)
        except BaseException:
            trainer._cleanup_after_failure()
            raise
        else:
            # Mirror the final resident state into the trainer's worker
            # objects without reclaiming authority: the pool stays warm for
            # the next train() call on this trainer.
            trainer.sync_worker_state(reclaim=False)
        finally:
            # Recorded on every exit path (completion, early break,
            # exception) so early exits keep their overlap summary.
            if self.stats is not None:
                trainer.history.overlap = self.stats.as_overlap_dict()
        trainer._record_run_summaries()
        return trainer.history

    # -- the asynchronous schedule (staleness-gated barrier) ---------------------
    def _run_async(self) -> Any:
        """Event-driven loop: dispatch, collect, heal, flush when the gate opens."""
        trainer = self.trainer
        cfg = trainer.config
        sched = BoundedStalenessScheduler(cfg.max_staleness)
        stats = PipelineStats(depth=cfg.pipeline_depth)
        self.stats = stats
        collector = trainer.executor.open_collector(trainer._async_program)
        ctx = AsyncContext(sched=sched, stats=stats, collector=collector, engine=self)
        trainer._async_begin(ctx)
        try:
            while trainer._async_active(ctx):
                trainer._async_dispatch(ctx)
                stats.observe_in_flight(collector.outstanding)
                if collector.outstanding:
                    trainer._async_collect(ctx)
                if trainer._async_heal_due():
                    self._drain_and_heal(ctx)
                if sched.buffered and sched.gate_open:
                    update = trainer._async_apply(ctx)
                    trainer._admit_joiners_async(update)
                    trainer._async_after_update(ctx, update)
                trainer._async_barrier(ctx)
            # Straggler units past the end of training: the work is
            # discarded (never merged, never charged trainer-side).
            collector.drain()
            collector.close()
        except BaseException:
            trainer._cleanup_after_failure()
            raise
        else:
            trainer._sync_membership_events(sched.updates)
            trainer.sync_worker_state(reclaim=False)
        finally:
            trainer.history.overlap = stats.as_overlap_dict()
        trainer._async_finish(ctx)
        trainer._record_run_summaries()
        return trainer.history

    def _drain_and_heal(self, ctx: AsyncContext) -> None:
        """The wait-policy drain barrier: empty the in-flight set, then heal.

        Every outstanding unit is collected first — survivors buffer their
        contributions (or advance to their round boundary) and every queued
        ``LOST`` marker for the dead slot is consumed, so no stale ``LOST``
        can alias a post-heal re-dispatch of the same worker key.  Only
        against that drained collector does the membership heal (block for
        capacity, restore, resume) run.
        """
        trainer = self.trainer
        while ctx.collector.outstanding:
            trainer._async_collect(ctx)
        trainer._async_wait_heal(ctx)

    # -- the lookahead store (async x pipelined) ---------------------------------
    def refill_lookahead(self, ctx: AsyncContext) -> None:
        """Pre-generate units up to ``pipeline_depth`` while the gate is open.

        Each stored unit carries the update count it was generated against
        (its dispatch mark); generation overlaps the workers' in-flight
        compute, which is the pipelined wall-clock win carried over to the
        async schedule.
        """
        trainer = self.trainer
        cfg = trainer.config
        sched = ctx.sched
        while (
            ctx.stats.depth
            and len(ctx.lookahead) < ctx.stats.depth
            and sched.updates < cfg.iterations
        ):
            ctx.lookahead.append((trainer._async_generate_unit(ctx), sched.updates))
            ctx.stats.lookahead_generations += 1

    def take_lookahead(self, ctx: AsyncContext) -> Optional[Tuple[Any, int]]:
        """Pop the freshest usable pre-generated unit, or ``None``.

        A stored unit is usable only if dispatching it now cannot do worse
        than a fresh generation: its mark must still be inside the staleness
        bound (``updates - mark < max_staleness``), so the gate keeps the
        end-to-end bound exactly as for fresh dispatches.  Units that aged
        out are dropped — regenerating is cheaper than throttling the gate.
        """
        sched = ctx.sched
        while ctx.lookahead:
            unit, mark = ctx.lookahead.pop(0)
            if mark == sched.updates or sched.updates - mark < sched.max_staleness:
                return unit, mark
        return None

    # -- the dispatch refill (async) ---------------------------------------------
    def dispatch_idle(self, ctx: AsyncContext) -> None:
        """Dispatch one unit to every idle, alive, participating worker.

        Skipped entirely while a SWAP drains the barrier, and while a
        wait-policy heal is pending — lost workers must come back through
        the heal, not land on a survivor's slot.  A worker is idle when the
        scheduler neither tracks it in flight nor holds its buffered
        contribution (buffered workers wait for the flush — that is the
        gate's blocking-dispatch back-pressure).
        """
        trainer = self.trainer
        if ctx.swap_pending or trainer._async_heal_due():
            return
        tracked = ctx.sched.tracked_keys()
        for worker in trainer._alive_workers():
            if worker.index in tracked:
                continue
            if ctx.participants is not None and worker.index not in ctx.participants:
                continue
            trainer._dispatch_async_unit(worker, ctx)

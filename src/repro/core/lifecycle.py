"""Backend-ownership lifecycle shared by the distributed trainers.

Since the persistent-serving-layer change the execution backend is owned by
the *trainer*, not by an individual ``train()`` call: warm resident pools
survive across runs until the owner releases them.  This mixin centralises
that ownership — lazy construction with a garbage-collection finalizer,
explicit ``close()``, the context-manager form, and the best-effort cleanup
used on failure paths — so :class:`~repro.core.mdgan.MDGANTrainer` and
:class:`~repro.core.flgan.FLGANTrainer` cannot drift apart on lifecycle
semantics.

Subclasses provide ``self.config`` (a :class:`~repro.core.config.
TrainingConfig`) and ``sync_worker_state(workers=None, reclaim=True)``.
"""

from __future__ import annotations

import weakref
from typing import Optional

from ..runtime.backend import ExecutorBackend, close_quietly
from ..runtime.resident import ResidentBackend

__all__ = ["BackendOwner"]


class BackendOwner:
    """Mixin owning an :class:`~repro.runtime.backend.ExecutorBackend`.

    The backend is owner-scoped, not call-scoped: it persists across
    ``train()`` calls (so a warm resident pool serves consecutive runs
    without re-installing worker state) until :meth:`close` /
    :meth:`close_backend` or the context-manager exit.  A garbage-collection
    finalizer closes it quietly as a safety net when the trainer is dropped
    without an explicit close.
    """

    #: Lazily built backend (see :attr:`executor`).
    _backend: Optional[ExecutorBackend] = None
    #: GC/exit finalizer for :attr:`_backend`; detached on explicit close.
    _backend_finalizer: Optional[weakref.finalize] = None

    @property
    def executor(self) -> ExecutorBackend:
        """The configured execution backend, created on first use."""
        if self._backend is None:
            self._backend = self.config.build_backend()
            self._backend_finalizer = weakref.finalize(self, close_quietly, self._backend)
        return self._backend

    def close_backend(self) -> None:
        """Shut down the execution backend's pool (recreated lazily if needed)."""
        if self._backend_finalizer is not None:
            self._backend_finalizer.detach()
            self._backend_finalizer = None
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def close(self) -> None:
        """Reclaim resident worker state and shut the execution backend down.

        After ``close()`` the trainer's own worker objects hold the final
        state and the trainer remains usable — a later ``train()`` lazily
        builds a fresh backend and re-installs from those objects.
        """
        try:
            self.sync_worker_state()
        finally:
            self.close_backend()

    def _cleanup_after_failure(self) -> None:
        """Best-effort cleanup for a failed run (never masks the error).

        Reclaims whatever worker state the pool still holds and closes the
        backend, suppressing secondary failures: a poisoned pool's
        ``_check_usable`` (or any other cleanup error) must not shadow the
        original exception.
        """
        try:
            self.sync_worker_state()
        except Exception:
            pass
        try:
            self.close_backend()
        except Exception:
            pass

    def _active_resident(self) -> Optional[ResidentBackend]:
        """The already-built resident backend, or ``None`` (never builds one)."""
        backend = self._backend
        if backend is not None and getattr(backend, "supports_resident", False):
            return backend
        return None

    def __enter__(self) -> "BackendOwner":
        """Context-manager entry: the trainer scopes its backend's lifetime."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release the backend.

        On a clean exit this is :meth:`close` (reclaiming sync, so the
        trainer's objects hold the final state).  When an exception is
        propagating, cleanup is best-effort instead — a secondary failure
        from an already-broken pool must not replace the original exception
        as the one the caller sees.
        """
        if exc_type is not None:
            self._cleanup_after_failure()
        else:
            self.close()

"""Backend-ownership lifecycle shared by the distributed trainers *and* the
serving layer.

Since the persistent-serving-layer change the execution backend is owned by
the *owner object*, not by an individual ``train()``/``serve()`` call: warm
resident pools survive across runs until the owner releases them.  This
mixin centralises that ownership — lazy construction with a
garbage-collection finalizer, explicit ``close()``, the context-manager
form, adoption of an externally owned backend (:meth:`adopt_backend`, how a
:class:`~repro.serving.GeneratorService` shares a trainer's warm pool), and
the best-effort cleanup used on failure paths — so
:class:`~repro.core.mdgan.MDGANTrainer`,
:class:`~repro.core.flgan.FLGANTrainer` and the service cannot drift apart
on lifecycle semantics.

Subclasses provide ``self.config`` (a :class:`~repro.core.config.
TrainingConfig`).  Owners holding worker state *inside* the pool override
``sync_worker_state(workers=None, reclaim=True)`` to pull it back before the
pool goes away; the default is a no-op for owners (like the serving layer)
whose authoritative state lives on the caller side.
"""

from __future__ import annotations

import weakref
from typing import Optional, Sequence

from ..runtime.backend import ExecutorBackend
from ..runtime.resident import ResidentBackend

__all__ = ["BackendOwner", "close_quietly"]


def close_quietly(backend: ExecutorBackend) -> None:
    """Close a backend, suppressing any error.

    The canonical quiet-close used by :class:`BackendOwner` as its
    garbage-collection / interpreter-exit finalizer: backends outlive
    individual ``train()``/``serve()`` calls, so an owner dropped without an
    explicit ``close()`` still releases its pool processes and shared-memory
    segments — and a shutdown-time failure must never surface as a spurious
    error.  (``repro.runtime.backend.close_quietly`` is the deprecated alias.)
    """
    try:
        backend.close()
    except Exception:
        pass


class BackendOwner:
    """Mixin owning an :class:`~repro.runtime.backend.ExecutorBackend`.

    The backend is owner-scoped, not call-scoped: it persists across
    ``train()`` calls (so a warm resident pool serves consecutive runs
    without re-installing worker state) until :meth:`close` /
    :meth:`close_backend` or the context-manager exit.  A garbage-collection
    finalizer closes it quietly as a safety net when the trainer is dropped
    without an explicit close.
    """

    #: Lazily built backend (see :attr:`executor`).
    _backend: Optional[ExecutorBackend] = None
    #: GC/exit finalizer for :attr:`_backend`; detached on explicit close.
    _backend_finalizer: Optional[weakref.finalize] = None
    #: Does this owner own (and therefore close) :attr:`_backend`?  ``False``
    #: after :meth:`adopt_backend` with ``owned=False`` — close paths then
    #: only drop the reference.
    _owns_backend: bool = True

    @property
    def executor(self) -> ExecutorBackend:
        """The configured execution backend, created on first use."""
        if self._backend is None:
            self._backend = self.config.build_backend()
            self._owns_backend = True
            self._backend_finalizer = weakref.finalize(self, close_quietly, self._backend)
        return self._backend

    def adopt_backend(self, backend: ExecutorBackend, *, owned: bool = False) -> None:
        """Attach an existing backend instead of building one from config.

        With ``owned=False`` (the default) the caller keeps responsibility
        for the backend's lifetime — this owner's close paths drop the
        reference without closing the pool.  This is how a
        :class:`~repro.serving.GeneratorService` serves from a trainer's
        already-warm resident pool.  With ``owned=True`` ownership transfers
        here, finalizer included.
        """
        if backend is self._backend:
            return
        self.close_backend()
        self._backend = backend
        self._owns_backend = bool(owned)
        if owned:
            self._backend_finalizer = weakref.finalize(self, close_quietly, backend)

    def sync_worker_state(self, workers: Optional[Sequence[int]] = None,
                         reclaim: bool = True) -> None:
        """Pull authoritative worker state out of the pool before it closes.

        Default: no-op.  Trainers whose worker state is resident in the pool
        override this; owners like the serving layer (whose generator lives
        on the caller side and is merely mirrored into slots) keep the no-op.
        """

    def close_backend(self) -> None:
        """Release the execution backend (recreated lazily if needed).

        Closes the pool only when this owner owns it; an adopted, unowned
        backend is just detached and left running for its real owner.
        """
        if self._backend_finalizer is not None:
            self._backend_finalizer.detach()
            self._backend_finalizer = None
        if self._backend is not None:
            if self._owns_backend:
                self._backend.close()
            self._backend = None
            self._owns_backend = True

    def close(self) -> None:
        """Reclaim resident worker state and shut the execution backend down.

        After ``close()`` the trainer's own worker objects hold the final
        state and the trainer remains usable — a later ``train()`` lazily
        builds a fresh backend and re-installs from those objects.
        """
        try:
            self.sync_worker_state()
        finally:
            self.close_backend()

    def _cleanup_after_failure(self) -> None:
        """Best-effort cleanup for a failed run (never masks the error).

        Reclaims whatever worker state the pool still holds and closes the
        backend, suppressing secondary failures: a poisoned pool's
        ``_check_usable`` (or any other cleanup error) must not shadow the
        original exception.
        """
        try:
            self.sync_worker_state()
        except Exception:
            pass
        try:
            self.close_backend()
        except Exception:
            pass

    def _active_resident(self) -> Optional[ResidentBackend]:
        """The already-built resident backend, or ``None`` (never builds one)."""
        backend = self._backend
        if backend is not None and getattr(backend, "supports_resident", False):
            return backend
        return None

    def __enter__(self) -> "BackendOwner":
        """Context-manager entry: the trainer scopes its backend's lifetime."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: release the backend.

        On a clean exit this is :meth:`close` (reclaiming sync, so the
        trainer's objects hold the final state).  When an exception is
        propagating, cleanup is best-effort instead — a secondary failure
        from an already-broken pool must not replace the original exception
        as the one the caller sees.
        """
        if exc_type is not None:
            self._cleanup_after_failure()
        else:
            self.close()

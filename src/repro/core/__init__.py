"""``repro.core`` — the paper's training algorithms.

* :class:`StandaloneGANTrainer` — single-server baseline GAN.
* :class:`FLGANTrainer` — federated learning adapted to GANs (FL-GAN).
* :class:`MDGANTrainer` — the MD-GAN algorithm (single server-side generator,
  per-worker discriminators, error-feedback aggregation, discriminator
  swapping).
* :class:`AsyncMDGANTrainer`, :class:`SampledMDGANTrainer` — Section VII
  extensions.
"""

from .config import OptimizerConfig, TrainingConfig, resolve_num_batches
from .extensions import AsyncMDGANTrainer, SampledMDGANTrainer
from .flgan import FLGANTrainer, FLGANWorkerState
from .gan_ops import (
    GANObjective,
    GeneratedBatch,
    apply_feedback_to_generator,
    discriminator_update,
    generator_feedback,
    generator_update,
    sample_generator_images,
)
from .history import TrainingHistory
from .mdgan import MDGANTrainer, MDGANWorkerState
from .standalone import StandaloneGANTrainer

__all__ = [
    "OptimizerConfig",
    "TrainingConfig",
    "resolve_num_batches",
    "TrainingHistory",
    "GANObjective",
    "GeneratedBatch",
    "discriminator_update",
    "generator_feedback",
    "generator_update",
    "apply_feedback_to_generator",
    "sample_generator_images",
    "StandaloneGANTrainer",
    "FLGANTrainer",
    "FLGANWorkerState",
    "MDGANTrainer",
    "MDGANWorkerState",
    "AsyncMDGANTrainer",
    "SampledMDGANTrainer",
]

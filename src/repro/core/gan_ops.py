"""Shared GAN training steps used by every trainer.

The MD-GAN algorithm splits the classic generator update into two halves:
workers compute the gradient of the generator objective *with respect to the
generated images* (the error feedback ``F_n``), and the server chains that
feedback through the generator to obtain parameter gradients.  The helpers in
this module expose exactly those halves, so the standalone trainer, FL-GAN's
local updates and MD-GAN's split updates all share one implementation of the
loss mathematics (Section II of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..models.base import GANFactory, generator_input
from ..nn.losses import ACGANLoss, GANLoss
from ..nn.model import Sequential
from ..nn.optim import Optimizer

__all__ = [
    "GANObjective",
    "GeneratedBatch",
    "discriminator_update",
    "generator_feedback",
    "apply_feedback_to_generator",
    "generator_update",
    "sample_generator_images",
]


@dataclass
class GeneratedBatch:
    """A batch of generated images together with its generation inputs.

    ``noise``/``labels`` are kept so that the owner of the generator can
    replay the forward pass when turning error feedback into parameter
    gradients (MD-GAN server) or so that conditional losses know the intended
    classes (ACGAN).
    """

    images: np.ndarray
    noise: np.ndarray
    labels: Optional[np.ndarray]
    batch_index: int = 0


class GANObjective:
    """Adversarial objective dispatching between vanilla GAN and ACGAN.

    ``factory`` may be a full :class:`~repro.models.base.GANFactory` or its
    picklable :class:`~repro.models.base.FactorySpec` view — the objective
    (and the helpers below) only consult the dimensional facts, never the
    builders, so trainers hand the spec to worker tasks that must survive a
    pickle round-trip on the ``process`` execution backend.
    """

    def __init__(
        self,
        factory: GANFactory,
        non_saturating: bool = True,
        label_smoothing: float = 1.0,
    ) -> None:
        self.factory = factory
        self.conditional = factory.conditional
        if self.conditional:
            self._loss = ACGANLoss(
                num_classes=factory.num_classes,
                non_saturating=non_saturating,
                label_smoothing=label_smoothing,
            )
        else:
            self._loss = GANLoss(
                non_saturating=non_saturating, label_smoothing=label_smoothing
            )

    # -- discriminator side ------------------------------------------------------
    def discriminator_loss(
        self,
        real_outputs: np.ndarray,
        real_labels: Optional[np.ndarray],
        fake_outputs: np.ndarray,
        fake_labels: Optional[np.ndarray],
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Loss and gradients w.r.t. the discriminator's raw outputs."""
        if self.conditional:
            return self._loss.discriminator_loss(
                real_outputs, real_labels, fake_outputs, fake_labels
            )
        return self._loss.discriminator_loss(real_outputs, fake_outputs)

    def discriminator_real_term(
        self, real_outputs: np.ndarray, real_labels: Optional[np.ndarray]
    ) -> Tuple[float, np.ndarray]:
        """Real-data term of the discriminator loss (the paper's A-tilde).

        The discriminator loss is additive over the real and generated
        batches, so the two terms can be backpropagated independently —
        which is what the trainers do (one forward/backward per batch, so
        layer activation caches always match the gradient being pushed).
        """
        from ..nn.losses import bce_with_logits, softmax_cross_entropy

        smoothing = self._loss.label_smoothing
        if self.conditional:
            adv, cls = self._loss.split(real_outputs)
            loss_adv, grad_adv = bce_with_logits(adv, np.full_like(adv, smoothing))
            loss_cls, grad_cls = softmax_cross_entropy(cls, real_labels)
            grad = np.concatenate([grad_adv, self._loss.aux_weight * grad_cls], axis=1)
            return float(loss_adv + self._loss.aux_weight * loss_cls), grad
        loss, grad = bce_with_logits(
            real_outputs, np.full_like(real_outputs, smoothing)
        )
        return float(loss), grad

    def discriminator_fake_term(
        self, fake_outputs: np.ndarray, fake_labels: Optional[np.ndarray]
    ) -> Tuple[float, np.ndarray]:
        """Generated-data term of the discriminator loss (the paper's B-tilde)."""
        from ..nn.losses import bce_with_logits, softmax_cross_entropy

        if self.conditional:
            adv, cls = self._loss.split(fake_outputs)
            loss_adv, grad_adv = bce_with_logits(adv, np.zeros_like(adv))
            loss_cls, grad_cls = softmax_cross_entropy(cls, fake_labels)
            grad = np.concatenate([grad_adv, self._loss.aux_weight * grad_cls], axis=1)
            return float(loss_adv + self._loss.aux_weight * loss_cls), grad
        loss, grad = bce_with_logits(fake_outputs, np.zeros_like(fake_outputs))
        return float(loss), grad

    # -- generator side ------------------------------------------------------------
    def generator_loss(
        self, fake_outputs: np.ndarray, fake_labels: Optional[np.ndarray]
    ) -> Tuple[float, np.ndarray]:
        """Loss and gradient w.r.t. the discriminator outputs on fake data."""
        if self.conditional:
            return self._loss.generator_loss(fake_outputs, fake_labels)
        return self._loss.generator_loss(fake_outputs)


def sample_generator_images(
    generator: Sequential,
    factory: GANFactory,
    batch_size: int,
    rng: np.random.Generator,
    batch_index: int = 0,
    training: bool = True,
) -> GeneratedBatch:
    """Draw noise (and labels if conditional) and run the generator forward.

    Noise is drawn in float64 by the generator's RNG and cast once to the
    generator's policy dtype, so the stored batch replays without per-step
    upcasts.
    """
    noise = rng.normal(0.0, 1.0, size=(batch_size, factory.latent_dim))
    noise = noise.astype(generator.dtype, copy=False)
    labels = (
        rng.integers(0, factory.num_classes, size=batch_size)
        if factory.conditional
        else None
    )
    g_input = generator_input(noise, labels, factory.num_classes)
    images = generator.forward(g_input, training=training)
    return GeneratedBatch(images=images, noise=noise, labels=labels, batch_index=batch_index)


def discriminator_update(
    discriminator: Sequential,
    objective: GANObjective,
    optimizer: Optimizer,
    real_images: np.ndarray,
    real_labels: Optional[np.ndarray],
    fake_images: np.ndarray,
    fake_labels: Optional[np.ndarray],
) -> float:
    """One discriminator learning step (paper Section II-1).

    The discriminator loss is the sum of a real-batch term (A-tilde) and a
    generated-batch term (B-tilde), so each term is forwarded and
    backpropagated in its own pass — gradients accumulate across the two
    passes and a single optimizer step is applied.  Returns the total loss.
    """
    discriminator.zero_grad()
    real_outputs = discriminator.forward(real_images, training=True)
    loss_real, grad_real = objective.discriminator_real_term(real_outputs, real_labels)
    discriminator.backward(grad_real)

    fake_outputs = discriminator.forward(fake_images, training=True)
    loss_fake, grad_fake = objective.discriminator_fake_term(fake_outputs, fake_labels)
    discriminator.backward(grad_fake)

    optimizer.step(discriminator)
    return float(loss_real + loss_fake)


def generator_feedback(
    discriminator: Sequential,
    objective: GANObjective,
    generated: GeneratedBatch,
) -> Tuple[float, np.ndarray]:
    """Compute MD-GAN's error feedback ``F_n`` for a generated batch.

    Returns ``(generator_loss, dJ_gen/d_images)`` where the gradient has the
    same shape as ``generated.images``.  The discriminator's parameter
    gradients are cleared afterwards — the worker never updates its
    discriminator from the generator objective.
    """
    outputs = discriminator.forward(generated.images, training=True)
    loss, grad_outputs = objective.generator_loss(outputs, generated.labels)
    discriminator.zero_grad()
    feedback = discriminator.backward(grad_outputs)
    # Discard the parameter gradients produced as a by-product; only the
    # input gradient (the feedback) is used.
    discriminator.zero_grad()
    return float(loss), feedback


def apply_feedback_to_generator(
    generator: Sequential,
    factory: GANFactory,
    batches: Sequence[GeneratedBatch],
    feedbacks: Sequence[np.ndarray],
    weights: Optional[Sequence[float]] = None,
) -> None:
    """Turn error feedbacks into generator parameter gradients (server side).

    For every generated batch that received feedback, the generator forward
    pass is replayed on the stored noise and the (weighted) feedback is
    backpropagated; gradients accumulate across batches.  Weights default to
    ``1 / len(feedbacks)``, matching the paper's averaging of worker
    feedbacks (Section IV-B2).

    The caller is responsible for calling ``generator.zero_grad()`` before
    and for applying the optimizer step afterwards.
    """
    if len(batches) != len(feedbacks):
        raise ValueError(
            f"Got {len(batches)} batches but {len(feedbacks)} feedbacks"
        )
    if not batches:
        return
    if weights is None:
        weights = [1.0 / len(feedbacks)] * len(feedbacks)
    if len(weights) != len(feedbacks):
        raise ValueError("weights must match feedbacks in length")
    for batch, feedback, weight in zip(batches, feedbacks, weights):
        if feedback.shape != batch.images.shape:
            raise ValueError(
                f"Feedback shape {feedback.shape} does not match generated "
                f"batch shape {batch.images.shape}"
            )
        g_input = generator_input(batch.noise, batch.labels, factory.num_classes)
        generator.forward(g_input, training=True)
        generator.backward(np.asarray(feedback, dtype=generator.dtype) * weight)


def generator_update(
    generator: Sequential,
    discriminator: Sequential,
    factory: GANFactory,
    objective: GANObjective,
    optimizer: Optimizer,
    batch_size: int,
    rng: np.random.Generator,
) -> float:
    """Classic single-machine generator update (used by standalone / FL-GAN).

    Implemented with the same two-half mechanics as MD-GAN — compute the
    image-space gradient through the discriminator, then chain it through
    the generator — which keeps the mathematics identical across all three
    algorithms.
    """
    generated = sample_generator_images(generator, factory, batch_size, rng)
    loss, feedback = generator_feedback(discriminator, objective, generated)
    generator.zero_grad()
    apply_feedback_to_generator(generator, factory, [generated], [feedback])
    optimizer.step(generator)
    return float(loss)

"""Elastic-membership trainer mixin: evict, wait, revive, rebalance.

The backend half of elastic membership lives in
:mod:`repro.runtime.membership` / :mod:`repro.runtime.resident`: dead slots
are quarantined instead of poisoning the pool, and the worker keys whose
resident state died with a slot are queued in ``membership.pending_loss``.
This module is the *trainer* half, shared by
:class:`~repro.core.mdgan.MDGANTrainer` and
:class:`~repro.core.flgan.FLGANTrainer`:

* consume pending losses at the iteration/round boundary and apply the
  configured policy — ``degrade`` evicts the lost workers like crashes (and
  redistributes their shards across survivors), ``wait`` blocks for
  replacement capacity and reassigns the lost workers onto it;
* admit late joiners between iterations, reviving evicted workers from
  their last merged mirror;
* keep per-boundary mirrors so a reassigned/revived worker restarts from
  the last *merged* state (un-merged contributions are discarded, exactly
  like a crash);
* surface every transition as ``membership_*`` / ``slot_loss`` events in
  ``TrainingHistory`` plus the counter summary next to the meters.

Under the default fail-stop policy :meth:`_membership` returns ``None`` and
every hook below is a no-op-before-first-branch, so fail-stop runs stay
bitwise identical to the pre-membership trainers.

Host-class contract: ``self.workers`` (objects with ``index`` / ``dataset``
/ ``sampler``), ``self.cluster.workers[i]`` nodes (``alive`` / ``crash()``
/ ``rejoin()``), ``self.config``, ``self.history``,
``self._active_resident()``, ``self.sync_worker_state(workers, reclaim)``
and a ``_restore_worker_from_mirror(worker, mirror)`` hook.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..datasets.base import ImageDataset
from ..runtime.membership import PoolMembership, SlotLossError
from ..runtime.transport import TransportError

__all__ = ["ElasticMembershipMixin"]


class ElasticMembershipMixin:
    """Trainer-side elastic membership (see module docstring)."""

    #: Construction-time shard per worker index, captured lazily at the
    #: first elastic boundary; rebalance targets are always recomputed from
    #: these, so repeated rebalances are idempotent.
    _founding_shards: Optional[Dict[int, ImageDataset]] = None
    #: Extra founding shards currently folded into each worker's dataset
    #: (worker index -> tuple of evicted worker indices, sorted).
    _shard_extras: Optional[Dict[int, Tuple[int, ...]]] = None
    #: Membership events already mirrored into the history.
    _membership_events_seen: int = 0
    #: Set when evictions/revivals changed the live fleet; cleared by the
    #: next boundary rebalance.
    _rebalance_pending: bool = False
    #: Worker keys lost under the ``wait`` policy in an async run, awaiting
    #: the engine's drain-barrier heal (``None`` until first used).
    _async_heal_keys: Optional[set] = None

    # -- plumbing ----------------------------------------------------------------
    def _membership(self) -> Optional[PoolMembership]:
        """The pool's live membership state, or ``None`` (fail-stop / no pool)."""
        resident = self._active_resident()
        if resident is None and self.config.membership_policy() is not None:
            # The backend is built lazily; force it so an elastic config is
            # elastic from iteration 1, not from the first dispatch.
            if getattr(self.executor, "supports_resident", False):
                resident = self._active_resident()
        if resident is None:
            return None
        return resident.membership

    def _alive_worker_states(self) -> List[Any]:
        """Worker-state objects whose emulated node is alive."""
        return [w for w in self.workers if self.cluster.workers[w.index].alive]

    def _sync_membership_events(self, iteration: int) -> None:
        """Mirror newly recorded backend membership events into the history."""
        membership = self._membership()
        if membership is None:
            return
        events = membership.events
        for event in events[self._membership_events_seen :]:
            kind = event.kind if event.kind == "slot_loss" else f"membership_{event.kind}"
            details: Dict[str, Any] = {}
            if event.slot is not None:
                details["slot"] = event.slot
            if event.worker is not None:
                details["worker"] = event.worker
            if event.detail:
                details["detail"] = event.detail
            self.history.record_event(iteration, kind, **details)
        self._membership_events_seen = len(events)
        resident = self._active_resident()
        if resident is not None:
            self.history.membership = resident.membership_counters()

    def _restore_worker_from_mirror(self, worker: Any, mirror: Dict[str, Any]) -> None:
        """Reset a worker's trainer-side objects from a boundary mirror.

        Per-trainer hook (the mirror payload is program-specific); the
        default raises so a trainer cannot silently skip restoration.
        """
        raise NotImplementedError  # pragma: no cover - trainers override

    # -- the per-iteration wrapper -----------------------------------------------
    def _elastic_iteration(self, iteration: int, body) -> None:
        """Run one synchronous iteration with membership recovery around it.

        Fail-stop (or non-resident) runs call ``body`` directly and return —
        zero elastic code on that path.  Elastic runs additionally absorb a
        mid-iteration :class:`SlotLossError` (the un-merged remainder of the
        iteration is discarded, like a crash) and then run the boundary
        pipeline: apply the loss policy, admit joiners / revive, rebalance
        shards, refresh mirrors.

        Pipelined bodies compose through two hooks: a loss (raised or
        pending) first drains the in-flight window via
        :meth:`_drain_pipeline_for_membership`, and the boundary pipeline
        only runs when :meth:`_pipeline_idle` reports a quiescent pool —
        its mirror/rebalance operations require no in-flight work.
        """
        if self._membership() is None:
            body(iteration)
            return
        try:
            body(iteration)
        except SlotLossError as exc:
            self.history.record_event(
                iteration,
                "membership_iteration_loss",
                slot=exc.slot_index,
                detail=str(exc),
            )
            self._drain_pipeline_for_membership()
        if self._membership().pending_loss and not self._pipeline_idle():
            self._drain_pipeline_for_membership()
        if self._pipeline_idle():
            self._membership_boundary(iteration)

    def _membership_boundary(self, iteration: int) -> None:
        """The aggregation-boundary membership pipeline (sync loops only)."""
        membership = self._membership()
        if membership is None:
            return
        lost = membership.take_pending_loss()
        if lost:
            self._apply_loss_policy(iteration, lost)
        joined = self._admit_joiners(iteration)
        if joined and membership.evicted:
            self._revive_evicted(iteration, joined[-1])
        if self._rebalance_pending:
            self._rebalance_shards(iteration)
        self._membership_snapshot()
        self._sync_membership_events(iteration)
        self._check_min_workers(membership)

    # -- pipeline composition hooks ------------------------------------------------
    def _pipeline_idle(self) -> bool:
        """Whether no pipelined work is in flight (boundary ops need this)."""
        return True

    def _drain_pipeline_for_membership(self) -> None:
        """Flush/discard the in-flight lookahead window before a remap.

        Default is a no-op (depth-0 bodies are always drained at the
        boundary); pipelined trainers override it to merge or discard their
        window so the membership pipeline meets a quiescent pool.
        """

    # -- loss policies -----------------------------------------------------------
    def _apply_loss_policy(self, iteration: int, lost_keys: List[Any]) -> None:
        """Dispatch one batch of lost workers to the configured policy."""
        membership = self._membership()
        if membership.policy.on_slot_loss == "wait":
            self._wait_for_replacement(iteration, lost_keys)
        else:  # degrade
            for key in lost_keys:
                self._evict_worker(iteration, key, detail="slot loss")

    def _evict_worker(self, iteration: int, key: Any, detail: str = "") -> None:
        """Evict one worker crash-style (revivable by a later joiner)."""
        membership = self._membership()
        node = self.cluster.workers[key]
        if node.alive:
            node.crash()
        membership.evicted.add(key)
        membership.record("evict", worker=key, detail=detail)
        self._rebalance_pending = True

    def _check_min_workers(self, membership: PoolMembership) -> None:
        """Escalate to a run failure when the fleet shrank below the floor."""
        floor = membership.policy.min_workers
        alive = len(self._alive_worker_states())
        if alive < floor:
            raise TransportError(
                f"elastic pool degraded to {alive} live worker(s), below "
                f"min_workers={floor}"
            )

    def _wait_for_replacement(self, iteration: int, lost_keys: List[Any]) -> None:
        """``wait`` policy: block for replacement capacity, then reassign.

        The lost workers stay alive; once a replacement/joiner slot exists
        their state is restored from the last merged mirror (or kept as the
        trainer's current objects when no boundary has passed yet — both are
        exactly the crash-discard semantics: everything since the last merge
        is gone) and the next dispatch reinstalls them on a surviving slot.
        """
        membership = self._membership()
        slot = self._block_for_replacement(lost_keys)
        for key in lost_keys:
            mirror = membership.mirrors.get(key)
            if mirror is not None:
                self._restore_worker_from_mirror(self.workers[key], mirror)
            membership.record("reassign", slot=slot, worker=key, detail="wait-policy heal")

    def _block_for_replacement(self, lost_keys: List[Any]) -> int:
        """Block until a joiner/replacement slot exists; return its index.

        Shared by the synchronous wait-policy boundary and the async
        drain-barrier heal; raises :class:`TransportError` when no capacity
        appears within ``rejoin_timeout``.
        """
        membership = self._membership()
        resident = self._active_resident()
        policy = membership.policy
        deadline = time.monotonic() + policy.rejoin_timeout
        slot = None
        while slot is None:
            slot = resident.admit_joiner(timeout=policy.rejoin_backoff)
            if slot is None:
                slot = resident.open_replacement_slot()
            if slot is None:
                if time.monotonic() >= deadline:
                    raise TransportError(
                        f"on_slot_loss='wait': no replacement capacity within "
                        f"rejoin_timeout={policy.rejoin_timeout}s for lost "
                        f"workers {lost_keys!r}"
                    )
                time.sleep(policy.rejoin_backoff)
        return slot

    # -- joins and revivals --------------------------------------------------------
    def _admit_joiners(self, iteration: int) -> List[int]:
        """Admit every late joiner currently waiting; return their slot indices."""
        resident = self._active_resident()
        joined: List[int] = []
        while True:
            slot = resident.admit_joiner(timeout=0.0)
            if slot is None:
                return joined
            joined.append(slot)

    def _revive_evicted(self, iteration: int, slot_index: int) -> None:
        """Bring evicted workers back after a join, from their last mirror."""
        membership = self._membership()
        for key in sorted(membership.evicted, key=repr):
            worker = self.workers[key]
            self.cluster.workers[key].rejoin()
            mirror = membership.mirrors.get(key)
            if mirror is not None:
                self._restore_worker_from_mirror(worker, mirror)
            membership.evicted.discard(key)
            membership.record("revive", slot=slot_index, worker=key)
        self._rebalance_pending = True

    # -- shard rebalancing ---------------------------------------------------------
    def _founding(self) -> Dict[int, ImageDataset]:
        """Construction-time shards, captured on first elastic use."""
        if self._founding_shards is None:
            self._founding_shards = {w.index: w.dataset for w in self.workers}
            self._shard_extras = {w.index: () for w in self.workers}
        return self._founding_shards

    def _rebalance_shards(self, iteration: int) -> None:
        """Redistribute evicted workers' founding shards across survivors.

        Targets are recomputed from the founding shards and the *current*
        evicted set (idempotent): evicted shard ``d`` goes whole to the
        survivor at position ``pos(d) mod len(survivors)`` in index order.
        Workers whose target changed are reclaimed from the pool, handed the
        concatenated dataset via ``replace_dataset`` (live FedAvg weights
        follow ``len(worker.sampler)`` automatically), and reinstalled on
        their next dispatch.
        """
        membership = self._membership()
        founding = self._founding()
        alive = sorted(w.index for w in self._alive_worker_states())
        if not alive:
            self._rebalance_pending = False
            return
        dead = sorted(membership.evicted, key=repr)
        targets: Dict[int, List[int]] = {index: [] for index in alive}
        for position, evicted_key in enumerate(dead):
            targets[alive[position % len(alive)]].append(evicted_key)
        moved = 0
        for worker in self.workers:
            index = worker.index
            if index not in targets:
                continue
            extras = tuple(targets[index])
            if self._shard_extras.get(index, ()) == extras:
                continue
            base = founding[index]
            if extras:
                images = np.concatenate(
                    [base.images] + [founding[d].images for d in extras]
                )
                labels = np.concatenate(
                    [base.labels] + [founding[d].labels for d in extras]
                )
                dataset = ImageDataset(
                    images=images,
                    labels=labels,
                    spec=base.spec,
                    name=f"{base.name}+{len(extras)}shard",
                    dtype=base.dtype,
                )
            else:
                dataset = base
            # Reclaim first: the pool copy (if any) is dropped and the epoch
            # bumped, so the mutated sampler/dataset reinstall cleanly.
            self.sync_worker_state([worker])
            worker.dataset = dataset
            worker.sampler.replace_dataset(dataset)
            self._shard_extras[index] = extras
            moved += 1
        if moved:
            membership.record("rebalance", detail=f"{moved} worker shard(s) changed")
        self._rebalance_pending = False

    # -- boundary mirrors ------------------------------------------------------------
    def _membership_snapshot(self) -> None:
        """Refresh the per-worker boundary mirrors (the revival/reassign source)."""
        membership = self._membership()
        resident = self._active_resident()
        keys = [
            w.index for w in self._alive_worker_states() if resident.installed(w.index)
        ]
        if not keys:
            return
        membership.mirrors.update(resident.pull_mirror(keys))

    # -- async-loop hooks --------------------------------------------------------------
    def _handle_async_losses(self, update: int, sched) -> None:
        """Async loops: consume pending slot losses under the configured policy.

        ``degrade`` evicts the lost workers like crashes (their in-flight
        units are already gone).  ``wait`` instead queues them for the
        engine's drain-barrier heal: the scheduler stops tracking them, the
        workers stay alive, and :meth:`_async_wait_heal` restores and
        resumes them once the collector has drained — the mid-loop path
        here must not block or touch the pool, because the collector still
        owns the channel streams.
        """
        membership = self._membership()
        if membership is None:
            return
        lost = membership.take_pending_loss()
        if not lost:
            return
        if membership.policy.on_slot_loss == "wait":
            if self._async_heal_keys is None:
                self._async_heal_keys = set()
            for key in lost:
                sched.discard(key)
                self._async_heal_keys.add(key)
            self._sync_membership_events(update)
            return
        for key in lost:
            sched.discard(key)
            self._evict_worker(update, key, detail="slot loss (async)")
        self._sync_membership_events(update)
        self._check_min_workers(membership)

    def _async_heal_due(self) -> bool:
        """Whether wait-policy losses are queued for the drain-barrier heal."""
        return bool(self._async_heal_keys)

    def _async_wait_heal(self, ctx) -> None:
        """Heal queued wait-policy losses against a drained collector.

        Called by the engine once ``collector.outstanding == 0``: block for
        replacement capacity, restore the lost workers from their last
        merged mirror (async runs keep no mid-run mirrors, so this usually
        keeps the trainer's current objects — the crash-discard semantics),
        record the reassignments, and hand the keys to the trainer's
        :meth:`_async_resume_healed` to resume dispatch.  Healed workers
        re-enter with a fresh dispatch mark, so
        ``max_worker_staleness() <= max_staleness`` stays pinned.
        """
        lost = sorted(self._async_heal_keys, key=repr)
        self._async_heal_keys = set()
        membership = self._membership()
        update = ctx.sched.updates
        slot = self._block_for_replacement(lost)
        for key in lost:
            mirror = membership.mirrors.get(key)
            if mirror is not None:
                self._restore_worker_from_mirror(self.workers[key], mirror)
            membership.record("reassign", slot=slot, worker=key, detail="wait-policy heal")
        self._sync_membership_events(update)
        self._async_resume_healed(lost, ctx)

    def _async_resume_healed(self, lost_keys: List[Any], ctx) -> None:
        """Resume healed workers; default relies on the engine's idle refill."""

    def _admit_joiners_async(self, update: int) -> None:
        """Async loops: accept waiting joiners as extra capacity (no revival)."""
        membership = self._membership()
        if membership is None:
            return
        if self._admit_joiners(update):
            self._sync_membership_events(update)

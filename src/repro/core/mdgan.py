"""MD-GAN — multi-discriminator GAN over distributed datasets (paper Section IV).

The algorithm keeps a *single* generator on the central server and one
discriminator per worker; workers never see each other's data.  One global
iteration implements the four steps of Algorithm 1:

1. the server generates ``k`` batches (``k <= N``) and sends two of them to
   every participating worker (``X_n^{(d)}`` for discriminator training,
   ``X_n^{(g)}`` for the generator's error feedback);
2. every worker performs ``L`` discriminator learning steps against a real
   batch drawn from its local shard;
3. every worker computes the error feedback
   ``F_n = dB~(X_n^{(g)}) / dx`` — the gradient of the generator objective
   with respect to the generated images — and ships it to the server;
4. the server chains all feedbacks through the generator (replaying the
   forward pass on the stored noise), averages them and applies one Adam
   step.

Every ``E`` local epochs the workers swap their discriminator parameters in
a gossip fashion (the ``SWAP`` procedure), which combats the overfitting of a
discriminator to its local shard.

The implementation routes every communication through the emulated network
so byte-level traffic is measured, and supports the paper's fail-stop crash
experiments plus two extensions discussed in Section VII: per-feedback
(asynchronous-style) generator updates and partial worker participation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import ImageDataset
from ..datasets.sampler import EpochSampler
from ..metrics.evaluator import GeneratorEvaluator
from ..models.base import GANFactory, generator_input
from ..nn.model import Sequential
from ..runtime.backend import PendingResult
from ..runtime.pipeline import (
    BatchAheadQueue,
    GeneratorHandle,
    PendingGeneration,
    PipelineStats,
    fan_out_generation,
    start_resident_generation,
)
from .elastic import ElasticMembershipMixin
from .engine import AsyncContext, EngineHooks, ExecutionEngine
from .lifecycle import BackendOwner
from ..runtime.membership import LOST, SlotLossError
from ..runtime.tasks import (
    MDGANResidentState,
    MDGANStepInput,
    MDGANWorkerResult,
    MDGANWorkerTask,
    run_mdgan_worker_task,
)
from ..simulation.cluster import SERVER_NAME, Cluster
from ..simulation.failures import CrashSchedule
from ..simulation.messages import Message, MessageKind
from ..simulation.network import LinkModel
from .async_aggregation import BoundedStalenessScheduler, staleness_weights
from .config import TrainingConfig, resolve_num_batches
from .gan_ops import (
    GANObjective,
    GeneratedBatch,
    apply_feedback_to_generator,
    sample_generator_images,
)
from .history import TrainingHistory

__all__ = ["MDGANWorkerState", "MDGANTrainer"]


@dataclass
class MDGANWorkerState:
    """Per-worker state: a discriminator, its optimizer and the local shard."""

    index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    dataset: ImageDataset
    rng: np.random.Generator


class MDGANTrainer(ElasticMembershipMixin, EngineHooks, BackendOwner):
    """MD-GAN trainer: one server-side generator versus ``N`` worker discriminators.

    The trainer owns its execution backend (see
    :class:`~repro.core.lifecycle.BackendOwner`): warm resident pools
    survive across ``train()`` calls until :meth:`close` / the
    context-manager exit.
    """

    def __init__(
        self,
        factory: GANFactory,
        shards: Sequence[ImageDataset],
        config: TrainingConfig,
        evaluator: Optional[GeneratorEvaluator] = None,
        link_model: Optional[LinkModel] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        swap_enabled: bool = True,
        per_feedback_updates: bool = False,
    ) -> None:
        if not shards:
            raise ValueError("MD-GAN needs at least one worker shard")
        if per_feedback_updates and config.aggregation == "async":
            raise ValueError(
                "per_feedback_updates (the Section VII per-feedback variant) "
                "and aggregation='async' are distinct server disciplines; "
                "enable at most one"
            )
        # Convert shards once so an explicit precision opt-in reaches the data.
        shards = [shard.astype(config.dtype) for shard in shards]
        self.factory = factory
        self.config = config
        self.evaluator = evaluator
        self.swap_enabled = swap_enabled
        self.per_feedback_updates = per_feedback_updates
        self.cluster = Cluster(
            num_workers=len(shards),
            link_model=link_model,
            crash_schedule=crash_schedule,
        )

        self._rng = np.random.default_rng(config.seed)
        # Backend ownership state lives on BackendOwner (lazy build, warm
        # across train() calls, released by close()/context-manager exit).
        # Built on the factory's picklable spec so worker tasks (which carry
        # the objective) survive the process backend's pickle round-trip.
        self._objective = GANObjective(
            factory.spec(),
            non_saturating=config.non_saturating,
            label_smoothing=config.label_smoothing,
        )

        # Server-side generator (the only generator in the system).
        self._dtype = config.dtype
        self.generator: Sequential = factory.make_generator(self._rng, dtype=self._dtype)
        self._gen_opt = config.generator_opt.build()
        #: Number of iterations whose feedback has been applied to the
        #: generator; the pipelined mode derives batch staleness from it.
        self._gen_update_count = 0
        #: Versioned identity of the server generator on resident pool slots:
        #: bumped on every parameter update, so repeat generation dispatches
        #: against an unchanged generator ship zero parameter bytes.
        self._generator_handle = GeneratorHandle(version=0)

        # Worker-side discriminators.
        self.workers: List[MDGANWorkerState] = []
        for index, shard in enumerate(shards):
            worker_rng = np.random.default_rng(config.seed + 1000 + index)
            self.workers.append(
                MDGANWorkerState(
                    index=index,
                    discriminator=factory.make_discriminator(
                        worker_rng, dtype=self._dtype
                    ),
                    disc_opt=config.discriminator_opt.build(),
                    sampler=EpochSampler(shard, config.batch_size, worker_rng),
                    dataset=shard,
                    rng=worker_rng,
                )
            )

        self.num_batches = resolve_num_batches(config, len(shards))
        self.history = TrainingHistory(
            algorithm="md-gan",
            config={
                "batch_size": config.batch_size,
                "iterations": config.iterations,
                "disc_steps": config.disc_steps,
                "num_workers": len(shards),
                "num_batches_k": self.num_batches,
                "epochs_per_swap": config.epochs_per_swap,
                "swap_enabled": swap_enabled,
                "per_feedback_updates": per_feedback_updates,
                "participation_fraction": config.participation_fraction,
                "architecture": factory.name,
                "pipeline_depth": config.pipeline_depth,
                "aggregation": config.aggregation,
                "max_staleness": config.max_staleness,
            },
        )

    # -- helpers -----------------------------------------------------------------
    @property
    def swap_period(self) -> int:
        """Iterations between swaps: ``m E / b`` (Algorithm 1, line 11)."""
        if math.isinf(self.config.epochs_per_swap) or not self.swap_enabled:
            return 0
        m = min(len(w.dataset) for w in self.workers)
        return max(1, int(round(m * self.config.epochs_per_swap / self.config.batch_size)))

    def _alive_workers(self) -> List[MDGANWorkerState]:
        return [
            w for w in self.workers if self.cluster.workers[w.index].alive
        ]

    def _participating_workers(self) -> List[MDGANWorkerState]:
        """Workers taking part in this iteration (Section VII-4 extension)."""
        alive = self._alive_workers()
        frac = self.config.participation_fraction
        if frac >= 1.0 or len(alive) <= 1:
            return alive
        count = max(1, int(round(frac * len(alive))))
        chosen = self._rng.choice(len(alive), size=count, replace=False)
        return [alive[i] for i in sorted(chosen)]

    def sample_images(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` images from the server generator (evaluation mode)."""
        noise = rng.normal(0.0, 1.0, size=(n, self.factory.latent_dim)).astype(
            self.generator.dtype, copy=False
        )
        labels = (
            rng.integers(0, self.factory.num_classes, size=n)
            if self.factory.conditional
            else None
        )
        g_input = generator_input(noise, labels, self.factory.num_classes)
        return self.generator.predict(g_input)

    # -- server side --------------------------------------------------------------
    def _charge_generation(self, k: int) -> None:
        """Record the server's cost model for generating ``k`` batches.

        Section IV-B3: generating a batch costs O(b |w|) ops and the stored
        batches occupy b*d floats each.  Shared by the serial and fanned-out
        generation paths so their ledgers can never drift apart.
        """
        for _ in range(k):
            self.cluster.server.compute.charge(
                "batch_generation", self.config.batch_size * self.generator.num_parameters
            )
        self.cluster.server.compute.observe_memory(
            k * self.config.batch_size * self.factory.object_size
        )

    def _generate_batches(self, k: int) -> List[GeneratedBatch]:
        """Step 1: the server generates ``k`` batches of size ``b``."""
        batches = []
        for j in range(k):
            batches.append(
                sample_generator_images(
                    self.generator,
                    self.factory,
                    self.config.batch_size,
                    self._rng,
                    batch_index=j,
                )
            )
        self._charge_generation(k)
        return batches

    def _distribute_batches(
        self, iteration: int, batches: List[GeneratedBatch], participants: List[MDGANWorkerState]
    ) -> Dict[int, Dict[str, int]]:
        """Step 1 (cont.): send two batches to every participating worker.

        Uses the paper's round-robin assignment keyed on the *worker index*
        ``n`` — ``X_n^{(g)} = X^{(n mod k)}`` and ``X_n^{(d)} = X^{((n+1) mod
        k)}`` — not on enumeration order over the participant list, so each
        worker's assignment is stable under crashes and partial
        participation.  Returns the mapping ``worker index -> {"d":
        batch_index, "g": batch_index}``.
        """
        k = len(batches)
        assignment: Dict[int, Dict[str, int]] = {}
        for worker in participants:
            g_idx = worker.index % k
            d_idx = (worker.index + 1) % k
            assignment[worker.index] = {"g": g_idx, "d": d_idx}
            node = self.cluster.workers[worker.index]
            payload = {
                "X_d": batches[d_idx].images,
                "X_g": batches[g_idx].images,
            }
            metadata = {
                "labels_d": batches[d_idx].labels,
                "labels_g": batches[g_idx].labels,
                "batch_index_g": g_idx,
                "batch_index_d": d_idx,
            }
            self.cluster.server.send(
                node.name,
                MessageKind.GENERATED_BATCHES,
                payload,
                iteration,
                **metadata,
            )
        return assignment

    def _aggregate_feedback(
        self,
        iteration: int,
        batches: List[GeneratedBatch],
    ) -> int:
        """Step 4: collect feedbacks, chain them through the generator, update ``w``."""
        messages = self.cluster.server.receive(MessageKind.ERROR_FEEDBACK)
        if not messages:
            return 0
        self._gen_update_count += 1
        # The generator's parameters are about to change: invalidate the
        # per-slot param cache before the next generation dispatch.
        self._generator_handle.bump()
        self.cluster.server.compute.observe_memory(
            len(messages) * self.config.batch_size * self.factory.object_size
        )
        if self.per_feedback_updates:
            # Section VII-1 style: apply one generator update per feedback as
            # it arrives instead of averaging across workers.
            for message in messages:
                batch = batches[message.metadata["batch_index"]]
                self.generator.zero_grad()
                apply_feedback_to_generator(
                    self.generator,
                    self.factory,
                    [batch],
                    [message.payload],
                    weights=[1.0],
                )
                self._gen_opt.step(self.generator)
                self.cluster.server.compute.charge(
                    "generator_update",
                    self.config.batch_size * self.generator.num_parameters,
                )
            return len(messages)
        used_batches = [batches[m.metadata["batch_index"]] for m in messages]
        feedbacks = [m.payload for m in messages]
        self.generator.zero_grad()
        apply_feedback_to_generator(self.generator, self.factory, used_batches, feedbacks)
        self._gen_opt.step(self.generator)
        self.cluster.server.compute.charge(
            "generator_update",
            len(messages) * self.config.batch_size * self.generator.num_parameters,
        )
        return len(messages)

    # -- worker side ---------------------------------------------------------------
    #
    # Steps 2-3 run through the build -> compute -> merge protocol of
    # ``repro.runtime`` (merge in worker-index order, so any backend yields
    # bitwise-identical trajectories).  Resident backends install worker
    # state once and ship only per-iteration batches; reading or mutating
    # pooled state goes through the pull/push/sync helpers below.  Backend
    # ownership (executor property, close, context manager) comes from
    # BackendOwner.

    def _receive_generated(self, worker: MDGANWorkerState) -> Optional[Message]:
        """Drain the worker's generated-batch mailbox; latest message wins."""
        received = self.cluster.workers[worker.index].receive(
            MessageKind.GENERATED_BATCHES
        )
        return received[-1] if received else None

    def _build_worker_task(
        self, worker: MDGANWorkerState
    ) -> Optional[MDGANWorkerTask]:
        """Build phase (stateless backends): snapshot one worker's share."""
        message = self._receive_generated(worker)
        if message is None:
            return None
        return MDGANWorkerTask(
            worker_index=worker.index,
            discriminator=worker.discriminator,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
            latent_dim=self.factory.latent_dim,
            x_d=message.payload["X_d"],
            x_g=message.payload["X_g"],
            labels_d=message.metadata.get("labels_d"),
            labels_g=message.metadata.get("labels_g"),
            batch_index_g=message.metadata.get("batch_index_g", 0),
        )

    def _resident_state(self, worker: MDGANWorkerState) -> MDGANResidentState:
        """Build-once install payload for the resident backend."""
        return MDGANResidentState(
            worker_index=worker.index,
            discriminator=worker.discriminator,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
            latent_dim=self.factory.latent_dim,
        )

    @staticmethod
    def _resident_step_input(message: Message) -> MDGANStepInput:
        """Per-iteration payload for the resident backend: the two batches."""
        return MDGANStepInput(
            x_d=message.payload["X_d"],
            x_g=message.payload["X_g"],
            labels_d=message.metadata.get("labels_d"),
            labels_g=message.metadata.get("labels_g"),
            batch_index_g=message.metadata.get("batch_index_g", 0),
        )

    def _dispatch_worker_phase(
        self, participants: List[MDGANWorkerState]
    ) -> tuple[List[MDGANWorkerState], PendingResult]:
        """Dispatch the per-worker phase (Algorithm 1 steps 2-3) asynchronously.

        Drains each participant's mailbox, then hands the work to the
        backend without blocking (resident ``start_steps`` vs stateless
        ``submit_ordered``).  Returns ``(live_workers, handle)``;
        ``handle.result()`` yields the results in worker-index order.
        """
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            live, items = [], []
            for worker in participants:
                message = self._receive_generated(worker)
                if message is None:
                    continue
                live.append(worker)
                items.append(
                    (
                        worker.index,
                        lambda w=worker: self._resident_state(w),
                        self._resident_step_input(message),
                    )
                )
            return live, backend.start_steps("mdgan", items)
        pending = [
            (worker, self._build_worker_task(worker)) for worker in participants
        ]
        live_pairs = [(worker, task) for worker, task in pending if task is not None]
        handle = backend.submit_ordered(
            run_mdgan_worker_task, [task for _, task in live_pairs]
        )
        return [worker for worker, _ in live_pairs], handle

    def _merge_worker_phase(
        self,
        iteration: int,
        live_workers: List[MDGANWorkerState],
        handle: PendingResult,
    ) -> tuple[List[float], List[float]]:
        """Collect a dispatched worker phase and merge it in worker-index order."""
        gen_losses: List[float] = []
        disc_losses: List[float] = []
        for worker, result in zip(live_workers, handle.result()):
            if result is LOST:
                # The worker's slot died with this contribution in flight:
                # elastic membership discards it (crash semantics) and the
                # boundary pipeline decides the worker's fate.
                continue
            stats = self._merge_worker_result(iteration, worker, result)
            gen_losses.append(stats["gen_loss"])
            disc_losses.append(stats["disc_loss"])
        return gen_losses, disc_losses

    def sync_worker_state(
        self,
        workers: Optional[Sequence[MDGANWorkerState]] = None,
        reclaim: bool = True,
    ) -> None:
        """Pull resident worker state back into the trainer's own objects.

        No-op for stateless backends.  With ``reclaim`` (the default) the
        trainer becomes authoritative again (pool copies dropped, state
        epoch bumped), so callers may freely mutate worker state before
        training resumes.  With ``reclaim=False`` the trainer's objects
        merely *mirror* the pool's current state (final discriminator +
        optimizer, RNG/sampler cursors — the immutable shard never
        re-crosses the pipe) and the residents stay warm.
        """
        resident = self._active_resident()
        if resident is None:
            return
        targets = list(self.workers) if workers is None else list(workers)
        if reclaim:
            resident.pull_into(targets, ("discriminator", "disc_opt", "sampler", "rng"))
            return
        mirrors = resident.pull_mirror([worker.index for worker in targets])
        for worker in targets:
            mirror = mirrors.get(worker.index)
            if mirror is None:
                continue
            worker.discriminator = mirror["discriminator"]
            worker.disc_opt = mirror["disc_opt"]
            worker.rng.bit_generator.state = mirror["rng_state"]
            # Full sampler position (incl. mid-epoch shuffle order): the
            # mirrored sampler must be complete, so a close_backend()-then-
            # train() re-install resumes exactly where the pool left off.
            worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _restore_worker_from_mirror(
        self, worker: MDGANWorkerState, mirror: Dict[str, object]
    ) -> None:
        """Reset a worker to its last merged boundary mirror (elastic revival)."""
        worker.discriminator = mirror["discriminator"]
        worker.disc_opt = mirror["disc_opt"]
        worker.rng.bit_generator.state = mirror["rng_state"]
        worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _merge_worker_result(
        self,
        iteration: int,
        worker: MDGANWorkerState,
        result,
    ) -> Dict[str, float]:
        """Merge phase: adopt worker state/cursors, absorb charges, ship feedback.

        A full-snapshot :class:`MDGANWorkerResult` replaces the worker's
        objects; a resident :class:`MDGANStepResult` only folds the
        RNG/sampler cursors back — the state stayed in the pool.
        """
        if isinstance(result, MDGANWorkerResult):
            worker.discriminator = result.discriminator
            worker.disc_opt = result.disc_opt
            worker.sampler = result.sampler
            worker.rng = result.rng
        else:
            worker.rng.bit_generator.state = result.rng_state
            worker.sampler.samples_drawn = result.samples_drawn
            worker.sampler.epochs_completed = result.epochs_completed
        node = self.cluster.workers[worker.index]
        self.cluster.absorb_tape(node.name, result.tape)
        node.send(
            SERVER_NAME,
            MessageKind.ERROR_FEEDBACK,
            result.feedback,
            iteration,
            batch_index=result.batch_index_g,
        )
        return {"disc_loss": result.disc_loss, "gen_loss": result.gen_loss}

    def _swap_discriminators(self, iteration: int) -> None:
        """The SWAP procedure: gossip discriminator parameters between workers.

        The destination assignment is a random permutation of the alive
        workers (a self-mapped worker keeps its own parameters), preserving
        the one-discriminator-per-worker invariant.
        """
        alive = self._alive_workers()
        if len(alive) < 2:
            return
        # Resident workers keep their state in the pool: read the parameter
        # vectors out (pull), route them through the simulated network as
        # usual, and write the received vectors back in place (push) — the
        # optimizer/sampler/RNG state never crosses the IPC boundary.
        resident = self._active_resident()
        pulled: Dict[int, np.ndarray] = {}
        if resident is not None:
            keys = [w.index for w in alive if resident.installed(w.index)]
            if keys:
                pulled = resident.pull_params(keys)
        permutation = self._rng.permutation(len(alive))
        parameter_vectors = {}
        for src_pos, dst_pos in enumerate(permutation):
            if src_pos == dst_pos:
                continue
            src = alive[src_pos]
            dst = alive[dst_pos]
            src_node = self.cluster.workers[src.index]
            if src.index in pulled:
                params = pulled[src.index]
            else:
                params = src.discriminator.get_parameters()
            delivered = src_node.send(
                self.cluster.workers[dst.index].name,
                MessageKind.DISCRIMINATOR_SWAP,
                params,
                iteration,
            )
            if delivered:
                parameter_vectors[dst.index] = params
        push_map: Dict[int, np.ndarray] = {}
        for worker in alive:
            node = self.cluster.workers[worker.index]
            messages = node.receive(MessageKind.DISCRIMINATOR_SWAP)
            if messages:
                if resident is not None and resident.installed(worker.index):
                    push_map[worker.index] = messages[-1].payload
                else:
                    worker.discriminator.set_parameters(messages[-1].payload)
        if push_map:
            resident.push_params(push_map)
        if parameter_vectors:
            self.history.record_event(iteration, "swap", exchanged=len(parameter_vectors))

    # -- main loop -------------------------------------------------------------------
    def _begin_iteration(self, iteration: int) -> List[MDGANWorkerState]:
        """Apply scheduled crashes and select this iteration's participants.

        Crashed workers leave the pool permanently: their last resident state
        is reclaimed so the trainer's view of them stays exact.  Returns the
        participating workers (possibly empty).
        """
        crashed = self.cluster.apply_crashes(iteration)
        for name in crashed:
            self.history.record_event(iteration, "crash", worker=name)
        if crashed:
            names = set(crashed)
            self.sync_worker_state(
                [w for w in self.workers if self.cluster.workers[w.index].name in names]
            )
        return self._participating_workers()

    def _finish_iteration(
        self,
        iteration: int,
        batches: List[GeneratedBatch],
        gen_losses: List[float],
        disc_losses: List[float],
        staleness: Optional[int] = None,
    ) -> None:
        """Aggregate feedback, record losses (and staleness), swap if due."""
        self._aggregate_feedback(iteration, batches)
        if gen_losses:
            self.history.record_losses(
                iteration, float(np.mean(gen_losses)), float(np.mean(disc_losses))
            )
            if staleness is not None:
                self.history.record_staleness(iteration, staleness)
        period = self.swap_period
        if period and iteration % period == 0:
            self._swap_discriminators(iteration)

    def train_iteration(self, iteration: int) -> None:
        """Run one global MD-GAN iteration (Algorithm 1 body, synchronous).

        The per-worker phase fans out through the execution backend and
        merges in participant (= worker-index) order, so seeded runs are
        bitwise identical across serial/thread/process/resident.
        """
        participants = self._begin_iteration(iteration)
        if not participants:
            return
        k = min(self.num_batches, len(participants))
        batches = self._generate_batches(k)
        self._distribute_batches(iteration, batches, participants)
        live_workers, handle = self._dispatch_worker_phase(participants)
        gen_losses, disc_losses = self._merge_worker_phase(
            iteration, live_workers, handle
        )
        self._finish_iteration(iteration, batches, gen_losses, disc_losses)

    def _generate_batches_fanned(self, k: int) -> tuple[List[GeneratedBatch], bool]:
        """Generate ``k`` batches, fanned across backend slots when possible.

        Bitwise identical to :meth:`_generate_batches`.  Resident backends
        run the forwards on their pool slots, ``thread``/``process`` use the
        map-based fan-out, the serial loop is the fallback.  Returns
        ``(batches, fanned)``.
        """
        pending = start_resident_generation(
            self.executor,
            self.generator,
            self.factory,
            self.config.batch_size,
            k,
            self._rng,
            handle=self._generator_handle,
        )
        if pending is not None:
            batches = pending.collect()
            self._charge_generation(k)
            return batches, True
        batches = fan_out_generation(
            self.executor,
            self.generator,
            self.factory,
            self.config.batch_size,
            k,
            self._rng,
        )
        if batches is None:
            return self._generate_batches(k), False
        # Same cost model as the serial path: the work still happens on the
        # (simulated) server, wherever the host ran it.
        self._charge_generation(k)
        return batches, True

    def _train_iteration_pipelined(
        self, iteration: int, queue: BatchAheadQueue, stats: PipelineStats
    ) -> None:
        """One global iteration under the pipelined schedule (depth > 0).

        Identical to :meth:`train_iteration` except for *when* batches are
        generated: the iteration consumes the batch set pre-generated for
        it (recording the realised staleness) and fills the lookahead queue
        **while the workers compute** — resident backends run those
        forwards on their pool slots, others fan out or run inline.  On a
        queue miss the batches are generated on the spot.  All paths are
        bitwise identical.
        """
        cfg = self.config
        participants = self._begin_iteration(iteration)
        if not participants:
            return
        entry = queue.pop(iteration)
        if entry is None:
            k = min(self.num_batches, len(participants))
            batches, fanned = self._generate_batches_fanned(k)
            staleness = 0
            stats.immediate_generations += 1
            if fanned:
                stats.fanout_generations += 1
        else:
            batches, generated_at_update = entry
            staleness = self._gen_update_count - generated_at_update
        self._distribute_batches(iteration, batches, participants)
        live_workers, handle = self._dispatch_worker_phase(participants)
        # Overlap window: while the workers compute iteration t, generate
        # batch sets for t+1 .. t+depth.  Noise draws happen here, at
        # dispatch, in exact serial order; resident-side generations are
        # collected after the merge, which never touches the generator, so
        # the trajectory is bitwise identical to the inline schedule.
        lookahead: List[tuple] = []
        next_target = max(queue.last_target, iteration)
        while len(queue) + len(lookahead) < stats.depth and next_target < cfg.iterations:
            next_target += 1
            k_ahead = min(self.num_batches, max(1, len(self._alive_workers())))
            pending = start_resident_generation(
                self.executor,
                self.generator,
                self.factory,
                cfg.batch_size,
                k_ahead,
                self._rng,
                handle=self._generator_handle,
            )
            if pending is None:
                pending = self._generate_batches(k_ahead)
            lookahead.append((next_target, k_ahead, pending, self._gen_update_count))
            stats.lookahead_generations += 1
        stats.observe_in_flight(1)
        gen_losses, disc_losses = self._merge_worker_phase(
            iteration, live_workers, handle
        )
        for target, k_ahead, pending, at_update in lookahead:
            if isinstance(pending, PendingGeneration):
                batches_ahead = pending.collect()
                self._charge_generation(k_ahead)
                stats.resident_generations += 1
            else:
                batches_ahead = pending
            queue.put(target, batches_ahead, at_update)
        stats.record_staleness(staleness)
        self._finish_iteration(
            iteration, batches, gen_losses, disc_losses, staleness=staleness
        )

    # -- asynchronous aggregation (bounded staleness) ---------------------------------
    #
    # ``config.aggregation="async"`` replaces the phase sequence with the
    # engine's event-driven loop over the completion-order collector:
    # finished feedbacks are buffered and folded into whole-buffer,
    # staleness-weighted generator updates (see
    # :mod:`repro.core.async_aggregation`).  With ``pipeline_depth > 0`` the
    # lookahead store dispatches with backdated marks, so the bound holds
    # end to end.  Only the serial backend is bitwise deterministic.

    _async_program = "mdgan"

    def _async_worker_fn(self, worker: MDGANWorkerState):
        """The pure per-unit function dispatched for ``worker`` (stateless backends).

        A dedicated seam so benchmarks/tests can inject per-worker slowdowns
        (straggler experiments) without touching the scheduler.
        """
        return run_mdgan_worker_task

    def _async_participants(self) -> Optional[set]:
        """The current participation selection (worker keys), or ``None`` for all.

        Reselected after every applied update, mirroring the synchronous
        schedule's per-iteration draw; full participation never touches the
        RNG, keeping pure-async runs bitwise identical.
        """
        if self.config.participation_fraction >= 1.0:
            return None
        return {w.index for w in self._participating_workers()}

    def _async_begin(self, ctx: AsyncContext) -> None:
        """Arm SWAP/participation bookkeeping and apply the first crash window."""
        ctx.batch_store = {}
        period = self.swap_period
        ctx.swap_period = period
        ctx.next_swap = period if period else 0
        ctx.participants = self._async_participants()
        for name in self.cluster.apply_crashes(1):
            self.history.record_event(1, "crash", worker=name)

    def _async_active(self, ctx: AsyncContext) -> bool:
        """Run until ``config.iterations`` generator updates (or a dead fleet)."""
        sched = ctx.sched
        if sched.updates >= self.config.iterations:
            return False
        if (
            not self._alive_workers()
            and not ctx.collector.outstanding
            and not sched.buffered
        ):
            self.history.record_event(sched.updates + 1, "all_workers_crashed")
            return False
        return True

    def _async_dispatch(self, ctx: AsyncContext) -> None:
        """Refill idle participating workers, then top up the lookahead store.

        The lookahead refill runs even while a SWAP drains the barrier —
        SWAP never touches the generator, so pre-generated batch sets stay
        valid across it.
        """
        ctx.engine.dispatch_idle(ctx)
        ctx.engine.refill_lookahead(ctx)

    def _async_generate_unit(self, ctx: AsyncContext) -> List[GeneratedBatch]:
        """One pre-generated batch-set unit for the async lookahead store."""
        return self._generate_batches(min(self.num_batches, 2))

    def _dispatch_async_unit(self, worker: MDGANWorkerState, ctx: AsyncContext) -> None:
        """Dispatch one unit of work, from the lookahead store or generated fresh.

        The unit's dispatch mark is the update count its batches were
        generated against — that is what the eventual contribution's
        staleness is measured against.  ``k`` degenerates to at most two
        batches per unit (the worker only consumes ``X_d``/``X_g``).
        """
        sched = ctx.sched
        entry = ctx.engine.take_lookahead(ctx)
        if entry is None:
            batches = self._generate_batches(min(self.num_batches, 2))
            mark = sched.updates
            if ctx.stats.depth:
                ctx.stats.immediate_generations += 1
        else:
            batches, mark = entry
        g_batch, d_batch = batches[0], batches[-1]
        node = self.cluster.workers[worker.index]
        self.cluster.server.send(
            node.name,
            MessageKind.GENERATED_BATCHES,
            {"X_d": d_batch.images, "X_g": g_batch.images},
            sched.updates,
            labels_d=d_batch.labels,
            labels_g=g_batch.labels,
            batch_index_g=0,
            batch_index_d=len(batches) - 1,
        )
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            message = self._receive_generated(worker)
            if message is None:
                return
            ctx.collector.dispatch(
                worker.index,
                lambda w=worker: self._resident_state(w),
                self._resident_step_input(message),
            )
        else:
            task = self._build_worker_task(worker)
            if task is None:
                return
            ctx.collector.dispatch(worker.index, self._async_worker_fn(worker), task)
        ctx.batch_store[worker.index] = batches
        sched.note_dispatch(worker.index, mark=mark)

    def _async_collect(self, ctx: AsyncContext) -> None:
        """Wait for any worker's unit to finish and buffer its contribution.

        A worker that crashed while its unit was in flight is discarded —
        the fail-stop model loses in-flight work — and never re-dispatched.
        A worker deselected by partial participation while in flight keeps
        its merged state, but the contribution is discarded through the
        scheduler: the same accounting as the synchronous schedule, which
        never folds a non-participant's feedback into an update.
        """
        sched = ctx.sched
        key, result = ctx.collector.collect_any()
        if result is LOST:
            # The slot serving this worker died mid-unit: the contribution
            # is gone (crash semantics) and the membership layer has queued
            # the loss — apply the loss policy now so the dispatch loop
            # stops refilling it (degrade evicts; wait queues the heal).
            ctx.batch_store.pop(key, None)
            self._handle_async_losses(sched.updates, sched)
            return
        worker = self.workers[key]
        batches = ctx.batch_store.pop(key)
        if not self.cluster.workers[key].alive:
            sched.discard(key)
            return
        stats = self._merge_worker_result(sched.updates, worker, result)
        if ctx.participants is not None and key not in ctx.participants:
            sched.discard(key)
            self.history.record_event(
                sched.updates, "participation_discard", worker=key
            )
            return
        sched.note_completion(
            key,
            {"batch": batches[0], "feedback": result.feedback, "losses": stats},
        )

    def _apply_async_update(
        self, sched: BoundedStalenessScheduler, stats: PipelineStats
    ) -> None:
        """Flush the contribution buffer as ONE staleness-weighted generator update."""
        contributions = sched.take_buffered()
        # The feedback messages were routed (and metered) through the
        # simulated network at merge time; consume them here — the
        # contributions carry the authoritative (batch, feedback) pairs.
        self.cluster.server.receive(MessageKind.ERROR_FEEDBACK)
        stalenesses = [sched.staleness_of(c) for c in contributions]
        weights = staleness_weights(stalenesses)
        self._gen_update_count += 1
        self._generator_handle.bump()
        self.cluster.server.compute.observe_memory(
            len(contributions) * self.config.batch_size * self.factory.object_size
        )
        self.generator.zero_grad()
        apply_feedback_to_generator(
            self.generator,
            self.factory,
            [c.payload["batch"] for c in contributions],
            [c.payload["feedback"] for c in contributions],
            weights=weights,
        )
        self._gen_opt.step(self.generator)
        self.cluster.server.compute.charge(
            "generator_update",
            len(contributions) * self.config.batch_size * self.generator.num_parameters,
        )
        sched.note_applied()
        update = sched.updates
        self.history.record_losses(
            update,
            float(np.mean([c.payload["losses"]["gen_loss"] for c in contributions])),
            float(np.mean([c.payload["losses"]["disc_loss"] for c in contributions])),
        )
        self.history.record_staleness(update, max(stalenesses))
        stats.record_staleness(max(stalenesses))
        for contribution, staleness in zip(contributions, stalenesses):
            self.history.record_worker_staleness(contribution.key, staleness)

    def _async_apply(self, ctx: AsyncContext) -> int:
        """Flush the buffer (one generator update); return the update count."""
        self._apply_async_update(ctx.sched, ctx.stats)
        return ctx.sched.updates

    def _async_after_update(self, ctx: AsyncContext, update: int) -> None:
        """Reselect participants, arm due SWAPs, evaluate, apply crashes.

        Scheduled crashes apply at update boundaries (the async axis is
        updates, not lockstep iterations); crashed residents are not
        reclaimed mid-run — the final mirror refresh reconciles the
        trainer's objects.
        """
        cfg = self.config
        ctx.participants = self._async_participants()
        if ctx.swap_period and update >= ctx.next_swap:
            ctx.swap_pending = True
        if (
            self.evaluator is not None
            and cfg.eval_every
            and (update % cfg.eval_every == 0 or update == cfg.iterations)
        ):
            self.history.record_evaluation(
                self.evaluator.evaluate(self.sample_images, update)
            )
        if update < cfg.iterations:
            for name in self.cluster.apply_crashes(update + 1):
                self.history.record_event(update + 1, "crash", worker=name)

    def _async_barrier(self, ctx: AsyncContext) -> None:
        """Run a due SWAP once the barrier has fully drained.

        Due swaps stop re-dispatch (see the engine's idle refill), wait for
        the in-flight set and buffer to empty, gossip, then the fleet
        refills on the next turn.
        """
        sched = ctx.sched
        if ctx.swap_pending and not ctx.collector.outstanding and not sched.buffered:
            try:
                self._swap_discriminators(sched.updates)
            except SlotLossError:
                # A gossip partner's slot died mid-swap: the swap is
                # abandoned for this period (state already pushed to
                # survivors stands) and the loss policy runs.
                self._handle_async_losses(sched.updates, sched)
            ctx.next_swap = ctx.swap_period * (sched.updates // ctx.swap_period + 1)
            ctx.swap_pending = False

    # -- the engine-driven schedules ------------------------------------------------
    def train(self) -> TrainingHistory:
        """Train for ``config.iterations`` global updates and return the history.

        The schedule — synchronous, pipelined, async, elastic, or any
        composition the capability matrix supports — is driven by
        :class:`repro.core.engine.ExecutionEngine`; this trainer supplies
        the MD-GAN bodies through the engine's hook protocol.  On success
        the pool stays **warm** (a second ``train()`` ships no installs);
        on failure cleanup is best-effort and never masks the original
        exception.  :meth:`close` / context-manager exit releases the
        backend.
        """
        return ExecutionEngine(self).run()

    def _sync_schedule(self, engine: ExecutionEngine):
        """The depth-0 or pipelined per-iteration body (both elastic-wrapped)."""
        cfg = self.config
        if cfg.pipeline_depth > 0:
            queue = BatchAheadQueue()
            stats = PipelineStats(depth=cfg.pipeline_depth)
            engine.stats = stats
            self._pipeline_queue = queue

            def pipelined(iteration: int) -> None:
                self._train_iteration_pipelined(iteration, queue, stats)

            return lambda iteration: self._elastic_iteration(iteration, pipelined)
        self._pipeline_queue = None
        return lambda iteration: self._elastic_iteration(iteration, self.train_iteration)

    def _sync_should_continue(self, iteration: int) -> bool:
        """Stop (and record) once every worker has crashed."""
        if not self._alive_workers():
            self.history.record_event(iteration, "all_workers_crashed")
            return False
        return True

    def _drain_pipeline_for_membership(self) -> None:
        """Discard the lookahead queue and any in-flight pool frames.

        Pre-generated batch sets may assume the pre-loss fleet; dropping
        them is sound (the pipelined body regenerates on a queue miss), and
        the resident drain clears frames the quarantined slot will never
        answer, so the membership boundary meets a quiescent pool.
        """
        queue = getattr(self, "_pipeline_queue", None)
        if queue is not None:
            queue.clear()
        resident = self._active_resident()
        if resident is not None:
            resident.drain_inflight()

    def _record_run_summaries(self) -> None:
        """Fold the run's traffic/compute meters into the history (both loops)."""
        if not self.config.record_traffic:
            return
        meter = self.cluster.meter
        self.history.traffic = {
            "total_bytes": float(meter.total_bytes()),
            "server_ingress_bytes": float(meter.node_ingress(SERVER_NAME)),
            "server_egress_bytes": float(meter.node_egress(SERVER_NAME)),
            "swap_bytes": float(
                meter.total_bytes(MessageKind.DISCRIMINATOR_SWAP)
            ),
            "feedback_bytes": float(meter.total_bytes(MessageKind.ERROR_FEEDBACK)),
            "generated_batch_bytes": float(
                meter.total_bytes(MessageKind.GENERATED_BATCHES)
            ),
        }
        self.history.compute = {
            "server_flops": float(self.cluster.server.compute.flops),
            "mean_worker_flops": float(
                np.mean([self.cluster.workers[w.index].compute.flops for w in self.workers])
            ),
        }

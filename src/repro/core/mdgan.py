"""MD-GAN — multi-discriminator GAN over distributed datasets (paper Section IV).

The algorithm keeps a *single* generator on the central server and one
discriminator per worker; workers never see each other's data.  One global
iteration implements the four steps of Algorithm 1:

1. the server generates ``k`` batches (``k <= N``) and sends two of them to
   every participating worker (``X_n^{(d)}`` for discriminator training,
   ``X_n^{(g)}`` for the generator's error feedback);
2. every worker performs ``L`` discriminator learning steps against a real
   batch drawn from its local shard;
3. every worker computes the error feedback
   ``F_n = dB~(X_n^{(g)}) / dx`` — the gradient of the generator objective
   with respect to the generated images — and ships it to the server;
4. the server chains all feedbacks through the generator (replaying the
   forward pass on the stored noise), averages them and applies one Adam
   step.

Every ``E`` local epochs the workers swap their discriminator parameters in
a gossip fashion (the ``SWAP`` procedure), which combats the overfitting of a
discriminator to its local shard.

The implementation routes every communication through the emulated network
so byte-level traffic is measured, and supports the paper's fail-stop crash
experiments plus two extensions discussed in Section VII: per-feedback
(asynchronous-style) generator updates and partial worker participation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import ImageDataset
from ..datasets.sampler import EpochSampler
from ..metrics.evaluator import GeneratorEvaluator
from ..models.base import GANFactory, generator_input
from ..nn.model import Sequential
from ..runtime.backend import PendingResult
from ..runtime.pipeline import (
    BatchAheadQueue,
    GeneratorHandle,
    PendingGeneration,
    PipelineStats,
    fan_out_generation,
    start_resident_generation,
)
from .elastic import ElasticMembershipMixin
from .lifecycle import BackendOwner
from ..runtime.membership import LOST, SlotLossError
from ..runtime.tasks import (
    MDGANResidentState,
    MDGANStepInput,
    MDGANWorkerResult,
    MDGANWorkerTask,
    run_mdgan_worker_task,
)
from ..simulation.cluster import SERVER_NAME, Cluster
from ..simulation.failures import CrashSchedule
from ..simulation.messages import Message, MessageKind
from ..simulation.network import LinkModel
from .async_aggregation import BoundedStalenessScheduler, staleness_weights
from .config import TrainingConfig, resolve_num_batches
from .gan_ops import (
    GANObjective,
    GeneratedBatch,
    apply_feedback_to_generator,
    sample_generator_images,
)
from .history import TrainingHistory

__all__ = ["MDGANWorkerState", "MDGANTrainer"]


@dataclass
class MDGANWorkerState:
    """Per-worker state: a discriminator, its optimizer and the local shard."""

    index: int
    discriminator: Sequential
    disc_opt: object
    sampler: EpochSampler
    dataset: ImageDataset
    rng: np.random.Generator


class MDGANTrainer(ElasticMembershipMixin, BackendOwner):
    """MD-GAN trainer: one server-side generator versus ``N`` worker discriminators.

    The trainer owns its execution backend (see
    :class:`~repro.core.lifecycle.BackendOwner`): warm resident pools
    survive across ``train()`` calls until :meth:`close` / the
    context-manager exit.
    """

    def __init__(
        self,
        factory: GANFactory,
        shards: Sequence[ImageDataset],
        config: TrainingConfig,
        evaluator: Optional[GeneratorEvaluator] = None,
        link_model: Optional[LinkModel] = None,
        crash_schedule: Optional[CrashSchedule] = None,
        swap_enabled: bool = True,
        per_feedback_updates: bool = False,
    ) -> None:
        if not shards:
            raise ValueError("MD-GAN needs at least one worker shard")
        if per_feedback_updates and config.aggregation == "async":
            raise ValueError(
                "per_feedback_updates (the Section VII per-feedback variant) "
                "and aggregation='async' are distinct server disciplines; "
                "enable at most one"
            )
        # Convert shards once so an explicit precision opt-in reaches the data.
        shards = [shard.astype(config.dtype) for shard in shards]
        self.factory = factory
        self.config = config
        self.evaluator = evaluator
        self.swap_enabled = swap_enabled
        self.per_feedback_updates = per_feedback_updates
        self.cluster = Cluster(
            num_workers=len(shards),
            link_model=link_model,
            crash_schedule=crash_schedule,
        )

        self._rng = np.random.default_rng(config.seed)
        # Backend ownership state lives on BackendOwner (lazy build, warm
        # across train() calls, released by close()/context-manager exit).
        # Built on the factory's picklable spec so worker tasks (which carry
        # the objective) survive the process backend's pickle round-trip.
        self._objective = GANObjective(
            factory.spec(),
            non_saturating=config.non_saturating,
            label_smoothing=config.label_smoothing,
        )

        # Server-side generator (the only generator in the system).
        self._dtype = config.dtype
        self.generator: Sequential = factory.make_generator(self._rng, dtype=self._dtype)
        self._gen_opt = config.generator_opt.build()
        #: Number of iterations whose feedback has been applied to the
        #: generator; the pipelined mode derives batch staleness from it.
        self._gen_update_count = 0
        #: Versioned identity of the server generator on resident pool slots:
        #: bumped on every parameter update, so repeat generation dispatches
        #: against an unchanged generator ship zero parameter bytes.
        self._generator_handle = GeneratorHandle(version=0)

        # Worker-side discriminators.
        self.workers: List[MDGANWorkerState] = []
        for index, shard in enumerate(shards):
            worker_rng = np.random.default_rng(config.seed + 1000 + index)
            self.workers.append(
                MDGANWorkerState(
                    index=index,
                    discriminator=factory.make_discriminator(
                        worker_rng, dtype=self._dtype
                    ),
                    disc_opt=config.discriminator_opt.build(),
                    sampler=EpochSampler(shard, config.batch_size, worker_rng),
                    dataset=shard,
                    rng=worker_rng,
                )
            )

        self.num_batches = resolve_num_batches(config, len(shards))
        self.history = TrainingHistory(
            algorithm="md-gan",
            config={
                "batch_size": config.batch_size,
                "iterations": config.iterations,
                "disc_steps": config.disc_steps,
                "num_workers": len(shards),
                "num_batches_k": self.num_batches,
                "epochs_per_swap": config.epochs_per_swap,
                "swap_enabled": swap_enabled,
                "per_feedback_updates": per_feedback_updates,
                "participation_fraction": config.participation_fraction,
                "architecture": factory.name,
                "pipeline_depth": config.pipeline_depth,
                "aggregation": config.aggregation,
                "max_staleness": config.max_staleness,
            },
        )

    # -- helpers -----------------------------------------------------------------
    @property
    def swap_period(self) -> int:
        """Iterations between swaps: ``m E / b`` (Algorithm 1, line 11)."""
        if math.isinf(self.config.epochs_per_swap) or not self.swap_enabled:
            return 0
        m = min(len(w.dataset) for w in self.workers)
        return max(1, int(round(m * self.config.epochs_per_swap / self.config.batch_size)))

    def _alive_workers(self) -> List[MDGANWorkerState]:
        return [
            w for w in self.workers if self.cluster.workers[w.index].alive
        ]

    def _participating_workers(self) -> List[MDGANWorkerState]:
        """Workers taking part in this iteration (Section VII-4 extension)."""
        alive = self._alive_workers()
        frac = self.config.participation_fraction
        if frac >= 1.0 or len(alive) <= 1:
            return alive
        count = max(1, int(round(frac * len(alive))))
        chosen = self._rng.choice(len(alive), size=count, replace=False)
        return [alive[i] for i in sorted(chosen)]

    def sample_images(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` images from the server generator (evaluation mode)."""
        noise = rng.normal(0.0, 1.0, size=(n, self.factory.latent_dim)).astype(
            self.generator.dtype, copy=False
        )
        labels = (
            rng.integers(0, self.factory.num_classes, size=n)
            if self.factory.conditional
            else None
        )
        g_input = generator_input(noise, labels, self.factory.num_classes)
        return self.generator.predict(g_input)

    # -- server side --------------------------------------------------------------
    def _charge_generation(self, k: int) -> None:
        """Record the server's cost model for generating ``k`` batches.

        Cost model of Section IV-B3: generating a batch costs O(b |w|).  The
        stored batches occupy b*d floats each (d = object size), the same
        convention ``_aggregate_feedback`` uses for the received feedbacks —
        generating them costs O(b |w|) ops, but holding them does not take
        |w| floats per image.  Shared by the serial and fanned-out generation
        paths so their ledgers can never drift apart.
        """
        for _ in range(k):
            self.cluster.server.compute.charge(
                "batch_generation", self.config.batch_size * self.generator.num_parameters
            )
        self.cluster.server.compute.observe_memory(
            k * self.config.batch_size * self.factory.object_size
        )

    def _generate_batches(self, k: int) -> List[GeneratedBatch]:
        """Step 1: the server generates ``k`` batches of size ``b``."""
        batches = []
        for j in range(k):
            batches.append(
                sample_generator_images(
                    self.generator,
                    self.factory,
                    self.config.batch_size,
                    self._rng,
                    batch_index=j,
                )
            )
        self._charge_generation(k)
        return batches

    def _distribute_batches(
        self, iteration: int, batches: List[GeneratedBatch], participants: List[MDGANWorkerState]
    ) -> Dict[int, Dict[str, int]]:
        """Step 1 (cont.): send two batches to every participating worker.

        Uses the paper's round-robin assignment keyed on the *worker index*
        ``n`` — ``X_n^{(g)} = X^{(n mod k)}`` and ``X_n^{(d)} = X^{((n+1) mod
        k)}`` — not on enumeration order over the participant list, so each
        worker's assignment is stable under crashes and partial
        participation.  Returns the mapping ``worker index -> {"d":
        batch_index, "g": batch_index}``.
        """
        k = len(batches)
        assignment: Dict[int, Dict[str, int]] = {}
        for worker in participants:
            g_idx = worker.index % k
            d_idx = (worker.index + 1) % k
            assignment[worker.index] = {"g": g_idx, "d": d_idx}
            node = self.cluster.workers[worker.index]
            payload = {
                "X_d": batches[d_idx].images,
                "X_g": batches[g_idx].images,
            }
            metadata = {
                "labels_d": batches[d_idx].labels,
                "labels_g": batches[g_idx].labels,
                "batch_index_g": g_idx,
                "batch_index_d": d_idx,
            }
            self.cluster.server.send(
                node.name,
                MessageKind.GENERATED_BATCHES,
                payload,
                iteration,
                **metadata,
            )
        return assignment

    def _aggregate_feedback(
        self,
        iteration: int,
        batches: List[GeneratedBatch],
    ) -> int:
        """Step 4: collect feedbacks, chain them through the generator, update ``w``."""
        messages = self.cluster.server.receive(MessageKind.ERROR_FEEDBACK)
        if not messages:
            return 0
        self._gen_update_count += 1
        # The generator's parameters are about to change: invalidate the
        # per-slot param cache before the next generation dispatch.
        self._generator_handle.bump()
        self.cluster.server.compute.observe_memory(
            len(messages) * self.config.batch_size * self.factory.object_size
        )
        if self.per_feedback_updates:
            # Section VII-1 style: apply one generator update per feedback as
            # it arrives instead of averaging across workers.
            for message in messages:
                batch = batches[message.metadata["batch_index"]]
                self.generator.zero_grad()
                apply_feedback_to_generator(
                    self.generator,
                    self.factory,
                    [batch],
                    [message.payload],
                    weights=[1.0],
                )
                self._gen_opt.step(self.generator)
                self.cluster.server.compute.charge(
                    "generator_update",
                    self.config.batch_size * self.generator.num_parameters,
                )
            return len(messages)
        used_batches = [batches[m.metadata["batch_index"]] for m in messages]
        feedbacks = [m.payload for m in messages]
        self.generator.zero_grad()
        apply_feedback_to_generator(self.generator, self.factory, used_batches, feedbacks)
        self._gen_opt.step(self.generator)
        self.cluster.server.compute.charge(
            "generator_update",
            len(messages) * self.config.batch_size * self.generator.num_parameters,
        )
        return len(messages)

    # -- worker side ---------------------------------------------------------------
    #
    # Steps 2-3 run through the three-phase protocol of ``repro.runtime``:
    # build (drain mailbox, serial) -> compute (pure task, possibly parallel)
    # -> merge (write back state, absorb charges, send feedback; serial, in
    # worker-index order).  Workers within an iteration are independent by
    # construction, so any backend yields bitwise-identical trajectories.
    #
    # Under the ``resident`` backend the build phase splits in two: the full
    # worker state is installed into its (sticky) pool process once, and each
    # iteration ships only the generated batches; merge absorbs the returned
    # delta (losses, feedback, tape, RNG/sampler cursors) without re-adopting
    # state.  Whenever the trainer must read or mutate worker state outside
    # the pool (SWAP, crashes, end of training, ``replace_dataset``), it goes
    # through the pull/push/sync helpers below, which keep the state-epoch
    # protocol honest.

    # Backend ownership (executor property, close/close_backend, context
    # manager, best-effort failure cleanup) comes from BackendOwner.

    def _receive_generated(self, worker: MDGANWorkerState) -> Optional[Message]:
        """Drain the worker's generated-batch mailbox; latest message wins."""
        received = self.cluster.workers[worker.index].receive(
            MessageKind.GENERATED_BATCHES
        )
        return received[-1] if received else None

    def _build_worker_task(
        self, worker: MDGANWorkerState
    ) -> Optional[MDGANWorkerTask]:
        """Build phase (stateless backends): snapshot one worker's share."""
        message = self._receive_generated(worker)
        if message is None:
            return None
        return MDGANWorkerTask(
            worker_index=worker.index,
            discriminator=worker.discriminator,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
            latent_dim=self.factory.latent_dim,
            x_d=message.payload["X_d"],
            x_g=message.payload["X_g"],
            labels_d=message.metadata.get("labels_d"),
            labels_g=message.metadata.get("labels_g"),
            batch_index_g=message.metadata.get("batch_index_g", 0),
        )

    def _resident_state(self, worker: MDGANWorkerState) -> MDGANResidentState:
        """Build-once install payload for the resident backend."""
        return MDGANResidentState(
            worker_index=worker.index,
            discriminator=worker.discriminator,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
            latent_dim=self.factory.latent_dim,
        )

    @staticmethod
    def _resident_step_input(message: Message) -> MDGANStepInput:
        """Per-iteration payload for the resident backend: the two batches."""
        return MDGANStepInput(
            x_d=message.payload["X_d"],
            x_g=message.payload["X_g"],
            labels_d=message.metadata.get("labels_d"),
            labels_g=message.metadata.get("labels_g"),
            batch_index_g=message.metadata.get("batch_index_g", 0),
        )

    def _dispatch_worker_phase(
        self, participants: List[MDGANWorkerState]
    ) -> tuple[List[MDGANWorkerState], PendingResult]:
        """Dispatch the per-worker phase (Algorithm 1 steps 2-3) asynchronously.

        Drains each participant's mailbox (serial build phase), then hands
        the per-worker work to the backend without blocking: resident
        backends get only the per-iteration step inputs via ``start_steps``,
        stateless backends get full-snapshot tasks via ``submit_ordered``.
        Returns ``(live_workers, handle)``; ``handle.result()`` yields the
        results in worker-index order.  The synchronous loop collects the
        handle immediately; the pipelined loop generates future batch sets in
        between.
        """
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            live, items = [], []
            for worker in participants:
                message = self._receive_generated(worker)
                if message is None:
                    continue
                live.append(worker)
                items.append(
                    (
                        worker.index,
                        lambda w=worker: self._resident_state(w),
                        self._resident_step_input(message),
                    )
                )
            return live, backend.start_steps("mdgan", items)
        pending = [
            (worker, self._build_worker_task(worker)) for worker in participants
        ]
        live_pairs = [(worker, task) for worker, task in pending if task is not None]
        handle = backend.submit_ordered(
            run_mdgan_worker_task, [task for _, task in live_pairs]
        )
        return [worker for worker, _ in live_pairs], handle

    def _merge_worker_phase(
        self,
        iteration: int,
        live_workers: List[MDGANWorkerState],
        handle: PendingResult,
    ) -> tuple[List[float], List[float]]:
        """Collect a dispatched worker phase and merge it in worker-index order."""
        gen_losses: List[float] = []
        disc_losses: List[float] = []
        for worker, result in zip(live_workers, handle.result()):
            if result is LOST:
                # The worker's slot died with this contribution in flight:
                # elastic membership discards it (crash semantics) and the
                # boundary pipeline decides the worker's fate.
                continue
            stats = self._merge_worker_result(iteration, worker, result)
            gen_losses.append(stats["gen_loss"])
            disc_losses.append(stats["disc_loss"])
        return gen_losses, disc_losses

    def sync_worker_state(
        self,
        workers: Optional[Sequence[MDGANWorkerState]] = None,
        reclaim: bool = True,
    ) -> None:
        """Pull resident worker state back into the trainer's own objects.

        No-op for stateless backends.  With ``reclaim`` (the default) the
        trainer becomes authoritative again (the pool copies are dropped and
        the state epoch bumped), so callers may freely mutate worker state —
        e.g. ``worker.sampler.replace_dataset(...)`` — before training
        resumes; the next participation re-installs the mutated state.  With
        ``reclaim=False`` the trainer's objects merely *mirror* the pool's
        current state via the program's light-weight mirror payload (final
        discriminator + optimizer, RNG/sampler cursors — the immutable shard
        never re-crosses the pipe): the residents stay warm (a second
        ``train()`` ships no installs), and any trainer-side mutation still
        requires a reclaiming sync first, exactly as before.
        """
        resident = self._active_resident()
        if resident is None:
            return
        targets = list(self.workers) if workers is None else list(workers)
        if reclaim:
            resident.pull_into(targets, ("discriminator", "disc_opt", "sampler", "rng"))
            return
        mirrors = resident.pull_mirror([worker.index for worker in targets])
        for worker in targets:
            mirror = mirrors.get(worker.index)
            if mirror is None:
                continue
            worker.discriminator = mirror["discriminator"]
            worker.disc_opt = mirror["disc_opt"]
            worker.rng.bit_generator.state = mirror["rng_state"]
            # Full sampler position (incl. mid-epoch shuffle order): the
            # mirrored sampler must be complete, so a close_backend()-then-
            # train() re-install resumes exactly where the pool left off.
            worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _restore_worker_from_mirror(
        self, worker: MDGANWorkerState, mirror: Dict[str, object]
    ) -> None:
        """Reset a worker to its last merged boundary mirror (elastic revival)."""
        worker.discriminator = mirror["discriminator"]
        worker.disc_opt = mirror["disc_opt"]
        worker.rng.bit_generator.state = mirror["rng_state"]
        worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _merge_worker_result(
        self,
        iteration: int,
        worker: MDGANWorkerState,
        result,
    ) -> Dict[str, float]:
        """Merge phase: adopt worker state/cursors, absorb charges, ship feedback.

        For a full-snapshot :class:`MDGANWorkerResult`, re-assigning the
        stateful objects is a no-op under ``serial``/``thread`` (same
        objects) and a state transfer under ``process`` (pickle round-tripped
        copies).  For a resident :class:`MDGANStepResult` the state stayed in
        the pool; only the RNG/sampler cursors are folded back so the
        trainer's local accounting stays exact.
        """
        if isinstance(result, MDGANWorkerResult):
            worker.discriminator = result.discriminator
            worker.disc_opt = result.disc_opt
            worker.sampler = result.sampler
            worker.rng = result.rng
        else:
            worker.rng.bit_generator.state = result.rng_state
            worker.sampler.samples_drawn = result.samples_drawn
            worker.sampler.epochs_completed = result.epochs_completed
        node = self.cluster.workers[worker.index]
        self.cluster.absorb_tape(node.name, result.tape)
        node.send(
            SERVER_NAME,
            MessageKind.ERROR_FEEDBACK,
            result.feedback,
            iteration,
            batch_index=result.batch_index_g,
        )
        return {"disc_loss": result.disc_loss, "gen_loss": result.gen_loss}

    def _swap_discriminators(self, iteration: int) -> None:
        """The SWAP procedure: gossip discriminator parameters between workers.

        Every alive worker sends its discriminator parameters to another
        worker chosen uniformly at random; to keep exactly one discriminator
        per worker the destination assignment is a random permutation of the
        alive workers (a worker mapped to itself simply keeps its own
        parameters, which matches the "choose randomly another worker"
        description in expectation while preserving the one-discriminator-
        per-worker invariant).
        """
        alive = self._alive_workers()
        if len(alive) < 2:
            return
        # Resident workers keep their state in the pool: read the parameter
        # vectors out (pull), route them through the simulated network as
        # usual, and write the received vectors back in place (push) — the
        # optimizer/sampler/RNG state never crosses the IPC boundary.
        resident = self._active_resident()
        pulled: Dict[int, np.ndarray] = {}
        if resident is not None:
            keys = [w.index for w in alive if resident.installed(w.index)]
            if keys:
                pulled = resident.pull_params(keys)
        permutation = self._rng.permutation(len(alive))
        parameter_vectors = {}
        for src_pos, dst_pos in enumerate(permutation):
            if src_pos == dst_pos:
                continue
            src = alive[src_pos]
            dst = alive[dst_pos]
            src_node = self.cluster.workers[src.index]
            if src.index in pulled:
                params = pulled[src.index]
            else:
                params = src.discriminator.get_parameters()
            delivered = src_node.send(
                self.cluster.workers[dst.index].name,
                MessageKind.DISCRIMINATOR_SWAP,
                params,
                iteration,
            )
            if delivered:
                parameter_vectors[dst.index] = params
        push_map: Dict[int, np.ndarray] = {}
        for worker in alive:
            node = self.cluster.workers[worker.index]
            messages = node.receive(MessageKind.DISCRIMINATOR_SWAP)
            if messages:
                if resident is not None and resident.installed(worker.index):
                    push_map[worker.index] = messages[-1].payload
                else:
                    worker.discriminator.set_parameters(messages[-1].payload)
        if push_map:
            resident.push_params(push_map)
        if parameter_vectors:
            self.history.record_event(iteration, "swap", exchanged=len(parameter_vectors))

    # -- main loop -------------------------------------------------------------------
    def _begin_iteration(self, iteration: int) -> List[MDGANWorkerState]:
        """Apply scheduled crashes and select this iteration's participants.

        Crashed workers leave the pool permanently: their last resident state
        is reclaimed so the trainer's view of them stays exact.  Returns the
        participating workers (possibly empty).
        """
        crashed = self.cluster.apply_crashes(iteration)
        for name in crashed:
            self.history.record_event(iteration, "crash", worker=name)
        if crashed:
            names = set(crashed)
            self.sync_worker_state(
                [w for w in self.workers if self.cluster.workers[w.index].name in names]
            )
        return self._participating_workers()

    def _finish_iteration(
        self,
        iteration: int,
        batches: List[GeneratedBatch],
        gen_losses: List[float],
        disc_losses: List[float],
        staleness: Optional[int] = None,
    ) -> None:
        """Aggregate feedback, record losses (and staleness), swap if due."""
        self._aggregate_feedback(iteration, batches)
        if gen_losses:
            self.history.record_losses(
                iteration, float(np.mean(gen_losses)), float(np.mean(disc_losses))
            )
            if staleness is not None:
                self.history.record_staleness(iteration, staleness)
        period = self.swap_period
        if period and iteration % period == 0:
            self._swap_discriminators(iteration)

    def train_iteration(self, iteration: int) -> None:
        """Run one global MD-GAN iteration (Algorithm 1 body, synchronous).

        The per-worker phase fans out through the execution backend and
        merges in participant (= worker-index) order, so seeded runs are
        bitwise identical across serial/thread/process/resident.
        """
        participants = self._begin_iteration(iteration)
        if not participants:
            return
        k = min(self.num_batches, len(participants))
        batches = self._generate_batches(k)
        self._distribute_batches(iteration, batches, participants)
        live_workers, handle = self._dispatch_worker_phase(participants)
        gen_losses, disc_losses = self._merge_worker_phase(
            iteration, live_workers, handle
        )
        self._finish_iteration(iteration, batches, gen_losses, disc_losses)

    def _generate_batches_fanned(self, k: int) -> tuple[List[GeneratedBatch], bool]:
        """Generate ``k`` batches, fanned across backend slots when possible.

        Bitwise identical to :meth:`_generate_batches` (noise-draw order,
        images, BatchNorm running stats and the server's cost-model charges
        all match).  Resident backends run the per-batch forwards on their
        pool slots (dispatch + immediate collect — the pool is idle on a
        queue miss); ``thread``/``process`` use the map-based fan-out; the
        serial loop is the fallback.  Returns ``(batches, fanned)``.
        """
        pending = start_resident_generation(
            self.executor,
            self.generator,
            self.factory,
            self.config.batch_size,
            k,
            self._rng,
            handle=self._generator_handle,
        )
        if pending is not None:
            batches = pending.collect()
            self._charge_generation(k)
            return batches, True
        batches = fan_out_generation(
            self.executor,
            self.generator,
            self.factory,
            self.config.batch_size,
            k,
            self._rng,
        )
        if batches is None:
            return self._generate_batches(k), False
        # Same cost model as the serial path: the work still happens on the
        # (simulated) server, wherever the host ran it.
        self._charge_generation(k)
        return batches, True

    def _train_iteration_pipelined(
        self, iteration: int, queue: BatchAheadQueue, stats: PipelineStats
    ) -> None:
        """One global iteration under the pipelined schedule (depth > 0).

        Identical to :meth:`train_iteration` except for *when* batches are
        generated: the iteration consumes the batch set pre-generated for it
        (recording the realised staleness), dispatches the workers
        asynchronously, and fills the lookahead queue for future iterations
        **while the workers compute** — that overlap is the wall-clock win.
        On the ``resident`` backend the lookahead forwards are dispatched
        onto the pool slots (queued behind this iteration's worker steps) and
        collected after the merge, so lookahead generation leaves the trainer
        thread entirely; elsewhere it runs inline as before.  On a queue miss
        (cold start, post-skip) the batches are generated on the spot — the
        pool is idle at that moment, so resident backends route the forwards
        through their slots and backends with a concurrent map
        (``thread``/``process``) fan the generation out; ``serial`` generates
        inline.  All paths are bitwise identical.
        """
        cfg = self.config
        participants = self._begin_iteration(iteration)
        if not participants:
            return
        entry = queue.pop(iteration)
        if entry is None:
            k = min(self.num_batches, len(participants))
            batches, fanned = self._generate_batches_fanned(k)
            staleness = 0
            stats.immediate_generations += 1
            if fanned:
                stats.fanout_generations += 1
        else:
            batches, generated_at_update = entry
            staleness = self._gen_update_count - generated_at_update
        self._distribute_batches(iteration, batches, participants)
        live_workers, handle = self._dispatch_worker_phase(participants)
        # Overlap window: while the workers compute iteration t, generate
        # the batch sets for iterations t+1 .. t+depth.  k is resolved from
        # the population alive *now* — crashes inside the lookahead window
        # leave some batches unused, which is sound (workers share batches
        # round-robin mod k and the aggregation only touches batches that
        # actually received feedback).  Noise draws happen here, at dispatch,
        # in the exact serial order; resident-side generations are collected
        # (and their BatchNorm stats folded, in batch order) after the merge
        # — the merge never touches the generator, so the trajectory is
        # bitwise identical to the inline schedule.
        lookahead: List[tuple] = []
        next_target = max(queue.last_target, iteration)
        while len(queue) + len(lookahead) < stats.depth and next_target < cfg.iterations:
            next_target += 1
            k_ahead = min(self.num_batches, max(1, len(self._alive_workers())))
            pending = start_resident_generation(
                self.executor,
                self.generator,
                self.factory,
                cfg.batch_size,
                k_ahead,
                self._rng,
                handle=self._generator_handle,
            )
            if pending is None:
                pending = self._generate_batches(k_ahead)
            lookahead.append((next_target, k_ahead, pending, self._gen_update_count))
            stats.lookahead_generations += 1
        stats.observe_in_flight(1)
        gen_losses, disc_losses = self._merge_worker_phase(
            iteration, live_workers, handle
        )
        for target, k_ahead, pending, at_update in lookahead:
            if isinstance(pending, PendingGeneration):
                batches_ahead = pending.collect()
                self._charge_generation(k_ahead)
                stats.resident_generations += 1
            else:
                batches_ahead = pending
            queue.put(target, batches_ahead, at_update)
        stats.record_staleness(staleness)
        self._finish_iteration(
            iteration, batches, gen_losses, disc_losses, staleness=staleness
        )

    # -- asynchronous aggregation (bounded staleness) ---------------------------------
    #
    # ``config.aggregation="async"`` replaces the rigid begin -> dispatch ->
    # merge -> finish phase sequence with an event-driven loop over the
    # backend's completion-order collector: each worker continuously runs
    # single-iteration units (fresh batches generated against the *current*
    # generator at dispatch), finished feedbacks are buffered, and the
    # buffer is folded into the generator in whole-buffer flushes — each
    # flush is one global generator update, weighted by staleness decay
    # (see :mod:`repro.core.async_aggregation`).  The merge thereby leaves
    # the critical path: fast workers never wait for a straggler unless the
    # staleness gate closes, which is exactly the bounded-staleness
    # contract.  Async runs are *not* bitwise-reproducible on concurrent
    # backends (completion order is wall-clock nondeterminism); the serial
    # backend degenerates to a deterministic round-robin.

    def _async_worker_fn(self, worker: MDGANWorkerState):
        """The pure per-unit function dispatched for ``worker`` (stateless backends).

        A dedicated seam so benchmarks/tests can inject per-worker slowdowns
        (straggler experiments) without touching the scheduler.
        """
        return run_mdgan_worker_task

    def _dispatch_async_unit(
        self,
        worker: MDGANWorkerState,
        collector,
        sched: BoundedStalenessScheduler,
        batch_store: Dict[int, List[GeneratedBatch]],
    ) -> None:
        """Generate fresh batches for one worker and dispatch one unit of work.

        The unit reads the *current* generator: its dispatch mark is
        ``sched.updates``, which is what the staleness of the eventual
        contribution is measured against.  ``k`` degenerates to at most two
        batches per unit — the worker only ever consumes ``X_d``/``X_g``, and
        per-worker generation replaces the shared round-robin assignment of
        the synchronous schedule.
        """
        k_unit = min(self.num_batches, 2)
        batches = self._generate_batches(k_unit)
        g_batch, d_batch = batches[0], batches[-1]
        node = self.cluster.workers[worker.index]
        self.cluster.server.send(
            node.name,
            MessageKind.GENERATED_BATCHES,
            {"X_d": d_batch.images, "X_g": g_batch.images},
            sched.updates,
            labels_d=d_batch.labels,
            labels_g=g_batch.labels,
            batch_index_g=0,
            batch_index_d=len(batches) - 1,
        )
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            message = self._receive_generated(worker)
            if message is None:
                return
            collector.dispatch(
                worker.index,
                lambda w=worker: self._resident_state(w),
                self._resident_step_input(message),
            )
        else:
            task = self._build_worker_task(worker)
            if task is None:
                return
            collector.dispatch(worker.index, self._async_worker_fn(worker), task)
        batch_store[worker.index] = batches
        sched.note_dispatch(worker.index)

    def _collect_async_completion(
        self,
        collector,
        sched: BoundedStalenessScheduler,
        batch_store: Dict[int, List[GeneratedBatch]],
    ) -> None:
        """Wait for any worker's unit to finish and buffer its contribution.

        A worker that crashed while its unit was in flight is discarded —
        the fail-stop model loses in-flight work — and never re-dispatched.
        """
        key, result = collector.collect_any()
        if result is LOST:
            # The slot serving this worker died mid-unit: the contribution
            # is gone (crash semantics) and the membership layer has queued
            # the loss — evict now so the dispatch loop stops refilling it.
            batch_store.pop(key, None)
            self._handle_async_losses(sched.updates, sched)
            return
        worker = self.workers[key]
        batches = batch_store.pop(key)
        if not self.cluster.workers[key].alive:
            sched.discard(key)
            return
        stats = self._merge_worker_result(sched.updates, worker, result)
        sched.note_completion(
            key,
            {"batch": batches[0], "feedback": result.feedback, "losses": stats},
        )

    def _apply_async_update(
        self, sched: BoundedStalenessScheduler, stats: PipelineStats
    ) -> None:
        """Flush the contribution buffer as ONE staleness-weighted generator update."""
        contributions = sched.take_buffered()
        # The feedback messages were routed (and metered) through the
        # simulated network at merge time; consume them here — the
        # contributions carry the authoritative (batch, feedback) pairs.
        self.cluster.server.receive(MessageKind.ERROR_FEEDBACK)
        stalenesses = [sched.staleness_of(c) for c in contributions]
        weights = staleness_weights(stalenesses)
        self._gen_update_count += 1
        self._generator_handle.bump()
        self.cluster.server.compute.observe_memory(
            len(contributions) * self.config.batch_size * self.factory.object_size
        )
        self.generator.zero_grad()
        apply_feedback_to_generator(
            self.generator,
            self.factory,
            [c.payload["batch"] for c in contributions],
            [c.payload["feedback"] for c in contributions],
            weights=weights,
        )
        self._gen_opt.step(self.generator)
        self.cluster.server.compute.charge(
            "generator_update",
            len(contributions) * self.config.batch_size * self.generator.num_parameters,
        )
        sched.note_applied()
        update = sched.updates
        self.history.record_losses(
            update,
            float(np.mean([c.payload["losses"]["gen_loss"] for c in contributions])),
            float(np.mean([c.payload["losses"]["disc_loss"] for c in contributions])),
        )
        self.history.record_staleness(update, max(stalenesses))
        stats.record_staleness(max(stalenesses))
        for contribution, staleness in zip(contributions, stalenesses):
            self.history.record_worker_staleness(contribution.key, staleness)

    def _train_async(self) -> TrainingHistory:
        """Event-driven training loop for ``aggregation="async"``.

        Terminates after ``config.iterations`` generator updates (the same
        update count a synchronous run performs).  SWAP runs at its usual
        update period behind a drain barrier: due swaps stop re-dispatch,
        wait for the in-flight set to empty, gossip, then refill the fleet.
        Scheduled crashes apply at update boundaries (the async axis is
        updates, not lockstep iterations); crashed residents are not
        reclaimed mid-run — the final mirror refresh reconciles the
        trainer's objects.
        """
        cfg = self.config
        sched = BoundedStalenessScheduler(cfg.max_staleness)
        stats = PipelineStats(depth=0)
        batch_store: Dict[int, List[GeneratedBatch]] = {}
        period = self.swap_period
        next_swap = period if period else 0
        swap_pending = False
        collector = self.executor.open_collector("mdgan")
        for name in self.cluster.apply_crashes(1):
            self.history.record_event(1, "crash", worker=name)
        try:
            while sched.updates < cfg.iterations:
                alive = self._alive_workers()
                if not alive and not collector.outstanding and not sched.buffered:
                    self.history.record_event(
                        sched.updates + 1, "all_workers_crashed"
                    )
                    break
                if not swap_pending:
                    tracked = sched.tracked_keys()
                    for worker in alive:
                        if worker.index not in tracked:
                            self._dispatch_async_unit(
                                worker, collector, sched, batch_store
                            )
                stats.observe_in_flight(collector.outstanding)
                if collector.outstanding:
                    self._collect_async_completion(collector, sched, batch_store)
                if sched.buffered and sched.gate_open:
                    self._apply_async_update(sched, stats)
                    update = sched.updates
                    self._admit_joiners_async(update)
                    if period and update >= next_swap:
                        swap_pending = True
                    if (
                        self.evaluator is not None
                        and cfg.eval_every
                        and (
                            update % cfg.eval_every == 0
                            or update == cfg.iterations
                        )
                    ):
                        self.history.record_evaluation(
                            self.evaluator.evaluate(self.sample_images, update)
                        )
                    if update < cfg.iterations:
                        for name in self.cluster.apply_crashes(update + 1):
                            self.history.record_event(
                                update + 1, "crash", worker=name
                            )
                if (
                    swap_pending
                    and not collector.outstanding
                    and not sched.buffered
                ):
                    try:
                        self._swap_discriminators(sched.updates)
                    except SlotLossError:
                        # A gossip partner's slot died mid-swap: the swap is
                        # abandoned for this period (state already pushed to
                        # survivors stands) and the lost workers are evicted.
                        self._handle_async_losses(sched.updates, sched)
                    next_swap = period * (sched.updates // period + 1)
                    swap_pending = False
            # Straggler units past the end of training: the work is
            # discarded (never merged, never charged trainer-side).
            collector.drain()
            collector.close()
        except BaseException:
            self._cleanup_after_failure()
            raise
        else:
            self._sync_membership_events(sched.updates)
            self.sync_worker_state(reclaim=False)
        finally:
            self.history.overlap = stats.as_overlap_dict()
        self._record_run_summaries()
        return self.history

    def train(self) -> TrainingHistory:
        """Train for ``config.iterations`` global iterations and return the history.

        With ``config.pipeline_depth == 0`` every iteration runs the
        synchronous :meth:`train_iteration`; a positive depth switches to the
        pipelined schedule (see :mod:`repro.runtime.pipeline`), which records
        per-iteration staleness and an overlap summary in the history.

        ``train()`` does not own the execution backend: on success the
        trainer's worker objects are refreshed with a non-reclaiming sync and
        the pool stays **warm**, so a second ``train()`` on the same trainer
        re-enters with matching state epochs and ships no install payloads.
        On failure the cleanup is best-effort (reclaim what the pool still
        holds, close it) and never masks the original exception.  The
        backend is released by :meth:`close` / context-manager exit.
        """
        cfg = self.config
        if cfg.aggregation == "async":
            return self._train_async()
        pipelined = cfg.pipeline_depth > 0
        if pipelined:
            queue = BatchAheadQueue()
            stats = PipelineStats(depth=cfg.pipeline_depth)
        try:
            for iteration in range(1, cfg.iterations + 1):
                if not self._alive_workers():
                    self.history.record_event(iteration, "all_workers_crashed")
                    break
                if pipelined:
                    self._train_iteration_pipelined(iteration, queue, stats)
                else:
                    self._elastic_iteration(iteration, self.train_iteration)
                if (
                    self.evaluator is not None
                    and cfg.eval_every
                    and (iteration % cfg.eval_every == 0 or iteration == cfg.iterations)
                ):
                    result = self.evaluator.evaluate(self.sample_images, iteration)
                    self.history.record_evaluation(result)
        except BaseException:
            self._cleanup_after_failure()
            raise
        else:
            # Mirror the final resident state into the trainer's worker
            # objects without reclaiming authority: the pool stays warm for
            # the next train() call on this trainer.
            self.sync_worker_state(reclaim=False)
        finally:
            # Recorded on every exit path (completion, all-crash break,
            # exception) so early exits keep their overlap/staleness summary.
            if pipelined:
                self.history.overlap = stats.as_overlap_dict()
        self._record_run_summaries()
        return self.history

    def _record_run_summaries(self) -> None:
        """Fold the run's traffic/compute meters into the history (both loops)."""
        if not self.config.record_traffic:
            return
        meter = self.cluster.meter
        self.history.traffic = {
            "total_bytes": float(meter.total_bytes()),
            "server_ingress_bytes": float(meter.node_ingress(SERVER_NAME)),
            "server_egress_bytes": float(meter.node_egress(SERVER_NAME)),
            "swap_bytes": float(
                meter.total_bytes(MessageKind.DISCRIMINATOR_SWAP)
            ),
            "feedback_bytes": float(meter.total_bytes(MessageKind.ERROR_FEEDBACK)),
            "generated_batch_bytes": float(
                meter.total_bytes(MessageKind.GENERATED_BATCHES)
            ),
        }
        self.history.compute = {
            "server_flops": float(self.cluster.server.compute.flops),
            "mean_worker_flops": float(
                np.mean([self.cluster.workers[w.index].compute.flops for w in self.workers])
            ),
        }

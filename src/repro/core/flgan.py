"""FL-GAN — federated learning adapted to GANs (paper Section III-c).

Each worker holds a *complete* GAN (generator plus discriminator) treated as
one atomic object, and trains it locally on its data shard exactly like the
standalone baseline.  Every ``E`` local epochs the workers ship both
parameter sets to the central server, which averages them (FedAvg) and
broadcasts the result back; all active workers start the next round from the
same averaged model.

Evaluation uses the server's averaged generator, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import ImageDataset
from ..datasets.sampler import EpochSampler
from ..metrics.evaluator import GeneratorEvaluator
from ..models.base import GANFactory, generator_input
from ..nn.model import Sequential
from ..nn.serialize import weighted_average_parameters
from ..runtime.pipeline import InflightWindow, PipelineStats
from .lifecycle import BackendOwner
from ..runtime.tasks import (
    FLGANLocalResult,
    FLGANLocalTask,
    FLGANResidentState,
    run_flgan_local_task,
)
from ..simulation.cluster import SERVER_NAME, Cluster
from ..simulation.messages import MessageKind
from ..simulation.network import LinkModel
from .config import TrainingConfig
from .gan_ops import GANObjective
from .history import TrainingHistory

__all__ = ["FLGANWorkerState", "FLGANTrainer"]


@dataclass
class FLGANWorkerState:
    """Per-worker state: a full local GAN plus its optimizers and sampler."""

    index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    dataset: ImageDataset
    #: Worker-local random stream; required — sampling code must never see
    #: a missing generator.
    rng: np.random.Generator


class FLGANTrainer(BackendOwner):
    """Federated-averaging GAN trainer over ``N`` emulated workers.

    The trainer owns its execution backend (see
    :class:`~repro.core.lifecycle.BackendOwner`): warm resident pools
    survive across ``train()`` calls until :meth:`close` / the
    context-manager exit.
    """

    def __init__(
        self,
        factory: GANFactory,
        shards: Sequence[ImageDataset],
        config: TrainingConfig,
        evaluator: Optional[GeneratorEvaluator] = None,
        link_model: Optional[LinkModel] = None,
    ) -> None:
        if not shards:
            raise ValueError("FL-GAN needs at least one worker shard")
        # Convert shards once so an explicit precision opt-in reaches the data.
        shards = [shard.astype(config.dtype) for shard in shards]
        self.factory = factory
        self.config = config
        self.evaluator = evaluator
        self.cluster = Cluster(num_workers=len(shards), link_model=link_model)

        self._rng = np.random.default_rng(config.seed)
        # Backend ownership state lives on BackendOwner (lazy build, warm
        # across train() calls, released by close()/context-manager exit).
        # Built on the factory's picklable spec so worker tasks (which carry
        # the objective) survive the process backend's pickle round-trip.
        self._objective = GANObjective(
            factory.spec(),
            non_saturating=config.non_saturating,
            label_smoothing=config.label_smoothing,
        )

        # The server keeps the reference (averaged) generator/discriminator.
        dtype = config.dtype
        self.server_generator = factory.make_generator(self._rng, dtype=dtype)
        self.server_discriminator = factory.make_discriminator(self._rng, dtype=dtype)

        self.workers: List[FLGANWorkerState] = []
        for index, shard in enumerate(shards):
            worker_rng = np.random.default_rng(config.seed + 1000 + index)
            generator = factory.make_generator(worker_rng, dtype=dtype)
            discriminator = factory.make_discriminator(worker_rng, dtype=dtype)
            # All workers start from the same global model, as in federated
            # learning where the server initialises the round-0 model.
            generator.set_parameters(self.server_generator.get_parameters())
            discriminator.set_parameters(self.server_discriminator.get_parameters())
            self.workers.append(
                FLGANWorkerState(
                    index=index,
                    generator=generator,
                    discriminator=discriminator,
                    gen_opt=config.generator_opt.build(),
                    disc_opt=config.discriminator_opt.build(),
                    sampler=EpochSampler(shard, config.batch_size, worker_rng),
                    dataset=shard,
                    rng=worker_rng,
                )
            )

        self.history = TrainingHistory(
            algorithm="fl-gan",
            config={
                "batch_size": config.batch_size,
                "iterations": config.iterations,
                "epochs_per_round": config.epochs_per_swap,
                "num_workers": len(shards),
                "architecture": factory.name,
                "pipeline_depth": config.pipeline_depth,
            },
        )

    # -- helpers -----------------------------------------------------------------
    @property
    def iterations_per_round(self) -> int:
        """Local iterations between two federated rounds: ``E * m / b``."""
        m = min(len(w.dataset) for w in self.workers)
        if math.isinf(self.config.epochs_per_swap):
            return self.config.iterations + 1
        return max(1, int(round(self.config.epochs_per_swap * m / self.config.batch_size)))

    def sample_images(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` images from the server's averaged generator."""
        noise = rng.normal(0.0, 1.0, size=(n, self.factory.latent_dim)).astype(
            self.server_generator.dtype, copy=False
        )
        labels = (
            rng.integers(0, self.factory.num_classes, size=n)
            if self.factory.conditional
            else None
        )
        g_input = generator_input(noise, labels, self.factory.num_classes)
        return self.server_generator.predict(g_input)

    # -- local epochs ---------------------------------------------------------------
    #
    # Local iterations between federated rounds are independent across
    # workers, so they run through the build -> compute -> merge protocol of
    # ``repro.runtime`` exactly like MD-GAN's per-worker phase.  Under the
    # ``resident`` backend the full local GAN is installed into its pool
    # process once per round era and the per-iteration messages carry nothing
    # at all outbound — only losses and RNG/sampler cursors come back.

    # Backend ownership (executor property, close/close_backend, context
    # manager, best-effort failure cleanup) comes from BackendOwner.

    def _build_local_task(self, worker: FLGANWorkerState) -> FLGANLocalTask:
        """Build phase (stateless backends): snapshot one local GAN iteration."""
        return FLGANLocalTask(
            worker_index=worker.index,
            generator=worker.generator,
            discriminator=worker.discriminator,
            gen_opt=worker.gen_opt,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
        )

    def _resident_state(self, worker: FLGANWorkerState) -> FLGANResidentState:
        """Build-once install payload for the resident backend."""
        return FLGANResidentState(
            worker_index=worker.index,
            generator=worker.generator,
            discriminator=worker.discriminator,
            gen_opt=worker.gen_opt,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
        )

    def sync_worker_state(
        self,
        workers: Optional[Sequence[FLGANWorkerState]] = None,
        reclaim: bool = True,
    ) -> None:
        """Pull resident worker state back into the trainer's own objects.

        No-op for stateless backends.  With ``reclaim`` (the default) the
        trainer becomes authoritative (pool copies dropped, state epoch
        bumped), so worker state may be mutated freely before training
        resumes.  With ``reclaim=False`` the trainer's objects merely mirror
        the pool's current state via the program's light-weight mirror
        payload (final models + optimizers, RNG/sampler cursors — the
        immutable shard never re-crosses the pipe) and the residents stay
        warm for the next ``train()`` call.
        """
        resident = self._active_resident()
        if resident is None:
            return
        targets = list(self.workers) if workers is None else list(workers)
        if reclaim:
            resident.pull_into(
                targets,
                ("generator", "discriminator", "gen_opt", "disc_opt", "sampler", "rng"),
            )
            return
        mirrors = resident.pull_mirror([worker.index for worker in targets])
        for worker in targets:
            mirror = mirrors.get(worker.index)
            if mirror is None:
                continue
            worker.generator = mirror["generator"]
            worker.discriminator = mirror["discriminator"]
            worker.gen_opt = mirror["gen_opt"]
            worker.disc_opt = mirror["disc_opt"]
            worker.rng.bit_generator.state = mirror["rng_state"]
            # Full sampler position (incl. mid-epoch shuffle order): the
            # mirrored sampler must be complete, so a close_backend()-then-
            # train() re-install resumes exactly where the pool left off.
            worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _merge_local_result(self, worker: FLGANWorkerState, result) -> tuple:
        """Merge phase: adopt the round-tripped state, or just the cursors.

        A full-snapshot :class:`FLGANLocalResult` replaces the worker's
        objects (a no-op under ``serial``/``thread``); a resident
        :class:`FLGANStepResult` only folds the RNG/sampler cursors back —
        the local GAN itself stayed in the pool.
        """
        if isinstance(result, FLGANLocalResult):
            worker.generator = result.generator
            worker.discriminator = result.discriminator
            worker.gen_opt = result.gen_opt
            worker.disc_opt = result.disc_opt
            worker.sampler = result.sampler
            worker.rng = result.rng
        else:
            worker.rng.bit_generator.state = result.rng_state
            worker.sampler.samples_drawn = result.samples_drawn
            worker.sampler.epochs_completed = result.epochs_completed
        return result.gen_loss, result.disc_loss

    def _federated_round(self, iteration: int) -> None:
        """Workers upload their GANs, the server averages and broadcasts.

        FedAvg weights every worker's parameters by its shard size
        ``m_n / sum m_n`` — with unequal or non-IID shards an unweighted mean
        would bias the global model toward small shards.  Resident workers
        exchange only flat parameter vectors with the pool (pull before the
        upload, push after the broadcast); optimizer, sampler and RNG state
        never leave their pool process.
        """
        resident = self._active_resident()
        alive = [
            worker
            for worker in self.workers
            if self.cluster.workers[worker.index].alive
        ]
        pulled: Dict[int, Dict[str, np.ndarray]] = {}
        if resident is not None:
            keys = [w.index for w in alive if resident.installed(w.index)]
            if keys:
                pulled = resident.pull_params(keys)
        gen_vectors, disc_vectors, weights = [], [], []
        for worker in alive:
            node = self.cluster.workers[worker.index]
            if worker.index in pulled:
                payload = dict(pulled[worker.index])
            else:
                payload = {
                    "generator": worker.generator.get_parameters(),
                    "discriminator": worker.discriminator.get_parameters(),
                }
            # Weight by the sampler's *live* shard size, not the construction-
            # time `worker.dataset` — replace_dataset churn changes the former.
            node.send(
                SERVER_NAME,
                MessageKind.MODEL_UPDATE,
                payload,
                iteration,
                num_samples=len(worker.sampler),
            )
        for message in self.cluster.server.receive(MessageKind.MODEL_UPDATE):
            gen_vectors.append(message.payload["generator"])
            disc_vectors.append(message.payload["discriminator"])
            weights.append(float(message.metadata.get("num_samples", 1.0)))
        if not gen_vectors:
            return
        avg_gen = weighted_average_parameters(gen_vectors, weights)
        avg_disc = weighted_average_parameters(disc_vectors, weights)
        self.server_generator.set_parameters(avg_gen)
        self.server_discriminator.set_parameters(avg_disc)
        push_map: Dict[int, Dict[str, np.ndarray]] = {}
        for worker in alive:
            node = self.cluster.workers[worker.index]
            self.cluster.server.send(
                node.name,
                MessageKind.MODEL_BROADCAST,
                {"generator": avg_gen, "discriminator": avg_disc},
                iteration,
            )
            broadcast = node.receive(MessageKind.MODEL_BROADCAST)
            if broadcast:
                payload = broadcast[-1].payload
                if resident is not None and resident.installed(worker.index):
                    push_map[worker.index] = {
                        "generator": payload["generator"],
                        "discriminator": payload["discriminator"],
                    }
                else:
                    worker.generator.set_parameters(payload["generator"])
                    worker.discriminator.set_parameters(payload["discriminator"])
        if push_map:
            resident.push_params(push_map)
        self.history.record_event(iteration, "federated_round", workers=len(gen_vectors))

    # -- main loop --------------------------------------------------------------------
    def _active_workers(self) -> List[FLGANWorkerState]:
        """Workers whose emulated node is alive."""
        return [
            worker
            for worker in self.workers
            if self.cluster.workers[worker.index].alive
        ]

    def _dispatch_local_iteration(self, active: Sequence[FLGANWorkerState]):
        """Dispatch one local iteration for every active worker, non-blocking.

        Resident backends receive only the step trigger (state lives in the
        pool) via ``start_steps``; stateless backends get full-snapshot tasks
        via ``submit_ordered``.  Returns a handle whose ``result()`` yields
        per-worker results in worker-index order.
        """
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            items = [
                (
                    worker.index,
                    lambda w=worker: self._resident_state(w),
                    None,
                )
                for worker in active
            ]
            return backend.start_steps("flgan", items)
        tasks = [self._build_local_task(worker) for worker in active]
        return backend.submit_ordered(run_flgan_local_task, tasks)

    def _merge_local_iteration(
        self, iteration: int, active: Sequence[FLGANWorkerState], results
    ) -> None:
        """Merge one local iteration's results (worker-index order) + record."""
        gen_losses, disc_losses = [], []
        for worker, result in zip(active, results):
            gen_loss, disc_loss = self._merge_local_result(worker, result)
            gen_losses.append(gen_loss)
            disc_losses.append(disc_loss)
        if gen_losses:
            self.history.record_losses(
                iteration, float(np.mean(gen_losses)), float(np.mean(disc_losses))
            )

    def train(self) -> TrainingHistory:
        """Run ``config.iterations`` local iterations with federated rounds.

        Local iterations fan out through the execution backend and merge in
        worker-index order, so seeded runs are bitwise identical across
        serial/thread/process/resident.  With ``pipeline_depth > 0`` on the
        ``resident`` backend, up to ``depth`` iterations stay in flight
        behind the newest dispatch, overlapping the trainer's merge and
        bookkeeping with the pool's compute; because local iterations never
        touch the server model between rounds, the window drains before
        every federated round / evaluation and the trajectory stays
        **bitwise identical** at every depth (unlike MD-GAN, FL-GAN
        pipelining introduces no staleness).  On non-resident backends a
        positive depth falls back to the synchronous schedule (in-flight
        snapshots of mutable worker state cannot overlap safely); the
        history's ``overlap`` summary records what actually happened.

        ``train()`` does not own the execution backend: on success the
        trainer's worker objects are refreshed with a non-reclaiming sync
        and the pool stays warm for re-entry; on failure the cleanup is
        best-effort and never masks the original exception.  The backend is
        released by :meth:`close` / context-manager exit.
        """
        cfg = self.config
        round_length = self.iterations_per_round
        depth = cfg.pipeline_depth
        window = InflightWindow(depth)
        stats = PipelineStats(depth=depth) if depth > 0 else None
        try:
            for iteration in range(1, cfg.iterations + 1):
                active = self._active_workers()
                backend = self.executor
                windowed = depth > 0 and getattr(backend, "supports_resident", False)
                if windowed:
                    window.push(
                        (iteration, active, self._dispatch_local_iteration(active))
                    )
                    stats.observe_in_flight(len(window))
                    at_boundary = (
                        iteration % round_length == 0
                        or iteration == cfg.iterations
                        or (
                            self.evaluator is not None
                            and cfg.eval_every
                            and iteration % cfg.eval_every == 0
                        )
                    )
                    for it, act, handle in window.drain(0 if at_boundary else None):
                        self._merge_local_iteration(it, act, handle.result())
                else:
                    handle = self._dispatch_local_iteration(active)
                    self._merge_local_iteration(iteration, active, handle.result())
                if iteration % round_length == 0:
                    self._federated_round(iteration)
                if (
                    self.evaluator is not None
                    and cfg.eval_every
                    and (iteration % cfg.eval_every == 0 or iteration == cfg.iterations)
                ):
                    result = self.evaluator.evaluate(self.sample_images, iteration)
                    self.history.record_evaluation(result)
        except BaseException:
            self._cleanup_after_failure()
            raise
        else:
            # Mirror the final resident state into the trainer's worker
            # objects without reclaiming authority: the pool stays warm for
            # the next train() call on this trainer.
            self.sync_worker_state(reclaim=False)
        finally:
            # Recorded on every exit path (completion, exception) so early
            # exits keep their overlap summary.
            if stats is not None:
                self.history.overlap = stats.as_overlap_dict()
        if cfg.record_traffic:
            meter = self.cluster.meter
            self.history.traffic = {
                "total_bytes": float(meter.total_bytes()),
                "server_ingress_bytes": float(meter.node_ingress(SERVER_NAME)),
                "server_egress_bytes": float(meter.node_egress(SERVER_NAME)),
                "rounds": float(len(self.history.events_of_kind("federated_round"))),
            }
        return self.history

"""FL-GAN — federated learning adapted to GANs (paper Section III-c).

Each worker holds a *complete* GAN (generator plus discriminator) treated as
one atomic object, and trains it locally on its data shard exactly like the
standalone baseline.  Every ``E`` local epochs the workers ship both
parameter sets to the central server, which averages them (FedAvg) and
broadcasts the result back; all active workers start the next round from the
same averaged model.

Evaluation uses the server's averaged generator, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import ImageDataset
from ..datasets.sampler import EpochSampler
from ..metrics.evaluator import GeneratorEvaluator
from ..models.base import GANFactory, generator_input
from ..nn.model import Sequential
from ..nn.serialize import weighted_average_parameters
from ..runtime.membership import LOST, SlotLossError
from ..runtime.pipeline import InflightWindow, PipelineStats
from .elastic import ElasticMembershipMixin
from .engine import AsyncContext, EngineHooks, ExecutionEngine
from .lifecycle import BackendOwner
from ..runtime.tasks import (
    FLGANLocalResult,
    FLGANLocalTask,
    FLGANResidentState,
    run_flgan_local_task,
)
from ..simulation.cluster import SERVER_NAME, Cluster
from ..simulation.messages import MessageKind
from ..simulation.network import LinkModel
from .async_aggregation import BoundedStalenessScheduler
from .config import TrainingConfig
from .gan_ops import GANObjective
from .history import TrainingHistory

__all__ = ["FLGANWorkerState", "FLGANTrainer"]


@dataclass
class FLGANWorkerState:
    """Per-worker state: a full local GAN plus its optimizers and sampler."""

    index: int
    generator: Sequential
    discriminator: Sequential
    gen_opt: object
    disc_opt: object
    sampler: EpochSampler
    dataset: ImageDataset
    #: Worker-local random stream; required — sampling code must never see
    #: a missing generator.
    rng: np.random.Generator


class FLGANTrainer(ElasticMembershipMixin, EngineHooks, BackendOwner):
    """Federated-averaging GAN trainer over ``N`` emulated workers.

    The trainer owns its execution backend (see
    :class:`~repro.core.lifecycle.BackendOwner`): warm resident pools
    survive across ``train()`` calls until :meth:`close` / the
    context-manager exit.
    """

    def __init__(
        self,
        factory: GANFactory,
        shards: Sequence[ImageDataset],
        config: TrainingConfig,
        evaluator: Optional[GeneratorEvaluator] = None,
        link_model: Optional[LinkModel] = None,
    ) -> None:
        if not shards:
            raise ValueError("FL-GAN needs at least one worker shard")
        # Convert shards once so an explicit precision opt-in reaches the data.
        shards = [shard.astype(config.dtype) for shard in shards]
        self.factory = factory
        self.config = config
        self.evaluator = evaluator
        self.cluster = Cluster(num_workers=len(shards), link_model=link_model)

        self._rng = np.random.default_rng(config.seed)
        # Backend ownership state lives on BackendOwner (lazy build, warm
        # across train() calls, released by close()/context-manager exit).
        # Built on the factory's picklable spec so worker tasks (which carry
        # the objective) survive the process backend's pickle round-trip.
        self._objective = GANObjective(
            factory.spec(),
            non_saturating=config.non_saturating,
            label_smoothing=config.label_smoothing,
        )

        # The server keeps the reference (averaged) generator/discriminator.
        dtype = config.dtype
        self.server_generator = factory.make_generator(self._rng, dtype=dtype)
        self.server_discriminator = factory.make_discriminator(self._rng, dtype=dtype)

        self.workers: List[FLGANWorkerState] = []
        for index, shard in enumerate(shards):
            worker_rng = np.random.default_rng(config.seed + 1000 + index)
            generator = factory.make_generator(worker_rng, dtype=dtype)
            discriminator = factory.make_discriminator(worker_rng, dtype=dtype)
            # All workers start from the same global model, as in federated
            # learning where the server initialises the round-0 model.
            generator.set_parameters(self.server_generator.get_parameters())
            discriminator.set_parameters(self.server_discriminator.get_parameters())
            self.workers.append(
                FLGANWorkerState(
                    index=index,
                    generator=generator,
                    discriminator=discriminator,
                    gen_opt=config.generator_opt.build(),
                    disc_opt=config.discriminator_opt.build(),
                    sampler=EpochSampler(shard, config.batch_size, worker_rng),
                    dataset=shard,
                    rng=worker_rng,
                )
            )

        self.history = TrainingHistory(
            algorithm="fl-gan",
            config={
                "batch_size": config.batch_size,
                "iterations": config.iterations,
                "epochs_per_round": config.epochs_per_swap,
                "num_workers": len(shards),
                "architecture": factory.name,
                "pipeline_depth": config.pipeline_depth,
                "aggregation": config.aggregation,
                "max_staleness": config.max_staleness,
            },
        )

    # -- helpers -----------------------------------------------------------------
    @property
    def iterations_per_round(self) -> int:
        """Local iterations between two federated rounds: ``E * m / b``."""
        m = min(len(w.dataset) for w in self.workers)
        if math.isinf(self.config.epochs_per_swap):
            return self.config.iterations + 1
        return max(1, int(round(self.config.epochs_per_swap * m / self.config.batch_size)))

    def sample_images(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` images from the server's averaged generator."""
        noise = rng.normal(0.0, 1.0, size=(n, self.factory.latent_dim)).astype(
            self.server_generator.dtype, copy=False
        )
        labels = (
            rng.integers(0, self.factory.num_classes, size=n)
            if self.factory.conditional
            else None
        )
        g_input = generator_input(noise, labels, self.factory.num_classes)
        return self.server_generator.predict(g_input)

    # -- local epochs ---------------------------------------------------------------
    #
    # Local iterations between federated rounds run through the build ->
    # compute -> merge protocol of ``repro.runtime``; resident backends
    # install the full local GAN once per round era and only losses plus
    # RNG/sampler cursors come back.  Backend ownership comes from
    # BackendOwner.

    def _build_local_task(self, worker: FLGANWorkerState) -> FLGANLocalTask:
        """Build phase (stateless backends): snapshot one local GAN iteration."""
        return FLGANLocalTask(
            worker_index=worker.index,
            generator=worker.generator,
            discriminator=worker.discriminator,
            gen_opt=worker.gen_opt,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
        )

    def _resident_state(self, worker: FLGANWorkerState) -> FLGANResidentState:
        """Build-once install payload for the resident backend."""
        return FLGANResidentState(
            worker_index=worker.index,
            generator=worker.generator,
            discriminator=worker.discriminator,
            gen_opt=worker.gen_opt,
            disc_opt=worker.disc_opt,
            sampler=worker.sampler,
            rng=worker.rng,
            objective=self._objective,
            disc_steps=self.config.disc_steps,
            batch_size=self.config.batch_size,
        )

    def sync_worker_state(
        self,
        workers: Optional[Sequence[FLGANWorkerState]] = None,
        reclaim: bool = True,
    ) -> None:
        """Pull resident worker state back into the trainer's own objects.

        No-op for stateless backends.  With ``reclaim`` (the default) the
        trainer becomes authoritative (pool copies dropped, state epoch
        bumped), so worker state may be mutated freely before training
        resumes.  With ``reclaim=False`` the trainer's objects merely mirror
        the pool's current state via the program's light-weight mirror
        payload (final models + optimizers, RNG/sampler cursors — the
        immutable shard never re-crosses the pipe) and the residents stay
        warm for the next ``train()`` call.
        """
        resident = self._active_resident()
        if resident is None:
            return
        targets = list(self.workers) if workers is None else list(workers)
        if reclaim:
            resident.pull_into(
                targets,
                ("generator", "discriminator", "gen_opt", "disc_opt", "sampler", "rng"),
            )
            return
        mirrors = resident.pull_mirror([worker.index for worker in targets])
        for worker in targets:
            mirror = mirrors.get(worker.index)
            if mirror is None:
                continue
            worker.generator = mirror["generator"]
            worker.discriminator = mirror["discriminator"]
            worker.gen_opt = mirror["gen_opt"]
            worker.disc_opt = mirror["disc_opt"]
            worker.rng.bit_generator.state = mirror["rng_state"]
            # Full sampler position (incl. mid-epoch shuffle order): the
            # mirrored sampler must be complete, so a close_backend()-then-
            # train() re-install resumes exactly where the pool left off.
            worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _restore_worker_from_mirror(
        self, worker: FLGANWorkerState, mirror: Dict[str, object]
    ) -> None:
        """Reset a worker to its last merged boundary mirror (elastic revival)."""
        worker.generator = mirror["generator"]
        worker.discriminator = mirror["discriminator"]
        worker.gen_opt = mirror["gen_opt"]
        worker.disc_opt = mirror["disc_opt"]
        worker.rng.bit_generator.state = mirror["rng_state"]
        worker.sampler.restore_cursor_state(mirror["sampler_cursor"])

    def _merge_local_result(self, worker: FLGANWorkerState, result) -> tuple:
        """Merge phase: adopt the round-tripped state, or just the cursors.

        A full-snapshot :class:`FLGANLocalResult` replaces the worker's
        objects (a no-op under ``serial``/``thread``); a resident
        :class:`FLGANStepResult` only folds the RNG/sampler cursors back —
        the local GAN itself stayed in the pool.
        """
        if isinstance(result, FLGANLocalResult):
            worker.generator = result.generator
            worker.discriminator = result.discriminator
            worker.gen_opt = result.gen_opt
            worker.disc_opt = result.disc_opt
            worker.sampler = result.sampler
            worker.rng = result.rng
        else:
            worker.rng.bit_generator.state = result.rng_state
            worker.sampler.samples_drawn = result.samples_drawn
            worker.sampler.epochs_completed = result.epochs_completed
        return result.gen_loss, result.disc_loss

    def _federated_round(self, iteration: int) -> None:
        """Workers upload their GANs, the server averages and broadcasts.

        FedAvg weights every worker's parameters by its shard size
        ``m_n / sum m_n`` — with unequal or non-IID shards an unweighted mean
        would bias the global model toward small shards.  Resident workers
        exchange only flat parameter vectors with the pool (pull before the
        upload, push after the broadcast); optimizer, sampler and RNG state
        never leave their pool process.
        """
        resident = self._active_resident()
        alive = [
            worker
            for worker in self.workers
            if self.cluster.workers[worker.index].alive
        ]
        pulled: Dict[int, Dict[str, np.ndarray]] = {}
        if resident is not None:
            keys = [w.index for w in alive if resident.installed(w.index)]
            if keys:
                pulled = resident.pull_params(keys)
        gen_vectors, disc_vectors, weights = [], [], []
        for worker in alive:
            node = self.cluster.workers[worker.index]
            if worker.index in pulled:
                payload = dict(pulled[worker.index])
            else:
                payload = {
                    "generator": worker.generator.get_parameters(),
                    "discriminator": worker.discriminator.get_parameters(),
                }
            # Weight by the sampler's *live* shard size, not the construction-
            # time `worker.dataset` — replace_dataset churn changes the former.
            node.send(
                SERVER_NAME,
                MessageKind.MODEL_UPDATE,
                payload,
                iteration,
                num_samples=len(worker.sampler),
            )
        for message in self.cluster.server.receive(MessageKind.MODEL_UPDATE):
            gen_vectors.append(message.payload["generator"])
            disc_vectors.append(message.payload["discriminator"])
            weights.append(float(message.metadata.get("num_samples", 1.0)))
        if not gen_vectors:
            return
        avg_gen = weighted_average_parameters(gen_vectors, weights)
        avg_disc = weighted_average_parameters(disc_vectors, weights)
        self.server_generator.set_parameters(avg_gen)
        self.server_discriminator.set_parameters(avg_disc)
        push_map: Dict[int, Dict[str, np.ndarray]] = {}
        for worker in alive:
            node = self.cluster.workers[worker.index]
            self.cluster.server.send(
                node.name,
                MessageKind.MODEL_BROADCAST,
                {"generator": avg_gen, "discriminator": avg_disc},
                iteration,
            )
            broadcast = node.receive(MessageKind.MODEL_BROADCAST)
            if broadcast:
                payload = broadcast[-1].payload
                if resident is not None and resident.installed(worker.index):
                    push_map[worker.index] = {
                        "generator": payload["generator"],
                        "discriminator": payload["discriminator"],
                    }
                else:
                    worker.generator.set_parameters(payload["generator"])
                    worker.discriminator.set_parameters(payload["discriminator"])
        if push_map:
            resident.push_params(push_map)
        self.history.record_event(iteration, "federated_round", workers=len(gen_vectors))

    # -- main loop --------------------------------------------------------------------
    def _active_workers(self) -> List[FLGANWorkerState]:
        """Workers whose emulated node is alive."""
        return [
            worker
            for worker in self.workers
            if self.cluster.workers[worker.index].alive
        ]

    def _dispatch_local_iteration(self, active: Sequence[FLGANWorkerState]):
        """Dispatch one local iteration for every active worker, non-blocking.

        Resident backends receive only the step trigger (state lives in the
        pool) via ``start_steps``; stateless backends get full-snapshot tasks
        via ``submit_ordered``.  Returns a handle whose ``result()`` yields
        per-worker results in worker-index order.
        """
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            items = [
                (
                    worker.index,
                    lambda w=worker: self._resident_state(w),
                    None,
                )
                for worker in active
            ]
            return backend.start_steps("flgan", items)
        tasks = [self._build_local_task(worker) for worker in active]
        return backend.submit_ordered(run_flgan_local_task, tasks)

    def _merge_local_iteration(
        self, iteration: int, active: Sequence[FLGANWorkerState], results
    ) -> None:
        """Merge one local iteration's results (worker-index order) + record."""
        gen_losses, disc_losses = [], []
        for worker, result in zip(active, results):
            if result is LOST:
                # The worker's slot died with this iteration in flight:
                # elastic membership discards the contribution (crash
                # semantics); the boundary pipeline decides the worker's fate.
                continue
            gen_loss, disc_loss = self._merge_local_result(worker, result)
            gen_losses.append(gen_loss)
            disc_losses.append(disc_loss)
        if gen_losses:
            self.history.record_losses(
                iteration, float(np.mean(gen_losses)), float(np.mean(disc_losses))
            )

    # -- asynchronous aggregation -------------------------------------------------
    #
    # Under ``aggregation="async"`` each worker marches through its local
    # iterations independently; only round boundaries touch the scheduler:
    # the round-start dispatch marks the read point and the round-end
    # upload buffers the worker's full GAN as one contribution, folded in
    # whole-buffer staleness-weighted FedAvg flushes anchored on the server
    # model.  Only the serial backend is bitwise deterministic.

    _async_program = "flgan"

    def _async_worker_fn(self, worker: FLGANWorkerState):
        """The pure per-unit function dispatched for ``worker`` (stateless backends).

        A dedicated seam so benchmarks/tests can inject per-worker slowdowns
        (straggler experiments) without touching the scheduler.
        """
        return run_flgan_local_task

    def _dispatch_async_local_unit(self, worker: FLGANWorkerState, collector) -> None:
        """Dispatch one local iteration for ``worker`` through the collector."""
        backend = self.executor
        if getattr(backend, "supports_resident", False):
            collector.dispatch(
                worker.index, lambda w=worker: self._resident_state(w), None
            )
        else:
            collector.dispatch(
                worker.index,
                self._async_worker_fn(worker),
                self._build_local_task(worker),
            )

    def _pull_async_params(self, worker: FLGANWorkerState, collector) -> Dict[str, np.ndarray]:
        """Snapshot a worker's flat parameter vectors at its round boundary.

        Resident workers answer through the collector's mid-flight
        ``pull_params`` (the GAN lives in the pool); stateless workers are
        read directly — their just-merged objects are current.
        """
        if getattr(self.executor, "supports_resident", False):
            pulled = collector.pull_params([worker.index])
            if worker.index in pulled:
                return dict(pulled[worker.index])
        return {
            "generator": worker.generator.get_parameters(),
            "discriminator": worker.discriminator.get_parameters(),
        }

    def _async_collect(self, ctx: AsyncContext) -> None:
        """Wait for any worker's local iteration and advance its round.

        Mid-round completions re-dispatch against the same round-start
        mark; a round-boundary completion buffers the worker's GAN as a
        contribution; a final *partial* round — or a worker crashed while
        its unit was in flight — is discarded.
        """
        sched = ctx.sched
        collector = ctx.collector
        done_iters = ctx.done_iters
        round_losses = ctx.round_losses
        key, result = collector.collect_any()
        if result is LOST:
            # The slot serving this worker died mid-unit: the round's work
            # is gone (crash semantics) and the membership layer has queued
            # the loss — apply the loss policy now so the worker is not
            # re-dispatched (degrade evicts; wait queues the heal).
            self._handle_async_losses(sched.updates, sched)
            sched.discard(key)
            return
        worker = self.workers[key]
        if not self.cluster.workers[key].alive:
            sched.discard(key)
            return
        gen_loss, disc_loss = self._merge_local_result(worker, result)
        gen_acc, disc_acc = round_losses[key]
        gen_acc.append(gen_loss)
        disc_acc.append(disc_loss)
        done_iters[key] += 1
        done = done_iters[key]
        if done % self.iterations_per_round == 0:
            try:
                payload = self._pull_async_params(worker, collector)
            except SlotLossError:
                # The worker's slot died at its round boundary: the round's
                # contribution is lost with it.
                self._handle_async_losses(sched.updates, sched)
                sched.discard(key)
                return
            # Metered upload through the simulated network; the contribution
            # carries the authoritative vectors (drained at flush time).
            self.cluster.workers[key].send(
                SERVER_NAME,
                MessageKind.MODEL_UPDATE,
                payload,
                sched.updates,
                num_samples=len(worker.sampler),
            )
            sched.note_completion(
                key,
                {
                    "generator": payload["generator"],
                    "discriminator": payload["discriminator"],
                    "num_samples": float(len(worker.sampler)),
                    "gen_loss": float(np.mean(gen_acc)),
                    "disc_loss": float(np.mean(disc_acc)),
                },
            )
            round_losses[key] = ([], [])
        elif done < self.config.iterations:
            self._dispatch_async_local_unit(worker, collector)
        else:
            sched.discard(key)

    def _apply_async_round(
        self,
        sched: BoundedStalenessScheduler,
        stats: PipelineStats,
        done_iters: Dict[int, int],
        collector,
    ) -> int:
        """Flush the contribution buffer as ONE staleness-weighted FedAvg merge.

        The merge averages ``[server] + contributors``: each contributor
        weighs its shard size decayed by ``1 / (1 + staleness)``; the server
        anchor absorbs the non-contributing and staleness-lost mass, so an
        all-fresh full-fleet flush degenerates to synchronous shard-weighted
        FedAvg exactly.  Contributors receive the merged model and start
        their next round against the new merge count.
        """
        cfg = self.config
        contributions = sched.take_buffered()
        # Uploads were metered at round boundaries; drain the mailbox copy.
        self.cluster.server.receive(MessageKind.MODEL_UPDATE)
        stalenesses = [sched.staleness_of(c) for c in contributions]
        decay = [1.0 / (1.0 + float(s)) for s in stalenesses]
        contrib_keys = {c.key for c in contributions}
        outside_mass = sum(
            float(len(w.sampler))
            for w in self._active_workers()
            if w.index not in contrib_keys
        )
        lost_mass = sum(
            c.payload["num_samples"] * (1.0 - d)
            for c, d in zip(contributions, decay)
        )
        gen_vectors = [self.server_generator.get_parameters()]
        disc_vectors = [self.server_discriminator.get_parameters()]
        weights = [outside_mass + lost_mass]
        for contribution, d in zip(contributions, decay):
            gen_vectors.append(contribution.payload["generator"])
            disc_vectors.append(contribution.payload["discriminator"])
            weights.append(contribution.payload["num_samples"] * d)
        avg_gen = weighted_average_parameters(gen_vectors, weights)
        avg_disc = weighted_average_parameters(disc_vectors, weights)
        self.server_generator.set_parameters(avg_gen)
        self.server_discriminator.set_parameters(avg_disc)
        sched.note_applied()
        update = sched.updates
        self.history.record_losses(
            update,
            float(np.mean([c.payload["gen_loss"] for c in contributions])),
            float(np.mean([c.payload["disc_loss"] for c in contributions])),
        )
        self.history.record_staleness(update, max(stalenesses))
        stats.record_staleness(max(stalenesses))
        for contribution, staleness in zip(contributions, stalenesses):
            self.history.record_worker_staleness(contribution.key, staleness)
        self.history.record_event(
            update, "federated_round", workers=len(contributions)
        )
        resident = getattr(self.executor, "supports_resident", False)
        push_map: Dict[int, Dict[str, np.ndarray]] = {}
        for contribution in contributions:
            worker = self.workers[contribution.key]
            node = self.cluster.workers[contribution.key]
            if not node.alive:
                continue
            self.cluster.server.send(
                node.name,
                MessageKind.MODEL_BROADCAST,
                {"generator": avg_gen, "discriminator": avg_disc},
                update,
            )
            broadcast = node.receive(MessageKind.MODEL_BROADCAST)
            if broadcast:
                payload = broadcast[-1].payload
                if resident:
                    push_map[contribution.key] = {
                        "generator": payload["generator"],
                        "discriminator": payload["discriminator"],
                    }
                else:
                    worker.generator.set_parameters(payload["generator"])
                    worker.discriminator.set_parameters(payload["discriminator"])
        if push_map:
            try:
                collector.push_params(push_map)
            except SlotLossError:
                # A contributor's slot died during the broadcast push: its
                # merged copy is lost, the merge itself already happened.
                self._handle_async_losses(update, sched)
        for contribution in contributions:
            worker = self.workers[contribution.key]
            if (
                self.cluster.workers[contribution.key].alive
                and done_iters[contribution.key] < cfg.iterations
            ):
                sched.note_dispatch(contribution.key)
                self._dispatch_async_local_unit(worker, collector)
        return update

    def _sync_iteration(self, iteration: int) -> None:
        """One synchronous local iteration plus its due federated round."""
        active = self._active_workers()
        handle = self._dispatch_local_iteration(active)
        self._merge_local_iteration(iteration, active, handle.result())
        if iteration % self.iterations_per_round == 0:
            self._federated_round(iteration)

    def _async_begin(self, ctx: AsyncContext) -> None:
        """Initialise per-round progress and dispatch every active worker.

        Every worker runs its full ``config.iterations`` local iterations
        (same per-worker work as a synchronous run); losses, evaluations
        and staleness are recorded on the *merge-count* axis — async
        federated rounds have no shared local-iteration clock.
        """
        ctx.done_iters = {worker.index: 0 for worker in self.workers}
        ctx.round_losses = {worker.index: ([], []) for worker in self.workers}
        for worker in self._active_workers():
            ctx.sched.note_dispatch(worker.index)
            self._dispatch_async_local_unit(worker, ctx.collector)

    def _async_active(self, ctx: AsyncContext) -> bool:
        """Run until nothing is in flight, buffered, or awaiting a heal."""
        return bool(
            ctx.collector.outstanding or ctx.sched.buffered or self._async_heal_due()
        )

    def _async_apply(self, ctx: AsyncContext) -> int:
        """Flush the buffer (one FedAvg merge); return the merge count."""
        return self._apply_async_round(ctx.sched, ctx.stats, ctx.done_iters, ctx.collector)

    def _async_after_update(self, ctx: AsyncContext, update: int) -> None:
        """Record the evaluation cadence on the merge-count axis."""
        cfg = self.config
        if (
            self.evaluator is not None
            and cfg.eval_every
            and update % cfg.eval_every == 0
        ):
            self.history.record_evaluation(
                self.evaluator.evaluate(self.sample_images, update)
            )

    def _async_resume_healed(self, lost_keys, ctx: AsyncContext) -> None:
        """Restart healed workers' rounds from the current server model.

        The lost round's progress is gone with the slot (crash-discard
        semantics); re-seeding from the server model is exactly a fresh
        federated broadcast, and the fresh round-start dispatch mark
        re-pins the healed worker's staleness to the bound.
        """
        cfg = self.config
        for key in lost_keys:
            worker = self.workers[key]
            worker.generator.set_parameters(self.server_generator.get_parameters())
            worker.discriminator.set_parameters(
                self.server_discriminator.get_parameters()
            )
            ctx.round_losses[key] = ([], [])
            if ctx.done_iters[key] < cfg.iterations:
                ctx.sched.note_dispatch(key)
                self._dispatch_async_local_unit(worker, ctx.collector)

    def _async_finish(self, ctx: AsyncContext) -> None:
        """Catch up the final evaluation if the last merge wasn't evaluated."""
        cfg = self.config
        if self.evaluator is not None and cfg.eval_every:
            last = self.history.evaluations[-1] if self.history.evaluations else None
            if last is None or last.iteration != ctx.sched.updates:
                self.history.record_evaluation(
                    self.evaluator.evaluate(self.sample_images, ctx.sched.updates)
                )

    def train(self) -> TrainingHistory:
        """Run ``config.iterations`` local iterations with federated rounds.

        The schedule is driven by
        :class:`repro.core.engine.ExecutionEngine`.  Local iterations merge
        in worker-index order, so seeded runs are bitwise identical across
        serial/thread/process/resident — including ``pipeline_depth > 0``
        on the ``resident`` backend, where the in-flight window drains
        before every federated round / evaluation (FL-GAN pipelining
        introduces no staleness); non-resident backends fall back to the
        synchronous schedule.  On success the pool stays warm for re-entry;
        on failure cleanup is best-effort; :meth:`close` releases the
        backend.
        """
        return ExecutionEngine(self).run()

    def _windowed_iteration(
        self,
        iteration: int,
        window: InflightWindow,
        stats: PipelineStats,
        round_length: int,
    ) -> None:
        """One windowed (resident, depth > 0) iteration: push, drain, round."""
        cfg = self.config
        active = self._active_workers()
        window.push((iteration, active, self._dispatch_local_iteration(active)))
        stats.observe_in_flight(len(window))
        at_boundary = (
            iteration % round_length == 0
            or iteration == cfg.iterations
            or (
                self.evaluator is not None
                and cfg.eval_every
                and iteration % cfg.eval_every == 0
            )
        )
        for it, act, handle in window.drain(0 if at_boundary else None):
            self._merge_local_iteration(it, act, handle.result())
        if iteration % round_length == 0:
            self._federated_round(iteration)

    def _sync_schedule(self, engine: ExecutionEngine):
        """The windowed or depth-0 per-iteration body (both elastic-wrapped)."""
        cfg = self.config
        depth = cfg.pipeline_depth
        round_length = self.iterations_per_round
        if depth > 0:
            engine.stats = PipelineStats(depth=depth)
        if depth > 0 and getattr(self.executor, "supports_resident", False):
            window = InflightWindow(depth)
            self._pipeline_window = window
            stats = engine.stats

            def windowed(iteration: int) -> None:
                self._windowed_iteration(iteration, window, stats, round_length)

            return lambda iteration: self._elastic_iteration(iteration, windowed)
        # Elastic membership (when configured) absorbs slot losses inside
        # the wrapper and runs its boundary pipeline after the iteration;
        # fail-stop runs call the body directly.
        self._pipeline_window = None
        return lambda iteration: self._elastic_iteration(iteration, self._sync_iteration)

    def _pipeline_idle(self) -> bool:
        """Quiescent only when the in-flight window has fully drained."""
        window = getattr(self, "_pipeline_window", None)
        return window is None or len(window) == 0

    def _drain_pipeline_for_membership(self) -> None:
        """Merge out the in-flight window (LOST entries skipped) and clear frames.

        Entries collect in dispatch (FIFO) order; contributions from the
        quarantined slot come back as ``LOST`` and are discarded by the
        merge, so the membership boundary meets a quiescent pool with every
        surviving iteration accounted for.
        """
        window = getattr(self, "_pipeline_window", None)
        if window is not None:
            for it, act, handle in window.drain(0):
                self._merge_local_iteration(it, act, handle.result())
        resident = self._active_resident()
        if resident is not None:
            resident.drain_inflight()

    def _record_run_summaries(self) -> None:
        """Fold the run's traffic meters into the history (both loops)."""
        if not self.config.record_traffic:
            return
        meter = self.cluster.meter
        self.history.traffic = {
            "total_bytes": float(meter.total_bytes()),
            "server_ingress_bytes": float(meter.node_ingress(SERVER_NAME)),
            "server_egress_bytes": float(meter.node_egress(SERVER_NAME)),
            "rounds": float(len(self.history.events_of_kind("federated_round"))),
        }
